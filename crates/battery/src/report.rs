//! Lifetime comparison of two power profiles on one battery.

use serde::{Deserialize, Serialize};

use crate::models::{BatteryModel, Lifetime};

/// Lifetimes of a baseline (typically power-oblivious) and a flattened
/// (power-constrained) profile on the same battery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeComparison {
    /// Model name.
    pub model: String,
    /// Lifetime of the baseline profile.
    pub baseline: Lifetime,
    /// Lifetime of the flattened profile.
    pub flattened: Lifetime,
    /// `flattened / baseline` total-cycle ratio (`> 1` = extension).
    pub extension: f64,
}

/// Runs both profiles on `model` and reports the lifetime extension.
///
/// The profiles may have different lengths (a power-constrained schedule
/// is usually longer); the comparison is on *total clock cycles
/// survived*, so a longer-but-flatter schedule must overcome its own
/// overhead to show a gain — exactly the trade-off a designer faces.
#[must_use]
pub fn compare_profiles(
    model: &dyn BatteryModel,
    baseline: &[f64],
    flattened: &[f64],
) -> LifetimeComparison {
    let b = model.lifetime(baseline);
    let f = model.lifetime(flattened);
    let b_cycles = b.total_cycles(baseline.len()).max(1);
    let f_cycles = f.total_cycles(flattened.len());
    LifetimeComparison {
        model: model.name().to_owned(),
        baseline: b,
        flattened: f,
        extension: f_cycles as f64 / b_cycles as f64,
    }
}

/// Lifetime of one synthesized design's power profile across the three
/// battery models — the report `pchls battery` prints: how many
/// complete schedule executions each chemistry survives, and the
/// lifetime extension a power-constrained profile buys over its
/// power-oblivious baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatteryReport {
    /// Battery capacity every model was instantiated with.
    pub capacity: f64,
    /// One comparison per model (ideal, Peukert, rate-capacity), in
    /// that order.
    pub entries: Vec<LifetimeComparison>,
}

/// Runs `baseline` (the power-oblivious profile) and `flattened` (the
/// power-constrained profile) through the standard model trio — an
/// ideal coulomb counter, Peukert's law at exponent 1.2, and a
/// low-quality rate-capacity cell — all at `capacity`.
///
/// # Panics
///
/// Panics unless `capacity` is finite and positive (the models'
/// constructors enforce it).
#[must_use]
pub fn battery_report(capacity: f64, baseline: &[f64], flattened: &[f64]) -> BatteryReport {
    let models: [&dyn BatteryModel; 3] = [
        &crate::IdealBattery::new(capacity),
        &crate::PeukertBattery::new(capacity, 1.2),
        &crate::RateCapacityBattery::low_quality(capacity),
    ];
    BatteryReport {
        capacity,
        entries: models
            .iter()
            .map(|m| compare_profiles(*m, baseline, flattened))
            .collect(),
    }
}

impl BatteryReport {
    /// Renders the report as an aligned text table.
    #[must_use]
    pub fn to_text(&self, profile_len: usize, baseline_len: usize) -> String {
        let mut out = format!(
            "battery lifetime at capacity {} (cycles survived; extension vs power-oblivious):\n",
            self.capacity
        );
        out.push_str(&format!(
            "  {:<14} {:>16} {:>16} {:>10}\n",
            "model", "baseline", "constrained", "extension"
        ));
        for e in &self.entries {
            out.push_str(&format!(
                "  {:<14} {:>16} {:>16} {:>9.2}x\n",
                e.model,
                e.baseline.total_cycles(baseline_len),
                e.flattened.total_cycles(profile_len),
                e.extension
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IdealBattery, RateCapacityBattery};

    #[test]
    fn ideal_battery_shows_no_real_extension() {
        let m = IdealBattery::new(100_000.0);
        let spiky = vec![30.0, 0.0, 0.0];
        let flat = vec![10.0, 10.0, 10.0];
        let cmp = compare_profiles(&m, &spiky, &flat);
        assert!((cmp.extension - 1.0).abs() < 0.01);
    }

    #[test]
    fn rate_capacity_shows_extension() {
        let m = RateCapacityBattery::low_quality(100_000.0);
        let spiky = vec![30.0, 0.0, 0.0];
        let flat = vec![10.0, 10.0, 10.0];
        let cmp = compare_profiles(&m, &spiky, &flat);
        assert!(cmp.extension > 1.05, "extension {}", cmp.extension);
        assert_eq!(cmp.model, "rate-capacity");
    }

    #[test]
    fn report_covers_the_model_trio_in_order() {
        let spiky = vec![30.0, 0.0, 0.0];
        let flat = vec![10.0, 10.0, 10.0];
        let r = battery_report(50_000.0, &spiky, &flat);
        let names: Vec<&str> = r.entries.iter().map(|e| e.model.as_str()).collect();
        assert_eq!(names, ["ideal", "peukert", "rate-capacity"]);
        // The rate-capacity cell rewards flattening; the ideal one
        // cannot.
        assert!(r.entries[2].extension > r.entries[0].extension);
        let text = r.to_text(flat.len(), spiky.len());
        assert!(text.contains("rate-capacity"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn longer_flat_schedule_must_pay_its_overhead() {
        // A flattened profile that is twice as long with the same average
        // power per cycle: the ideal model sees no extension, because the
        // comparison is on total cycles survived, not iterations.
        let m = IdealBattery::new(100_000.0);
        let spiky = vec![20.0, 0.0];
        let flat = vec![10.0, 10.0, 10.0, 10.0];
        let cmp = compare_profiles(&m, &spiky, &flat);
        assert!((cmp.extension - 1.0).abs() < 0.01);
    }
}
