//! Rate-capacity battery: charge above a peak-current knee is wasted.

use serde::{Deserialize, Serialize};

use crate::models::{BatteryModel, Lifetime, MAX_ITERATIONS};

/// A battery exhibiting the *rate-capacity effect* the paper's
/// introduction describes: "if the peak-current exceeds a
/// maximum-threshold the life-time starts dropping dramatically".
///
/// Draw up to the rated knee costs exactly the charge delivered; every
/// unit drawn above the knee additionally wastes charge proportional to
/// the overshoot (electrode over-potential, heating and diffusion losses
/// lumped into one penalty slope):
///
/// ```text
/// cost(p) = p · (1 + penalty · max(0, p − knee))
/// ```
///
/// A flattened schedule that keeps every cycle at or below the knee
/// therefore delivers the battery's full charge, while a spiky schedule
/// with the same energy per iteration cuts off 20–30 % earlier on a
/// low-quality cell — the magnitude reported by the battery-aware
/// scheduling literature the paper cites.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateCapacityBattery {
    capacity: f64,
    knee: f64,
    penalty: f64,
}

impl RateCapacityBattery {
    /// A battery with `capacity` charge, rated per-cycle draw `knee`, and
    /// penalty slope `penalty` per unit of overshoot.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity > 0`, `knee ≥ 0` and `penalty ≥ 0`.
    #[must_use]
    pub fn new(capacity: f64, knee: f64, penalty: f64) -> RateCapacityBattery {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        assert!(knee.is_finite() && knee >= 0.0, "knee must be non-negative");
        assert!(
            penalty.is_finite() && penalty >= 0.0,
            "penalty must be non-negative"
        );
        RateCapacityBattery {
            capacity,
            knee,
            penalty,
        }
    }

    /// A cheap cell: rated for 10 power units per cycle, wasting 1.5 % of
    /// a spike's charge per unit of overshoot.
    #[must_use]
    pub fn low_quality(capacity: f64) -> RateCapacityBattery {
        RateCapacityBattery::new(capacity, 10.0, 0.015)
    }

    /// A high-quality cell: rated for 25 units per cycle with a gentle
    /// 0.5 % penalty slope.
    #[must_use]
    pub fn high_quality(capacity: f64) -> RateCapacityBattery {
        RateCapacityBattery::new(capacity, 25.0, 0.005)
    }

    /// The rated per-cycle draw above which charge is wasted.
    #[must_use]
    pub fn knee(&self) -> f64 {
        self.knee
    }

    /// Effective charge consumed by drawing `p` for one cycle.
    #[must_use]
    pub fn cost(&self, p: f64) -> f64 {
        p * (1.0 + self.penalty * (p - self.knee).max(0.0))
    }
}

impl BatteryModel for RateCapacityBattery {
    fn lifetime(&self, profile: &[f64]) -> Lifetime {
        let per_iteration: f64 = profile.iter().map(|&p| self.cost(p)).sum();
        let delivered_per_iteration: f64 = profile.iter().sum();
        if per_iteration <= 0.0 || profile.is_empty() {
            return Lifetime {
                iterations: MAX_ITERATIONS,
                extra_cycles: 0,
                delivered_charge: 0.0,
            };
        }
        let full = ((self.capacity / per_iteration) as u64).min(MAX_ITERATIONS);
        let mut remaining = self.capacity - full as f64 * per_iteration;
        let mut delivered = full as f64 * delivered_per_iteration;
        let mut extra = 0u64;
        for &p in profile {
            let cost = self.cost(p);
            if remaining < cost {
                break;
            }
            remaining -= cost;
            delivered += p;
            extra += 1;
        }
        Lifetime {
            iterations: full,
            extra_cycles: extra,
            delivered_charge: delivered,
        }
    }

    fn name(&self) -> &str {
        "rate-capacity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_profiles_deliver_more_charge() {
        let b = RateCapacityBattery::low_quality(10_000.0);
        let spiky = vec![30.0, 0.0, 0.0];
        let flat = vec![10.0, 10.0, 10.0];
        let s = b.lifetime(&spiky);
        let f = b.lifetime(&flat);
        assert!(f.delivered_charge > s.delivered_charge);
        assert!(f.total_cycles(3) > s.total_cycles(3));
    }

    #[test]
    fn lifetime_extension_matches_cited_magnitude() {
        // The paper cites 20–30 % extensions on low-quality batteries for
        // peak-flattened schedules; a 3× peak reduction at equal energy
        // should land in that regime.
        let b = RateCapacityBattery::low_quality(10_000.0);
        let spiky = vec![30.0, 0.0, 0.0, 30.0, 0.0, 0.0];
        let flat = vec![10.0; 6];
        let gain = b.lifetime(&flat).ratio_to(&b.lifetime(&spiky), 6);
        assert!(
            (1.1..1.6).contains(&gain),
            "gain {gain} outside the cited magnitude"
        );
    }

    #[test]
    fn high_quality_cells_care_less() {
        let spiky = vec![30.0, 0.0, 0.0];
        let flat = vec![10.0; 3];
        let lq = RateCapacityBattery::low_quality(10_000.0);
        let hq = RateCapacityBattery::high_quality(10_000.0);
        let lq_gain = lq.lifetime(&flat).ratio_to(&lq.lifetime(&spiky), 3);
        let hq_gain = hq.lifetime(&flat).ratio_to(&hq.lifetime(&spiky), 3);
        assert!(lq_gain > hq_gain);
    }

    #[test]
    fn zero_penalty_behaves_ideally() {
        let rc = RateCapacityBattery::new(1000.0, 0.0, 0.0);
        let ideal = crate::IdealBattery::new(1000.0);
        let profile = vec![4.0, 6.0, 0.0];
        assert_eq!(
            rc.lifetime(&profile).total_cycles(3),
            ideal.lifetime(&profile).total_cycles(3)
        );
    }

    #[test]
    fn draws_below_the_knee_cost_exactly_their_charge() {
        let b = RateCapacityBattery::low_quality(1.0);
        assert!((b.cost(10.0) - 10.0).abs() < 1e-12);
        assert!((b.cost(5.0) - 5.0).abs() < 1e-12);
        assert!(b.cost(20.0) > 20.0);
    }

    #[test]
    fn charge_is_conserved() {
        // Delivered charge can never exceed total capacity.
        let b = RateCapacityBattery::low_quality(5_000.0);
        let l = b.lifetime(&[25.0, 5.0, 0.0]);
        assert!(l.delivered_charge <= 5_000.0 + 1e-6);
    }

    #[test]
    #[should_panic(expected = "penalty")]
    fn negative_penalty_rejected() {
        let _ = RateCapacityBattery::new(10.0, 1.0, -0.1);
    }
}
