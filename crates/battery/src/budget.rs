//! Deriving synthesis power budgets from battery models.
//!
//! This is the coupling the paper motivates but never builds: the
//! battery chemistry decides *how much per-cycle power the supply can
//! actually deliver as charge drains*, and that deliverable envelope —
//! not a designer-picked scalar — becomes the synthesis constraint.
//! [`budget_from_model`] turns any [`BatteryModel`] into a
//! [`PowerBudget`] envelope the scheduling and synthesis layers consume
//! directly (`SynthesisConstraints::new(T, budget)`).

use pchls_sched::PowerBudget;

use crate::models::{BatteryModel, MAX_ITERATIONS};

/// Derives a sagging per-cycle power envelope from a battery model.
///
/// The derivation probes the model with a constant draw of `peak` (the
/// bound a fresh, fully charged cell sustains) and reads off how many
/// cycles the cell survives it — the model's own measure of how quickly
/// state of charge collapses under that load. The envelope then sags
/// linearly with the implied state-of-charge trajectory:
///
/// ```text
/// bound(c) = floor + (peak - floor) · soc(c),   soc(c) = 1 − c / sustain_cycles
/// ```
///
/// clamped to never drop below `floor` (the deep-discharge bound the
/// regulator still guarantees). An [`IdealBattery`](crate::IdealBattery)
/// with ample capacity sustains `peak` for millions of cycles, so its
/// envelope is indistinguishable from the scalar constraint; a
/// low-quality [`RateCapacityBattery`](crate::RateCapacityBattery)
/// wastes charge at every `peak` draw, sustains far fewer cycles, and
/// produces a visibly sagging envelope — exactly the scenario space the
/// paper's battery-aware motivation describes.
///
/// The returned budget covers `horizon` cycles (per-cycle shape). When
/// the sag over the whole horizon is negligible (under one part in
/// 10⁶ of `peak`), the constant budget is returned instead so the
/// synthesis layers keep the scalar fast path.
///
/// # Panics
///
/// Panics if `horizon` is zero, `peak` is not finite and positive, or
/// `floor` is negative, NaN, or above `peak`.
#[must_use]
pub fn budget_from_model(
    model: &dyn BatteryModel,
    horizon: u32,
    peak: f64,
    floor: f64,
) -> PowerBudget {
    assert!(horizon > 0, "horizon must be at least one cycle");
    assert!(
        peak.is_finite() && peak > 0.0,
        "peak draw must be finite and positive"
    );
    assert!(
        !floor.is_nan() && (0.0..=peak).contains(&floor),
        "floor must lie in [0, peak]"
    );
    // How long the cell sustains a constant draw of `peak`: the model's
    // own state-of-charge clock. `lifetime` replays a 1-cycle profile,
    // so total cycles = iterations + extra.
    let sustain_cycles = model.lifetime(&[peak]).total_cycles(1).max(1);
    let sag_per_cycle = 1.0 / sustain_cycles as f64;
    // A cell that outlives MAX_ITERATIONS of peak draw is effectively
    // ideal at this horizon: sag would be < horizon / 1e7.
    let last_soc = 1.0 - f64::from(horizon - 1) * sag_per_cycle;
    if sustain_cycles >= MAX_ITERATIONS || (peak - floor) * (1.0 - last_soc) < peak * 1e-6 {
        return PowerBudget::constant(peak);
    }
    let bounds: Vec<f64> = (0..horizon)
        .map(|c| {
            let soc = (1.0 - f64::from(c) * sag_per_cycle).max(0.0);
            floor + (peak - floor) * soc
        })
        .collect();
    PowerBudget::per_cycle(bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IdealBattery, PeukertBattery, RateCapacityBattery};

    #[test]
    fn ideal_cells_keep_the_scalar_constraint() {
        let b = budget_from_model(&IdealBattery::new(1e12), 20, 25.0, 5.0);
        assert_eq!(b, PowerBudget::constant(25.0));
    }

    #[test]
    fn weak_cells_produce_a_sagging_envelope() {
        // A tiny low-quality cell: constant 25-draw kills it fast, so
        // the envelope must sag noticeably across 20 cycles.
        let cell = RateCapacityBattery::low_quality(2_000.0);
        let b = budget_from_model(&cell, 20, 25.0, 5.0);
        assert!(b.as_constant().is_none(), "expected an envelope");
        assert_eq!(b.bound_at(0), 25.0);
        assert!(b.bound_at(19) < 25.0);
        // Monotone non-increasing, floored.
        for c in 1..20 {
            assert!(b.bound_at(c) <= b.bound_at(c - 1), "cycle {c}");
            assert!(b.bound_at(c) >= 5.0, "cycle {c}");
        }
    }

    #[test]
    fn weaker_chemistry_sags_faster() {
        let strong = budget_from_model(&PeukertBattery::new(50_000.0, 1.1), 30, 25.0, 0.0);
        let weak = budget_from_model(&PeukertBattery::new(5_000.0, 1.3), 30, 25.0, 0.0);
        assert!(weak.bound_at(29) < strong.bound_at(29));
    }

    #[test]
    fn envelope_feeds_the_scheduler() {
        // End-to-end within the crate boundary: the derived envelope is
        // a valid ledger budget.
        let cell = RateCapacityBattery::low_quality(2_000.0);
        let budget = budget_from_model(&cell, 16, 25.0, 5.0);
        let ledger = pchls_sched::PowerLedger::with_budget(16, &budget);
        assert!(ledger.is_envelope());
        assert!(ledger.fits(0, 2, 20.0));
        // Late cycles have sagged below what early cycles admit.
        assert!(ledger.bound(15) < ledger.bound(0));
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn floor_above_peak_rejected() {
        let _ = budget_from_model(&IdealBattery::new(1e6), 10, 10.0, 20.0);
    }
}
