//! Battery discharge and lifetime models driven by per-cycle power
//! profiles.
//!
//! The paper's motivation (its refs [1, 2]) is that the charge a real
//! battery delivers depends strongly on the *current profile*: once the
//! peak current exceeds a threshold, effective capacity — and therefore
//! lifetime — drops sharply, with 20–30 % lifetime extensions reported
//! for peak-flattened schedules on low-quality cells. The paper itself
//! builds no battery model; this crate supplies one so the claimed
//! benefit can be demonstrated end to end (`DESIGN.md` §3 documents the
//! substitution).
//!
//! Three models of increasing fidelity share the [`BatteryModel`] trait:
//!
//! * [`IdealBattery`] — a coulomb counter; profile shape is irrelevant.
//! * [`PeukertBattery`] — Peukert's law: draw `i` costs effective charge
//!   `i^k` with `k > 1`, so power spikes waste capacity.
//! * [`RateCapacityBattery`] — an explicit rate-capacity knee: draw up
//!   to the rated per-cycle current costs its own charge, draw above the
//!   knee wastes extra charge proportional to the overshoot — directly
//!   modelling the paper's "peak-current exceeds a maximum-threshold"
//!   lifetime collapse.
//!
//! Lifetimes are measured in *iterations*: the per-cycle profile of one
//! schedule execution is replayed until the battery cuts off.
//!
//! The crate also couples the models back into synthesis:
//! [`budget_from_model`] derives a sagging per-cycle
//! [`PowerBudget`](pchls_sched::PowerBudget) envelope from a model's
//! state-of-charge trajectory, which `SynthesisConstraints` accepts
//! directly — the battery chemistry, not a hand-picked scalar, sets the
//! per-cycle power constraint. [`battery_report`] summarizes a
//! synthesized design's lifetime across the model trio (the
//! `pchls battery` subcommand).
//!
//! # Example
//!
//! ```
//! use pchls_battery::{BatteryModel, RateCapacityBattery};
//!
//! let spiky = vec![30.0, 0.0, 0.0, 30.0, 0.0, 0.0];
//! let flat = vec![10.0, 10.0, 10.0, 10.0, 10.0, 10.0]; // same energy
//! let battery = RateCapacityBattery::low_quality(20_000.0);
//! let a = battery.lifetime(&spiky);
//! let b = battery.lifetime(&flat);
//! assert!(b.iterations > a.iterations, "flat profiles last longer");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod ideal;
mod models;
mod peukert;
mod rate_capacity;
mod report;

pub use budget::budget_from_model;
pub use ideal::IdealBattery;
pub use models::{BatteryModel, Lifetime};
pub use peukert::PeukertBattery;
pub use rate_capacity::RateCapacityBattery;
pub use report::{battery_report, compare_profiles, BatteryReport, LifetimeComparison};
