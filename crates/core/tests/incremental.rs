//! Differential tests for the incremental re-synthesis path: a
//! recompile must reproduce a cold compile's artifacts bit-for-bit, and
//! a replayed synthesis must reproduce a cold synthesis of the edited
//! graph byte-for-byte — design, decision trace and effort counters —
//! across random graphs × random single-op edits, on both sides of the
//! fallback threshold.

use pchls_cdfg::{diff, random_dag, Cdfg, GraphEdit, NodeId, OpKind, RandomDagConfig};
use pchls_core::{Engine, SynthesisConstraints, SynthesisOptions};
use pchls_fulib::paper_library;

fn graph(ops: usize, seed: u64) -> Cdfg {
    random_dag(&RandomDagConfig {
        ops,
        seed,
        ..RandomDagConfig::default()
    })
}

/// A deterministic xorshift so edits vary with the seed without pulling
/// a test-only RNG dependency into the crate.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Applies one random structural edit (rewire an operand, add an op, or
/// remove an unconsumed node) and returns the edited graph.
fn random_edit(graph: &Cdfg, seed: u64) -> Cdfg {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut edit = GraphEdit::new(graph);
    let n = graph.len() as u64;
    let producers: Vec<NodeId> = graph
        .node_ids()
        .filter(|&id| graph.node(id).kind().produces_value())
        .collect();
    let pick = |state: &mut u64| producers[(next(state) % producers.len() as u64) as usize];
    for attempt in 0..64 {
        let applied = match next(&mut state) % 3 {
            0 => {
                // Rewire one operand port of a random consumer.
                let id = NodeId::new((next(&mut state) % n) as u32);
                let ports = graph.operands(id).len();
                if ports == 0 {
                    false
                } else {
                    let port = (next(&mut state) % ports as u64) as usize;
                    let src = pick(&mut state);
                    edit.rewire_edge(id, port, src).is_ok()
                }
            }
            1 => {
                let kind = if next(&mut state).is_multiple_of(2) {
                    OpKind::Add
                } else {
                    OpKind::Mul
                };
                let (a, b) = (pick(&mut state), pick(&mut state));
                edit.add_op(kind, &[a, b]).is_ok()
            }
            _ => {
                // Remove any node nothing consumes (an output, usually).
                let start = next(&mut state) % n;
                (0..n).any(|off| {
                    let id = NodeId::new(((start + off) % n) as u32);
                    edit.remove_op(id).is_ok()
                })
            }
        };
        if applied {
            return edit.finish().expect("validated edits re-finish");
        }
        assert!(attempt < 63, "no applicable edit found for seed {seed}");
    }
    unreachable!()
}

/// Generous constraints every edited variant stays feasible under: the
/// replay reuses the recorded constraint point, so base and edited runs
/// must share it.
fn loose_constraints(compiled_min_latency: u32) -> SynthesisConstraints {
    SynthesisConstraints::new(compiled_min_latency * 3 + 8, 1e6)
}

#[test]
fn recompile_reproduces_cold_compile_artifacts() {
    let engine = Engine::new(paper_library());
    for gseed in [3u64, 11, 29] {
        let base = graph(40, gseed);
        let compiled = engine.compile(&base);
        for eseed in 1..=6u64 {
            let edited = random_edit(&base, gseed.wrapping_mul(1000) + eseed);
            let (incremental, delta) = engine
                .recompile(&compiled, &edited)
                .expect("library covers every kind");
            assert!(!delta.degenerate(), "single-op edits diff cleanly");
            let cold = engine.try_compile(&edited).expect("covered");
            assert!(
                incremental.artifacts_equal(&cold),
                "recompile diverged from cold compile (graph {gseed}, edit {eseed})"
            );
        }
    }
}

#[test]
fn recording_does_not_perturb_synthesis() {
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(&graph(45, 7));
    let session = engine.session(&compiled);
    let constraints = loose_constraints(compiled.min_latency());
    let options = SynthesisOptions::default();
    let plain = session.synthesize(constraints.clone(), &options).unwrap();
    let (recorded, memo) = session
        .synthesize_recorded(constraints, &options)
        .expect("same feasibility as the plain run");
    assert_eq!(plain, recorded);
    assert_eq!(memo.ops(), compiled.graph().len());
    assert!(memo.iterations() > 0);
}

#[test]
fn resynthesize_matches_fresh_synthesis_over_random_edits() {
    let engine = Engine::new(paper_library());
    let options = SynthesisOptions::default();
    let mut incremental_runs = 0usize;
    for gseed in [5u64, 17, 41] {
        let base = graph(40, gseed);
        let compiled = engine.compile(&base);
        let constraints = loose_constraints(compiled.min_latency());
        let (_, memo) = engine
            .session(&compiled)
            .synthesize_recorded(constraints, &options)
            .expect("loose constraints are feasible");
        for eseed in 1..=8u64 {
            let edited = random_edit(&base, gseed.wrapping_mul(77) + eseed);
            let (recompiled, delta) = engine.recompile(&compiled, &edited).expect("covered");
            let session = engine.session(&recompiled);
            let cold = session
                .synthesize(memo.constraints().clone(), memo.options())
                .expect("loose constraints stay feasible after one edit");
            let re = session
                .resynthesize(&memo, &delta)
                .expect("replay matches cold feasibility");
            assert_eq!(
                re.design, cold,
                "replayed design diverged (graph {gseed}, edit {eseed}, \
                 incremental={}, cone={})",
                re.incremental, re.cone_size
            );
            incremental_runs += usize::from(re.incremental);
        }
    }
    assert!(
        incremental_runs > 0,
        "no edit exercised the incremental path"
    );
}

#[test]
fn identity_edit_replays_incrementally() {
    let engine = Engine::new(paper_library());
    let base = graph(35, 23);
    let compiled = engine.compile(&base);
    let session = engine.session(&compiled);
    let constraints = loose_constraints(compiled.min_latency());
    let options = SynthesisOptions::default();
    let (design, memo) = session
        .synthesize_recorded(constraints, &options)
        .expect("feasible");
    let delta = diff(&base, &base);
    assert!(delta.is_identity());
    let re = session.resynthesize(&memo, &delta).expect("feasible");
    assert!(re.incremental);
    assert_eq!(re.cone_size, 0);
    assert_eq!(re.design, design);
}

#[test]
fn fallback_threshold_is_a_sharp_boundary() {
    let engine = Engine::new(paper_library());
    let options = SynthesisOptions::default();
    let base = graph(40, 59);
    let compiled = engine.compile(&base);
    let constraints = loose_constraints(compiled.min_latency());
    let (_, memo) = engine
        .session(&compiled)
        .synthesize_recorded(constraints, &options)
        .expect("feasible");
    let edited = random_edit(&base, 4242);
    let (recompiled, delta) = engine.recompile(&compiled, &edited).expect("covered");
    let cone = delta.cone_size();
    assert!(cone > 0, "the edit must touch something");
    let session = engine.session(&recompiled);
    let cold = session
        .synthesize(memo.constraints().clone(), memo.options())
        .expect("feasible");

    // Cone exactly at the limit: incremental.
    let at = session
        .resynthesize_with_limit(&memo, &delta, cone)
        .expect("feasible");
    assert!(at.incremental);
    assert_eq!(at.design, cold);

    // One below the cone: full-recompute fallback, same design.
    let over = session
        .resynthesize_with_limit(&memo, &delta, cone - 1)
        .expect("feasible");
    assert!(!over.incremental);
    assert_eq!(over.design, cold);
}

#[test]
fn shape_mismatch_falls_back_to_cold_synthesis() {
    let engine = Engine::new(paper_library());
    let options = SynthesisOptions::default();
    let base = graph(30, 71);
    let compiled = engine.compile(&base);
    let constraints = loose_constraints(compiled.min_latency());
    let (_, memo) = engine
        .session(&compiled)
        .synthesize_recorded(constraints, &options)
        .expect("feasible");
    // Two stacked node-adding edits: the delta is diffed against the
    // *first* edit (one node longer than the recorded graph), then
    // replayed against the *second* — its base length cannot match the
    // memo, so the incremental gate must refuse.
    let inputs: Vec<NodeId> = base
        .node_ids()
        .filter(|&id| base.node(id).kind().produces_value())
        .take(2)
        .collect();
    let mut e = GraphEdit::new(&base);
    e.add_op(OpKind::Add, &[inputs[0], inputs[1]]).unwrap();
    let once = e.finish().unwrap();
    let mut e = GraphEdit::new(&once);
    e.add_op(OpKind::Mul, &[inputs[0], inputs[1]]).unwrap();
    let twice = e.finish().unwrap();
    let delta = diff(&once, &twice);
    let (recompiled, _) = engine.recompile(&compiled, &twice).expect("covered");
    let session = engine.session(&recompiled);
    let cold = session
        .synthesize(memo.constraints().clone(), memo.options())
        .expect("feasible");
    let re = session.resynthesize(&memo, &delta).expect("feasible");
    assert!(!re.incremental, "mismatched delta must not replay");
    assert_eq!(re.design, cold);
}
