//! Property-based tests over the synthesis kernel's selection
//! primitives.

use proptest::prelude::*;

use pchls_core::TopK;

mod topk_props {
    use super::*;
    use std::cmp::Ordering;

    /// The kernel's candidate comparator shape: score descending (ties
    /// broken ascending on the remaining keys), made total by the index.
    fn kernel_cmp(cands: &[(f64, u32, u32)]) -> impl Fn(&u32, &u32) -> Ordering + '_ {
        move |&x: &u32, &y: &u32| {
            let (a, b) = (&cands[x as usize], &cands[y as usize]);
            b.0.partial_cmp(&a.0)
                .expect("scores are finite")
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
                .then(x.cmp(&y))
        }
    }

    proptest! {
        /// The bounded heap keeps exactly the full sort's top-`k` — the
        /// equivalence that lets the kernel replace
        /// `select_nth_unstable` + truncate + sort without moving a
        /// single decision trace. Scores are drawn from a small grid so
        /// ties (resolved by the index key) are common.
        #[test]
        fn bounded_heap_equals_full_sort_top_k(
            k in 1usize..80,
            raw in proptest::collection::vec((0u8..12, 0u32..9, 0u32..50), 0..300),
        ) {
            let cands: Vec<(f64, u32, u32)> = raw
                .iter()
                .map(|&(s, start, op)| (f64::from(s) * 0.5, start, op))
                .collect();
            let cmp = kernel_cmp(&cands);

            let mut reference: Vec<u32> = (0..cands.len() as u32).collect();
            reference.sort_by(&cmp);
            reference.truncate(k);

            let mut top = TopK::new(k);
            for i in 0..cands.len() as u32 {
                top.push(i, &cmp);
            }
            prop_assert_eq!(top.sorted(&cmp), &reference[..]);
        }

        /// Buffer reuse (`clear` between rounds) never leaks state from
        /// a previous round into the next selection.
        #[test]
        fn cleared_heap_forgets_previous_rounds(
            k in 1usize..20,
            rounds in proptest::collection::vec(
                proptest::collection::vec(any::<u64>(), 0..60),
                1..4,
            ),
        ) {
            let mut top = TopK::new(k);
            for round in &rounds {
                top.clear();
                for &x in round {
                    top.push(x, u64::cmp);
                }
                let mut reference = round.clone();
                reference.sort_unstable();
                reference.truncate(k);
                prop_assert_eq!(top.sorted(u64::cmp), &reference[..]);
            }
        }
    }
}
