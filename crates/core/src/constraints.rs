//! Synthesis constraints.

use serde::{Deserialize, Serialize};

use pchls_sched::PowerBudget;

/// The constraints of the paper, generalized: a latency bound `T`
/// (clock cycles) and a per-cycle power budget — the paper's scalar
/// `P<` or a time-varying [`PowerBudget`] envelope (battery-derived sag,
/// DVS/thermal phase steps).
///
/// Constructed from a scalar the constraints behave exactly as the
/// historical `(latency, max_power)` pair did — every layer detects the
/// constant shape and takes the original code path, bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisConstraints {
    /// Latency bound in clock cycles: every operation must finish by this
    /// cycle.
    pub latency: u32,
    /// Per-cycle power budget (the paper's `P<` when constant).
    /// `PowerBudget::unbounded()` disables the power constraint.
    pub budget: PowerBudget,
}

impl SynthesisConstraints {
    /// Creates a constraint pair. `budget` accepts a plain `f64` (the
    /// classical scalar bound, converted to a constant budget) or any
    /// [`PowerBudget`] envelope.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero or the budget contains a NaN or
    /// negative bound.
    #[must_use]
    pub fn new(latency: u32, budget: impl Into<PowerBudget>) -> SynthesisConstraints {
        assert!(latency > 0, "latency bound must be positive");
        SynthesisConstraints {
            latency,
            budget: budget.into(),
        }
    }

    /// The scalar shim: a constraint pair under the classical constant
    /// bound `max_power` (may be `f64::INFINITY`). Equivalent to
    /// `new(latency, max_power)`; kept as an explicit name for call
    /// sites migrating from the pre-envelope API.
    ///
    /// # Panics
    ///
    /// As [`new`](SynthesisConstraints::new).
    #[must_use]
    pub fn with_max_power(latency: u32, max_power: f64) -> SynthesisConstraints {
        SynthesisConstraints::new(latency, max_power)
    }

    /// A latency-only constraint (`P< = ∞`).
    #[must_use]
    pub fn latency_only(latency: u32) -> SynthesisConstraints {
        SynthesisConstraints::new(latency, f64::INFINITY)
    }

    /// The largest per-cycle bound any cycle **within the latency
    /// horizon** can see: the bound itself for a scalar constraint, the
    /// envelope's effective peak otherwise. This is the value
    /// quick-reject tests and reports compare against (an operation
    /// drawing more than this can fit in no schedulable cycle at all) —
    /// deliberately horizon-bounded, so budget entries past the
    /// deadline, which can never admit anything, never loosen it.
    #[must_use]
    pub fn max_power(&self) -> f64 {
        self.budget.peak_within(self.latency)
    }

    /// Whether the power constraint is actually binding (some cycle's
    /// bound is finite).
    #[must_use]
    pub fn has_power_bound(&self) -> bool {
        self.budget.is_binding()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_only_has_no_power_bound() {
        let c = SynthesisConstraints::latency_only(10);
        assert!(!c.has_power_bound());
        assert_eq!(c.latency, 10);
    }

    #[test]
    fn finite_power_is_binding() {
        assert!(SynthesisConstraints::new(10, 25.0).has_power_bound());
    }

    #[test]
    fn scalar_and_shim_constructors_agree() {
        assert_eq!(
            SynthesisConstraints::new(10, 25.0),
            SynthesisConstraints::with_max_power(10, 25.0)
        );
        assert_eq!(SynthesisConstraints::new(10, 25.0).max_power(), 25.0);
    }

    #[test]
    fn envelope_constraints_report_their_peak() {
        let c = SynthesisConstraints::new(10, PowerBudget::steps(vec![(0, 30.0), (5, 12.0)]));
        assert_eq!(c.max_power(), 30.0);
        assert!(c.has_power_bound());
        // An envelope with one unconstrained phase is still binding.
        let c =
            SynthesisConstraints::new(10, PowerBudget::steps(vec![(0, f64::INFINITY), (5, 12.0)]));
        assert!(c.has_power_bound());
    }

    #[test]
    fn constraints_round_trip_through_json() {
        for c in [
            SynthesisConstraints::new(17, 25.0),
            SynthesisConstraints::new(17, PowerBudget::steps(vec![(0, 30.0), (8, 12.0)])),
            SynthesisConstraints::new(4, PowerBudget::per_cycle(vec![5.0, 6.0, 7.0, 8.0])),
        ] {
            let json = serde_json::to_string(&c).unwrap();
            let back: SynthesisConstraints = serde_json::from_str(&json).unwrap();
            assert_eq!(back, c, "{json}");
        }
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn zero_latency_rejected() {
        let _ = SynthesisConstraints::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_power_rejected() {
        let _ = SynthesisConstraints::new(1, f64::NAN);
    }
}
