//! Synthesis constraints.

use serde::{Deserialize, Serialize};

/// The two constraints of the paper: a latency bound `T` (clock cycles)
/// and a maximum power per clock cycle `P<`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthesisConstraints {
    /// Latency bound in clock cycles: every operation must finish by this
    /// cycle.
    pub latency: u32,
    /// Maximum power drawn in any single clock cycle (the paper's `P<`).
    /// `f64::INFINITY` disables the power constraint.
    pub max_power: f64,
}

impl SynthesisConstraints {
    /// Creates a constraint pair.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero or `max_power` is NaN or negative.
    #[must_use]
    pub fn new(latency: u32, max_power: f64) -> SynthesisConstraints {
        assert!(latency > 0, "latency bound must be positive");
        assert!(
            !max_power.is_nan() && max_power >= 0.0,
            "power bound must be non-negative"
        );
        SynthesisConstraints { latency, max_power }
    }

    /// A latency-only constraint (`P< = ∞`).
    #[must_use]
    pub fn latency_only(latency: u32) -> SynthesisConstraints {
        SynthesisConstraints::new(latency, f64::INFINITY)
    }

    /// Whether the power constraint is actually binding.
    #[must_use]
    pub fn has_power_bound(&self) -> bool {
        self.max_power.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_only_has_no_power_bound() {
        let c = SynthesisConstraints::latency_only(10);
        assert!(!c.has_power_bound());
        assert_eq!(c.latency, 10);
    }

    #[test]
    fn finite_power_is_binding() {
        assert!(SynthesisConstraints::new(10, 25.0).has_power_bound());
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn zero_latency_rejected() {
        let _ = SynthesisConstraints::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "power")]
    fn nan_power_rejected() {
        let _ = SynthesisConstraints::new(1, f64::NAN);
    }
}
