//! Design-space exploration: the sweeps behind Figure 2.

use serde::{Deserialize, Serialize};

use pchls_cdfg::Cdfg;
use pchls_fulib::{ModuleLibrary, SelectionPolicy};
use pchls_sched::{asap, PowerProfile, TimingMap};

use crate::constraints::SynthesisConstraints;
use crate::options::SynthesisOptions;
use crate::synthesis::synthesize;

/// One point of a constraint sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Benchmark name.
    pub benchmark: String,
    /// Latency constraint `T`.
    pub latency_bound: u32,
    /// Power constraint `P<`.
    pub power_bound: f64,
    /// Synthesized functional-unit area, if the point was feasible.
    pub area: Option<u64>,
    /// Achieved latency, if feasible.
    pub latency: Option<u32>,
    /// Achieved peak power, if feasible.
    pub peak_power: Option<f64>,
    /// Number of functional-unit instances, if feasible.
    pub units: Option<usize>,
}

impl SweepPoint {
    /// Whether synthesis succeeded at this point.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.area.is_some()
    }
}

/// Synthesizes `graph` at a fixed latency for every power bound in
/// `powers`, producing one curve of Figure 2.
///
/// Any design feasible under a tight power bound remains feasible under
/// every looser one, so each point reports the best design found at any
/// bound `≤ P` — the monotone envelope of the greedy's raw output. (A
/// greedy heuristic can otherwise produce occasional upward blips where
/// *less* pressure sends it down a worse path; the envelope is what a
/// designer sweeping the constraint would actually keep.)
#[must_use]
pub fn power_sweep(
    graph: &Cdfg,
    library: &ModuleLibrary,
    latency: u32,
    powers: &[f64],
    options: &SynthesisOptions,
) -> Vec<SweepPoint> {
    // Visit bounds in ascending order, carrying the best design so far.
    let mut order: Vec<usize> = (0..powers.len()).collect();
    order.sort_by(|&a, &b| powers[a].partial_cmp(&powers[b]).expect("finite bounds"));
    let mut points = vec![None; powers.len()];
    let mut best: Option<SweepPoint> = None;
    for i in order {
        let p = powers[i];
        let mut point = run_point(
            graph,
            library,
            SynthesisConstraints::new(latency, p),
            options,
        );
        if let Some(b) = &best {
            if b.area.expect("best is feasible") < point.area.unwrap_or(u64::MAX) {
                point = SweepPoint {
                    power_bound: p,
                    ..b.clone()
                };
            }
        }
        if point.is_feasible() {
            best = Some(point.clone());
        }
        points[i] = Some(point);
    }
    points.into_iter().map(|p| p.expect("all filled")).collect()
}

/// Synthesizes `graph` at a fixed power bound for every latency in
/// `latencies` (the orthogonal cut through the constraint space).
///
/// As with [`power_sweep`], each point reports the best design found at
/// any latency `≤ T` — a design meeting a tighter deadline meets every
/// looser one.
#[must_use]
pub fn latency_sweep(
    graph: &Cdfg,
    library: &ModuleLibrary,
    power: f64,
    latencies: &[u32],
    options: &SynthesisOptions,
) -> Vec<SweepPoint> {
    let mut order: Vec<usize> = (0..latencies.len()).collect();
    order.sort_by_key(|&i| latencies[i]);
    let mut points = vec![None; latencies.len()];
    let mut best: Option<SweepPoint> = None;
    for i in order {
        let t = latencies[i];
        let mut point = run_point(graph, library, SynthesisConstraints::new(t, power), options);
        if let Some(b) = &best {
            if b.area.expect("best is feasible") < point.area.unwrap_or(u64::MAX) {
                point = SweepPoint {
                    latency_bound: t,
                    ..b.clone()
                };
            }
        }
        if point.is_feasible() {
            best = Some(point.clone());
        }
        points[i] = Some(point);
    }
    points.into_iter().map(|p| p.expect("all filled")).collect()
}

/// Filters sweep points down to the pareto front over
/// `(power bound, latency bound, area)`: points for which no other
/// feasible point is at least as good on all three axes and strictly
/// better on one. Infeasible points never appear.
#[must_use]
pub fn pareto_front(points: &[SweepPoint]) -> Vec<SweepPoint> {
    let feasible: Vec<&SweepPoint> = points.iter().filter(|p| p.is_feasible()).collect();
    feasible
        .iter()
        .enumerate()
        .filter(|&(i, a)| {
            !feasible.iter().enumerate().any(|(j, b)| {
                if i == j {
                    return false;
                }
                let no_worse = b.power_bound <= a.power_bound
                    && b.latency_bound <= a.latency_bound
                    && b.area <= a.area;
                let better = b.power_bound < a.power_bound
                    || b.latency_bound < a.latency_bound
                    || b.area < a.area;
                no_worse && better
            })
        })
        .map(|(_, p)| (*p).clone())
        .collect()
}

fn run_point(
    graph: &Cdfg,
    library: &ModuleLibrary,
    constraints: SynthesisConstraints,
    options: &SynthesisOptions,
) -> SweepPoint {
    match synthesize(graph, library, constraints, options) {
        Ok(d) => SweepPoint {
            benchmark: graph.name().to_owned(),
            latency_bound: constraints.latency,
            power_bound: constraints.max_power,
            area: Some(d.area),
            latency: Some(d.latency),
            peak_power: Some(d.peak_power),
            units: Some(d.binding.instances().len()),
        },
        Err(_) => SweepPoint {
            benchmark: graph.name().to_owned(),
            latency_bound: constraints.latency,
            power_bound: constraints.max_power,
            area: None,
            latency: None,
            peak_power: None,
            units: None,
        },
    }
}

/// A sensible power grid for sweeping `graph`: `steps` evenly spaced
/// bounds from just under the cheapest single operation's power up to
/// the peak of the power-oblivious ASAP design (beyond which the
/// constraint stops binding) plus one step of headroom.
#[must_use]
pub fn auto_power_grid(graph: &Cdfg, library: &ModuleLibrary, steps: usize) -> Vec<f64> {
    let timing = TimingMap::from_policy(graph, library, SelectionPolicy::Fastest);
    let peak = PowerProfile::of(&asap(graph, &timing), &timing).peak();
    let lo = timing.max_single_op_power();
    let hi = peak * 1.1;
    let steps = steps.max(2);
    (0..steps)
        .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::paper_library;

    #[test]
    fn power_sweep_area_is_monotone_nonincreasing_on_hal() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let grid = auto_power_grid(&g, &lib, 8);
        let points = power_sweep(&g, &lib, 17, &grid, &SynthesisOptions::default());
        let areas: Vec<u64> = points.iter().filter_map(|p| p.area).collect();
        assert!(areas.len() >= 4, "most of the grid is feasible");
        for w in areas.windows(2) {
            assert!(w[1] <= w[0], "area must not grow with power: {areas:?}");
        }
    }

    #[test]
    fn infeasible_points_are_marked() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let points = power_sweep(&g, &lib, 10, &[0.5, 1e6], &SynthesisOptions::default());
        assert!(!points[0].is_feasible());
        assert!(points[1].is_feasible());
    }

    #[test]
    fn tighter_latency_curve_dominates() {
        // Figure 2: the T=10 hal curve lies above the T=17 curve.
        let g = benchmarks::hal();
        let lib = paper_library();
        let grid = [30.0, 60.0, 120.0];
        let tight = power_sweep(&g, &lib, 10, &grid, &SynthesisOptions::default());
        let loose = power_sweep(&g, &lib, 17, &grid, &SynthesisOptions::default());
        for (a, b) in tight.iter().zip(&loose) {
            if let (Some(at), Some(bt)) = (a.area, b.area) {
                assert!(at >= bt, "T=10 area {at} < T=17 area {bt}");
            }
        }
    }

    #[test]
    fn auto_grid_brackets_the_interesting_region() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let grid = auto_power_grid(&g, &lib, 10);
        assert_eq!(grid.len(), 10);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert!((grid[0] - 8.1).abs() < 1e-9, "starts at mult_par power");
    }

    #[test]
    fn latency_sweep_runs_and_is_monotone() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let pts = latency_sweep(
            &g,
            &lib,
            25.0,
            &[8, 12, 17, 25],
            &SynthesisOptions::default(),
        );
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().skip(1).all(SweepPoint::is_feasible));
        let areas: Vec<u64> = pts.iter().filter_map(|p| p.area).collect();
        for w in areas.windows(2) {
            assert!(w[1] <= w[0], "{areas:?}");
        }
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let mut all = Vec::new();
        for t in [10, 17] {
            all.extend(power_sweep(
                &g,
                &lib,
                t,
                &[10.0, 20.0, 40.0],
                &SynthesisOptions::default(),
            ));
        }
        let front = pareto_front(&all);
        assert!(!front.is_empty());
        assert!(front.len() <= all.iter().filter(|p| p.is_feasible()).count());
        // No point on the front dominates another front point.
        for a in &front {
            for b in &front {
                if a == b {
                    continue;
                }
                let dominates = b.power_bound <= a.power_bound
                    && b.latency_bound <= a.latency_bound
                    && b.area <= a.area
                    && (b.power_bound < a.power_bound
                        || b.latency_bound < a.latency_bound
                        || b.area < a.area);
                assert!(!dominates, "{b:?} dominates {a:?}");
            }
        }
    }
}
