//! Design-space exploration: the sweeps behind Figure 2.
//!
//! The free sweep functions in this module predate the
//! [`Engine`](crate::Engine) API and are kept as thin shims: each builds
//! a throwaway engine, compiles the graph **once for the whole sweep**,
//! and delegates to [`Session::sweep`](crate::Session::sweep). New code
//! should compile once and sweep many times instead.

use serde::{Deserialize, Serialize};

use pchls_cdfg::Cdfg;
use pchls_fulib::ModuleLibrary;

use crate::constraints::SynthesisConstraints;
use crate::engine::{CompiledGraph, Engine, SweepSpec};
use crate::options::SynthesisOptions;
use crate::synthesis::synthesize_session;

/// One point of a constraint sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Benchmark name.
    pub benchmark: String,
    /// Latency constraint `T`.
    pub latency_bound: u32,
    /// Power constraint `P<`.
    pub power_bound: f64,
    /// Synthesized functional-unit area, if the point was feasible.
    pub area: Option<u64>,
    /// Achieved latency, if feasible.
    pub latency: Option<u32>,
    /// Achieved peak power, if feasible.
    pub peak_power: Option<f64>,
    /// Number of functional-unit instances, if feasible.
    pub units: Option<usize>,
}

impl SweepPoint {
    /// Whether synthesis succeeded at this point.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.area.is_some()
    }
}

/// Which constraint axis a sweep varies (and therefore which field the
/// monotone-envelope pass rewrites when it carries a better design
/// forward).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SweepAxis {
    Power,
    Latency,
}

/// Synthesizes `graph` at a fixed latency for every power bound in
/// `powers`, producing one curve of Figure 2.
///
/// Any design feasible under a tight power bound remains feasible under
/// every looser one, so each point reports the best design found at any
/// bound `≤ P` — the monotone envelope of the greedy's raw output. (A
/// greedy heuristic can otherwise produce occasional upward blips where
/// *less* pressure sends it down a worse path; the envelope is what a
/// designer sweeping the constraint would actually keep.)
///
/// Every grid point is an independent synthesis run, so the raw-points
/// phase executes in parallel across all cores ([`pchls_par::par_map`]);
/// the envelope pass then runs sequentially in ascending-bound order,
/// making the output **byte-identical** to a serial sweep
/// ([`power_sweep_serial`]). Set `PCHLS_THREADS=1` to force serial
/// execution.
#[deprecated(
    since = "0.2.0",
    note = "compile once and sweep many times: `engine.session(&compiled)\
            .sweep(&SweepSpec::power(latency, powers.to_vec()), options)`"
)]
#[must_use]
pub fn power_sweep(
    graph: &Cdfg,
    library: &ModuleLibrary,
    latency: u32,
    powers: &[f64],
    options: &SynthesisOptions,
) -> Vec<SweepPoint> {
    let engine = Engine::new(library.clone());
    let compiled = engine.compile(graph);
    engine
        .session(&compiled)
        .sweep(&SweepSpec::power(latency, powers.to_vec()), options)
        .into_points()
}

/// Reference serial implementation of [`power_sweep`]: identical output,
/// one synthesis at a time. Kept as the baseline the determinism tests
/// and the perf suite compare against.
#[must_use]
pub fn power_sweep_serial(
    graph: &Cdfg,
    library: &ModuleLibrary,
    latency: u32,
    powers: &[f64],
    options: &SynthesisOptions,
) -> Vec<SweepPoint> {
    let engine = Engine::new(library.clone());
    let compiled = engine.compile(graph);
    let raw = powers
        .iter()
        .map(|&p| {
            run_point(
                &engine,
                &compiled,
                SynthesisConstraints::new(latency, p),
                options,
            )
        })
        .collect();
    envelope(raw, &power_order(powers), SweepAxis::Power)
}

/// Synthesizes `graph` at a fixed power bound for every latency in
/// `latencies` (the orthogonal cut through the constraint space).
///
/// As with [`power_sweep`], each point reports the best design found at
/// any latency `≤ T` — a design meeting a tighter deadline meets every
/// looser one. Raw points run in parallel; the envelope is sequential,
/// so the output equals [`latency_sweep_serial`] exactly.
#[deprecated(
    since = "0.2.0",
    note = "compile once and sweep many times: `engine.session(&compiled)\
            .sweep(&SweepSpec::latency(power, latencies.to_vec()), options)`"
)]
#[must_use]
pub fn latency_sweep(
    graph: &Cdfg,
    library: &ModuleLibrary,
    power: f64,
    latencies: &[u32],
    options: &SynthesisOptions,
) -> Vec<SweepPoint> {
    let engine = Engine::new(library.clone());
    let compiled = engine.compile(graph);
    engine
        .session(&compiled)
        .sweep(&SweepSpec::latency(power, latencies.to_vec()), options)
        .into_points()
}

/// Reference serial implementation of [`latency_sweep`].
#[must_use]
pub fn latency_sweep_serial(
    graph: &Cdfg,
    library: &ModuleLibrary,
    power: f64,
    latencies: &[u32],
    options: &SynthesisOptions,
) -> Vec<SweepPoint> {
    let engine = Engine::new(library.clone());
    let compiled = engine.compile(graph);
    let raw = latencies
        .iter()
        .map(|&t| {
            run_point(
                &engine,
                &compiled,
                SynthesisConstraints::new(t, power),
                options,
            )
        })
        .collect();
    envelope(raw, &latency_order(latencies), SweepAxis::Latency)
}

/// One whole-curve request for [`sweep_many`]: a graph swept over
/// `powers` at a fixed `latency`.
#[derive(Debug, Clone)]
pub struct SweepRequest<'a> {
    /// The benchmark graph.
    pub graph: &'a Cdfg,
    /// Latency constraint `T` for the whole curve.
    pub latency: u32,
    /// Power bounds of the curve's grid.
    pub powers: &'a [f64],
}

/// Runs many power-sweep curves at once, fanning **all grid points of
/// all curves** out across the worker pool.
///
/// This is the entry point for whole-figure regeneration (all six
/// Figure 2 curves at once): flattening the `curves × grid` rectangle
/// into one job list keeps every core busy even while the last few
/// expensive points of one curve are still running, which a
/// curve-at-a-time loop over [`power_sweep`] cannot do. Each returned
/// curve is byte-identical to [`power_sweep_serial`] on the same inputs.
#[deprecated(
    since = "0.2.0",
    note = "compile each graph once and use `engine.sweep_batch(&jobs, options)` \
            with `SweepJob { compiled, spec }` entries"
)]
#[must_use]
pub fn sweep_many(
    requests: &[SweepRequest<'_>],
    library: &ModuleLibrary,
    options: &SynthesisOptions,
) -> Vec<Vec<SweepPoint>> {
    use crate::engine::SweepJob;
    let engine = Engine::new(library.clone());
    let compiled: Vec<CompiledGraph> = requests.iter().map(|r| engine.compile(r.graph)).collect();
    let jobs: Vec<SweepJob<'_>> = requests
        .iter()
        .zip(&compiled)
        .map(|(r, c)| SweepJob {
            compiled: c,
            spec: SweepSpec::power(r.latency, r.powers.to_vec()),
        })
        .collect();
    engine
        .sweep_batch(&jobs, options)
        .into_iter()
        .map(crate::engine::SweepResult::into_points)
        .collect()
}

/// Ascending visit order over a float grid.
pub(crate) fn power_order(powers: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..powers.len()).collect();
    order.sort_by(|&a, &b| powers[a].partial_cmp(&powers[b]).expect("finite bounds"));
    order
}

/// Ascending visit order over a latency grid.
pub(crate) fn latency_order(latencies: &[u32]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..latencies.len()).collect();
    order.sort_by_key(|&i| latencies[i]);
    order
}

/// The sequential monotone-envelope pass: visiting raw points in
/// ascending-constraint `order`, replaces any point worse than the best
/// seen so far with that best design (re-labelled to the point's own
/// bound). Points are moved, not cloned; only an actual carry copies the
/// best design into the slot.
pub(crate) fn envelope(raw: Vec<SweepPoint>, order: &[usize], axis: SweepAxis) -> Vec<SweepPoint> {
    let mut points = raw;
    let mut best: Option<usize> = None;
    for &i in order {
        if let Some(b) = best {
            let best_area = points[b].area.expect("best is feasible");
            if best_area < points[i].area.unwrap_or(u64::MAX) {
                let mut carried = points[b].clone();
                match axis {
                    SweepAxis::Power => carried.power_bound = points[i].power_bound,
                    SweepAxis::Latency => carried.latency_bound = points[i].latency_bound,
                }
                points[i] = carried;
            }
        }
        if points[i].is_feasible() {
            best = Some(i);
        }
    }
    points
}

/// Filters sweep points down to the pareto front over
/// `(power bound, latency bound, area)`: points for which no other
/// feasible point is at least as good on all three axes and strictly
/// better on one. Infeasible points never appear.
#[must_use]
pub fn pareto_front(points: &[SweepPoint]) -> Vec<SweepPoint> {
    // Index-based dominance: the O(n²) comparison loop touches only
    // borrowed points; the single clone per point happens for survivors
    // at collection time.
    let feasible: Vec<usize> = points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_feasible())
        .map(|(i, _)| i)
        .collect();
    let dominates = |b: &SweepPoint, a: &SweepPoint| {
        let (b_area, a_area) = (b.area.expect("feasible"), a.area.expect("feasible"));
        let no_worse = b.power_bound <= a.power_bound
            && b.latency_bound <= a.latency_bound
            && b_area <= a_area;
        let better =
            b.power_bound < a.power_bound || b.latency_bound < a.latency_bound || b_area < a_area;
        no_worse && better
    };
    feasible
        .iter()
        .filter(|&&i| {
            !feasible
                .iter()
                .any(|&j| j != i && dominates(&points[j], &points[i]))
        })
        .map(|&i| points[i].clone())
        .collect()
}

/// One grid point through the session kernel, summarized for a sweep
/// (the one `Result` → [`SweepPoint`] construction site, shared with
/// [`crate::SynthesisResult::to_point`]).
pub(crate) fn run_point(
    engine: &Engine,
    compiled: &CompiledGraph,
    constraints: SynthesisConstraints,
    options: &SynthesisOptions,
) -> SweepPoint {
    use crate::engine::{SynthesisRequest, SynthesisResult};
    let outcome = synthesize_session(engine, compiled, &constraints, options, None);
    SynthesisResult {
        request: SynthesisRequest::new(constraints).with_options(*options),
        outcome,
    }
    .to_point(compiled.name())
}

/// A sensible power grid for sweeping `graph`: `steps` evenly spaced
/// bounds from just under the cheapest single operation's power up to
/// the peak of the power-oblivious ASAP design (beyond which the
/// constraint stops binding) plus one step of headroom.
#[must_use]
pub fn auto_power_grid(graph: &Cdfg, library: &ModuleLibrary, steps: usize) -> Vec<f64> {
    let engine = Engine::new(library.clone());
    let compiled = engine.compile(graph);
    engine.session(&compiled).auto_power_grid(steps)
}

#[cfg(test)]
mod tests {
    // These tests cover the deprecated shims on purpose: they must stay
    // byte-identical to the session path until removed.
    #![allow(deprecated)]

    use super::*;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::paper_library;

    #[test]
    fn power_sweep_area_is_monotone_nonincreasing_on_hal() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let grid = auto_power_grid(&g, &lib, 8);
        let points = power_sweep(&g, &lib, 17, &grid, &SynthesisOptions::default());
        let areas: Vec<u64> = points.iter().filter_map(|p| p.area).collect();
        assert!(areas.len() >= 4, "most of the grid is feasible");
        for w in areas.windows(2) {
            assert!(w[1] <= w[0], "area must not grow with power: {areas:?}");
        }
    }

    #[test]
    fn infeasible_points_are_marked() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let points = power_sweep(&g, &lib, 10, &[0.5, 1e6], &SynthesisOptions::default());
        assert!(!points[0].is_feasible());
        assert!(points[1].is_feasible());
    }

    #[test]
    fn tighter_latency_curve_dominates() {
        // Figure 2: the T=10 hal curve lies above the T=17 curve.
        let g = benchmarks::hal();
        let lib = paper_library();
        let grid = [30.0, 60.0, 120.0];
        let tight = power_sweep(&g, &lib, 10, &grid, &SynthesisOptions::default());
        let loose = power_sweep(&g, &lib, 17, &grid, &SynthesisOptions::default());
        for (a, b) in tight.iter().zip(&loose) {
            if let (Some(at), Some(bt)) = (a.area, b.area) {
                assert!(at >= bt, "T=10 area {at} < T=17 area {bt}");
            }
        }
    }

    #[test]
    fn auto_grid_brackets_the_interesting_region() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let grid = auto_power_grid(&g, &lib, 10);
        assert_eq!(grid.len(), 10);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert!((grid[0] - 8.1).abs() < 1e-9, "starts at mult_par power");
    }

    #[test]
    fn latency_sweep_runs_and_is_monotone() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let pts = latency_sweep(
            &g,
            &lib,
            25.0,
            &[8, 12, 17, 25],
            &SynthesisOptions::default(),
        );
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().skip(1).all(SweepPoint::is_feasible));
        let areas: Vec<u64> = pts.iter().filter_map(|p| p.area).collect();
        for w in areas.windows(2) {
            assert!(w[1] <= w[0], "{areas:?}");
        }
    }

    #[test]
    fn parallel_power_sweep_equals_serial() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let grid = auto_power_grid(&g, &lib, 12);
        for t in [10, 17] {
            let par = power_sweep(&g, &lib, t, &grid, &SynthesisOptions::default());
            let ser = power_sweep_serial(&g, &lib, t, &grid, &SynthesisOptions::default());
            assert_eq!(par, ser, "T={t}");
        }
    }

    #[test]
    fn parallel_latency_sweep_equals_serial() {
        let g = benchmarks::cosine();
        let lib = paper_library();
        let lats = [10, 12, 15, 19, 25];
        let par = latency_sweep(&g, &lib, 30.0, &lats, &SynthesisOptions::default());
        let ser = latency_sweep_serial(&g, &lib, 30.0, &lats, &SynthesisOptions::default());
        assert_eq!(par, ser);
    }

    #[test]
    fn sweep_many_matches_per_curve_sweeps() {
        let hal = benchmarks::hal();
        let cosine = benchmarks::cosine();
        let grid = [10.0, 20.0, 40.0, 80.0];
        let opts = SynthesisOptions::default();
        let lib = paper_library();
        let requests = [
            SweepRequest {
                graph: &hal,
                latency: 17,
                powers: &grid,
            },
            SweepRequest {
                graph: &cosine,
                latency: 15,
                powers: &grid,
            },
        ];
        let many = sweep_many(&requests, &lib, &opts);
        assert_eq!(many.len(), 2);
        assert_eq!(many[0], power_sweep_serial(&hal, &lib, 17, &grid, &opts));
        assert_eq!(many[1], power_sweep_serial(&cosine, &lib, 15, &grid, &opts));
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let mut all = Vec::new();
        for t in [10, 17] {
            all.extend(power_sweep(
                &g,
                &lib,
                t,
                &[10.0, 20.0, 40.0],
                &SynthesisOptions::default(),
            ));
        }
        let front = pareto_front(&all);
        assert!(!front.is_empty());
        assert!(front.len() <= all.iter().filter(|p| p.is_feasible()).count());
        // No point on the front dominates another front point.
        for a in &front {
            for b in &front {
                if a == b {
                    continue;
                }
                let dominates = b.power_bound <= a.power_bound
                    && b.latency_bound <= a.latency_bound
                    && b.area <= a.area
                    && (b.power_bound < a.power_bound
                        || b.latency_bound < a.latency_bound
                        || b.area < a.area);
                assert!(!dominates, "{b:?} dominates {a:?}");
            }
        }
    }
}
