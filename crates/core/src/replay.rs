//! Incremental re-synthesis: record one kernel run, replay it against
//! an edited graph.
//!
//! The greedy kernel ([`crate::synthesis`]) spends almost all of its
//! time enumerating and scoring candidates — O(n²·modules) pair merges
//! plus O(n·modules) ledger probes per iteration. After a small graph
//! edit most of that work is provably unchanged: an operation whose
//! dependence cones, timing, lock state, schedule rows and ledger
//! window all match the recorded base run must produce bit-identical
//! candidates, so its enumeration can be skipped and the recorded
//! scores trusted verbatim.
//!
//! The contract is **observation only**: a replayed run executes every
//! candidate *attempt* for real (apply → feasibility probe → commit or
//! undo), on real state, in the cold path's exact order. The memo is
//! only consulted to decide which candidates would have been generated
//! and how they would have scored; any operation for which that cannot
//! be proven (the *hot* set — typically the edit cone plus whatever
//! schedule perturbation leaked out of it) is evaluated fresh. The
//! result is byte-identical to a cold synthesis of the edited graph —
//! designs, decision traces and effort counters — which the
//! differential tests and the `edits` benchmark assert.
//!
//! Soundness leans on three facts established in `synthesis.rs`:
//!
//! 1. every score is a pure function of per-op state the quiet test
//!    compares exactly (f64 bit-equality falls out of equal inputs and
//!    identical arithmetic);
//! 2. the candidate ranking is a total order on `(score, start, op,
//!    enumeration index)`, and the replay key ([`CandKey`]) is
//!    order-isomorphic to the enumeration index;
//! 3. a quiet candidate ranking strictly above the recorded 64th entry
//!    is necessarily *in* the recorded top list, so truncating the
//!    merged stream at that bound loses nothing — and when it might
//!    (no commit before the bound), the kernel falls back to a full
//!    cold enumeration of that iteration.

use pchls_bind::{Binding, InstanceId};
use pchls_cdfg::{iter_and_above, Cdfg, GraphDelta, NodeId, NodeSet, Reachability};
use pchls_fulib::ModuleId;
use pchls_sched::{LockedStarts, OpTiming, PowerLedger, Schedule, TimingMap};

use crate::constraints::SynthesisConstraints;
use crate::options::SynthesisOptions;
use crate::synthesis::{
    existing_decision, fresh_decision, pair_decision, Context, Decision, Target, MAX_ATTEMPTS,
};

/// Replay target of one recorded candidate, with instance identity
/// abstracted to a *bucket position*: "the p-th open instance of module
/// m" survives edits that renumber instances, a raw [`InstanceId`]
/// would not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecTarget {
    /// Merge onto the instance at `by_module[module][pos]`.
    Existing { pos: u32 },
    /// Open a dedicated instance.
    Fresh,
    /// Open a shared instance for the op and `partner` (base ids).
    FreshPair { partner: NodeId, partner_start: u32 },
}

/// Tie-break key mirroring the cold path's enumeration index: singles
/// sort as `(0, op, module position, bucket position | MAX)` and pairs
/// as `(1, min id, max id, module position)` — lexicographically
/// order-isomorphic to the enumeration order of `enumerate_candidates`.
/// Recorded keys hold base ids; replay rebuilds them with edited ids
/// (the delta mapping is id-monotone, so relative order is preserved).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct CandKey {
    pub(crate) tier: u8,
    pub(crate) a: u32,
    pub(crate) b: u32,
    pub(crate) c: u32,
}

/// One entry of a recorded iteration's attempted ranking.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RecCand {
    pub(crate) score: f64,
    pub(crate) start: u32,
    /// The decision's op (base id; for pairs the dependence-ordered
    /// *first* op).
    pub(crate) op: NodeId,
    pub(crate) module: ModuleId,
    pub(crate) target: RecTarget,
    pub(crate) key: CandKey,
}

/// Everything the replay-side quiet test compares for one recorded
/// kernel iteration, snapshotted at the enumeration point (after the
/// per-iteration buffers were rebuilt, before any attempt mutated
/// state).
#[derive(Debug, Clone)]
pub(crate) struct MemoIter {
    /// `pasap` starts per base op.
    pub(crate) provisional: Vec<u32>,
    /// `palap` (or fallback) starts per base op.
    pub(crate) late: Vec<u32>,
    /// Lock state per base op.
    pub(crate) locked: Vec<Option<u32>>,
    /// Timing entry per base op.
    pub(crate) timing: Vec<OpTiming>,
    /// Reserved ledger power per cycle, `0..horizon`.
    pub(crate) ledger_used: Vec<f64>,
    /// Unbound set at this iteration.
    pub(crate) unbound: NodeSet,
    /// Per module, per bucket position: the instance's bound ops,
    /// ascending (base ids).
    pub(crate) buckets: Vec<Vec<Vec<NodeId>>>,
    /// The iteration's `start0` score table (base layout).
    pub(crate) start0: Vec<Option<u32>>,
    /// The iteration's `avoided` score table (base layout).
    pub(crate) avoided: Vec<f64>,
    /// The attempted ranking, in order (at most `MAX_ATTEMPTS`).
    pub(crate) top: Vec<RecCand>,
    /// Whether `top` covers *every* enumerated candidate (fewer than
    /// the attempt cap existed).
    pub(crate) complete: bool,
    /// The committed decision's op(s), base ids — `None` only in the
    /// never-pushed pending draft.
    pub(crate) committed: Option<(NodeId, Option<NodeId>)>,
}

/// A recorded synthesis run: the per-iteration observation journal
/// [`Session::resynthesize`](crate::Session::resynthesize) replays
/// against an edited graph.
///
/// Produced by
/// [`Session::synthesize_recorded`](crate::Session::synthesize_recorded);
/// opaque by design — its only consumer is the replay kernel. A memo is
/// tied to the `(engine, compiled graph, constraints, options)` tuple
/// it was recorded under; replaying it through a different engine or
/// library is not meaningful (and is guarded against where cheap).
#[derive(Debug, Clone)]
pub struct SynthesisMemo {
    pub(crate) constraints: SynthesisConstraints,
    pub(crate) options: SynthesisOptions,
    /// Base graph length.
    pub(crate) n: usize,
    /// Library length at record time (cheap engine-identity guard).
    pub(crate) lib_len: usize,
    /// Bootstrap module estimates per base op.
    pub(crate) est_modules: Vec<ModuleId>,
    /// Base-graph transitive closure (pair orientation checks).
    pub(crate) base_reach: Option<Reachability>,
    /// One entry per committed iteration, in order; recording stops at
    /// the first backtrack (every later iteration depends on it).
    pub(crate) iters: Vec<MemoIter>,
    /// The iteration currently being assembled (record mode only).
    pub(crate) pending: Option<MemoIter>,
    /// Set at the first backtrack: nothing further is recorded.
    pub(crate) stopped: bool,
}

impl SynthesisMemo {
    /// An empty shell for the kernel's record mode to fill.
    pub(crate) fn empty(constraints: SynthesisConstraints, options: SynthesisOptions) -> Self {
        SynthesisMemo {
            constraints,
            options,
            n: 0,
            lib_len: 0,
            est_modules: Vec::new(),
            base_reach: None,
            iters: Vec::new(),
            pending: None,
            stopped: false,
        }
    }

    /// The constraint point this memo was recorded under (replays
    /// always re-use it — a memo is meaningless at any other point).
    #[must_use]
    pub fn constraints(&self) -> &SynthesisConstraints {
        &self.constraints
    }

    /// The kernel options this memo was recorded under.
    #[must_use]
    pub fn options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// Number of operations in the recorded (base) graph.
    #[must_use]
    pub fn ops(&self) -> usize {
        self.n
    }

    /// Number of recorded iterations (committed decisions); recording
    /// stops at the first backtrack, so this can be smaller than the
    /// run's iteration count.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iters.len()
    }

    /// Record-mode hook: run-level header, captured once after
    /// bootstrap.
    pub(crate) fn begin(
        &mut self,
        constraints: SynthesisConstraints,
        options: SynthesisOptions,
        n: usize,
        lib_len: usize,
        est_modules: Vec<ModuleId>,
        base_reach: Reachability,
    ) {
        self.constraints = constraints;
        self.options = options;
        self.n = n;
        self.lib_len = lib_len;
        self.est_modules = est_modules;
        self.base_reach = Some(base_reach);
        self.iters.clear();
        self.pending = None;
        self.stopped = false;
    }

    /// Record-mode hook: iteration-start state rows.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn begin_iteration(
        &mut self,
        provisional: &Schedule,
        late: &Schedule,
        locked: &LockedStarts,
        timing: &TimingMap,
        ledger: &PowerLedger,
        unbound: &NodeSet,
        binding: &Binding,
        by_module: &[Vec<InstanceId>],
        horizon: u32,
    ) {
        if self.stopped {
            return;
        }
        let ids = || (0..self.n).map(|i| NodeId::new(i as u32));
        let buckets = by_module
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&iid| {
                        let mut ops = binding.instance(iid).ops().to_vec();
                        ops.sort_unstable();
                        ops
                    })
                    .collect()
            })
            .collect();
        self.pending = Some(MemoIter {
            provisional: provisional.starts().to_vec(),
            late: late.starts().to_vec(),
            locked: ids().map(|id| locked.get(id)).collect(),
            timing: ids().map(|id| timing.of(id)).collect(),
            ledger_used: (0..horizon).map(|c| ledger.used(c)).collect(),
            unbound: unbound.clone(),
            buckets,
            start0: Vec::new(),
            avoided: Vec::new(),
            top: Vec::new(),
            complete: false,
            committed: None,
        });
    }

    /// Record-mode hook: the iteration's score tables, captured after
    /// `precompute_tables`.
    pub(crate) fn record_tables(&mut self, start0: &[Option<u32>], avoided: &[f64]) {
        if let Some(p) = self.pending.as_mut() {
            p.start0 = start0.to_vec();
            p.avoided = avoided.to_vec();
        }
    }

    /// Record-mode hook: the attempted ranking, captured after the
    /// top-k pass.
    pub(crate) fn record_top(
        &mut self,
        order: &[u32],
        candidates: &[Decision],
        by_module: &[Vec<InstanceId>],
        kind_modules: &[Vec<ModuleId>],
        graph: &Cdfg,
    ) {
        let Some(p) = self.pending.as_mut() else {
            return;
        };
        let module_selection = self.options.module_selection;
        let modules_for = |op: NodeId| -> &[ModuleId] {
            if module_selection {
                &kind_modules[graph.node(op).kind().index()]
            } else {
                std::slice::from_ref(&self.est_modules[op.index()])
            }
        };
        p.top.clear();
        p.top.reserve(order.len());
        for &i in order {
            let d = &candidates[i as usize];
            let m_pos = modules_for(d.op)
                .iter()
                .position(|&m| m == d.module)
                .expect("candidate module comes from modules_for") as u32;
            let (target, key) = match d.target {
                Target::Existing(iid) => {
                    let pos = by_module[d.module.index()]
                        .iter()
                        .position(|&x| x == iid)
                        .expect("existing target is an open instance of its module")
                        as u32;
                    (
                        RecTarget::Existing { pos },
                        CandKey {
                            tier: 0,
                            a: d.op.index() as u32,
                            b: m_pos,
                            c: pos,
                        },
                    )
                }
                Target::Fresh => (
                    RecTarget::Fresh,
                    CandKey {
                        tier: 0,
                        a: d.op.index() as u32,
                        b: m_pos,
                        c: u32::MAX,
                    },
                ),
                Target::FreshPair {
                    partner,
                    partner_start,
                } => {
                    let (lo, hi) = if d.op < partner {
                        (d.op, partner)
                    } else {
                        (partner, d.op)
                    };
                    (
                        RecTarget::FreshPair {
                            partner,
                            partner_start,
                        },
                        CandKey {
                            tier: 1,
                            a: lo.index() as u32,
                            b: hi.index() as u32,
                            c: m_pos,
                        },
                    )
                }
            };
            p.top.push(RecCand {
                score: d.score,
                start: d.start,
                op: d.op,
                module: d.module,
                target,
                key,
            });
        }
        p.complete = candidates.len() <= MAX_ATTEMPTS;
    }

    /// Record-mode hook: the iteration committed; push it.
    pub(crate) fn commit_iteration(&mut self, op: NodeId, partner: Option<NodeId>) {
        if let Some(mut p) = self.pending.take() {
            p.committed = Some((op, partner));
            self.iters.push(p);
        }
    }

    /// Record-mode hook: the iteration backtracked; recording ends
    /// (replays go cold from this iteration on).
    pub(crate) fn abort_recording(&mut self) {
        self.pending = None;
        self.stopped = true;
    }
}

/// Mutable replay cursor handed to the kernel: the memo + delta being
/// replayed, the next recorded iteration to gate against, and reusable
/// per-iteration classification buffers.
pub(crate) struct ReplayState<'m> {
    pub(crate) memo: &'m SynthesisMemo,
    pub(crate) delta: &'m GraphDelta,
    /// Index of the next un-consumed recorded iteration.
    pub(crate) ptr: usize,
    /// Once true, the rest of the run uses the cold path unmodified.
    pub(crate) full: bool,
    /// Per edited op: not provably quiet this iteration (`true` for
    /// every op that is bound, unmapped, touched, or state-divergent).
    hot: Vec<bool>,
    /// Per module: length of the trusted bucket-position prefix.
    trusted: Vec<usize>,
    /// Prefix counts of cycles whose reserved ledger power differs from
    /// the recorded iteration (`dirty_prefix[c]` = dirty cycles below
    /// `c`).
    dirty_prefix: Vec<u32>,
    /// Gated iterations taken (telemetry).
    pub(crate) gated_iterations: usize,
    /// Gated iterations that failed to commit within the recorded trust
    /// bound and had to re-enumerate cold. Each one costs gated planning
    /// *plus* a full cold iteration, so a run that keeps extending is
    /// strictly slower than the cold path — after a few, [`Self::align`]
    /// abandons the memo and finishes cold, bounding the worst case near
    /// the full-recompute cost.
    pub(crate) extensions: usize,
    /// Decayed sum of hot ops over recent gated iterations.
    hot_work: usize,
    /// Decayed sum of unbound ops over the same iterations.
    total_work: usize,
    /// Whether replay abandoned a still-useful memo because the run
    /// diverged (repeated extensions or a sustained hot majority) —
    /// distinct from `full` flipping on normal memo exhaustion.
    pub(crate) bailed: bool,
}

/// Extension fallbacks tolerated before replay bails to the cold path
/// for the rest of the run (see [`ReplayState::extensions`]).
const MAX_EXTENSIONS: usize = 3;

impl<'m> ReplayState<'m> {
    pub(crate) fn new(memo: &'m SynthesisMemo, delta: &'m GraphDelta) -> ReplayState<'m> {
        ReplayState {
            memo,
            delta,
            ptr: 0,
            full: false,
            hot: Vec::new(),
            trusted: Vec::new(),
            dirty_prefix: Vec::new(),
            gated_iterations: 0,
            extensions: 0,
            hot_work: 0,
            total_work: 0,
            bailed: false,
        }
    }

    /// Advances past recorded iterations whose committed operations are
    /// already consumed in this replay, and returns the index of the
    /// iteration to gate against — or `None` once the memo is exhausted
    /// (or replay already fell back to the cold path).
    pub(crate) fn align(&mut self, unbound: &NodeSet) -> Option<usize> {
        if !self.full
            && (self.extensions >= MAX_EXTENSIONS
                || (self.total_work >= 256 && self.hot_work * 2 > self.total_work))
        {
            self.full = true;
            self.bailed = true;
        }
        if self.full {
            return None;
        }
        loop {
            let Some(it) = self.memo.iters.get(self.ptr) else {
                self.full = true;
                return None;
            };
            let Some((op, partner)) = it.committed else {
                self.full = true;
                return None;
            };
            let consumed = |b: NodeId| match self.delta.map_base(b) {
                None => true,
                Some(e) => !unbound.contains(e),
            };
            if consumed(op) && partner.is_none_or(consumed) {
                self.ptr += 1;
                continue;
            }
            self.gated_iterations += 1;
            return Some(self.ptr);
        }
    }
}

/// One gated iteration's merged candidate stream, in the cold path's
/// exact attempt order.
pub(crate) struct GatedPlan {
    pub(crate) entries: Vec<Decision>,
    /// Whether attempting every entry without a commit proves the cold
    /// path would also have backtracked (no truncation happened, or the
    /// attempt cap was reached either way).
    pub(crate) exhaustive: bool,
    /// Hot (freshly evaluated) unbound ops this iteration (telemetry).
    pub(crate) hot_ops: usize,
}

/// Builds the candidate stream for one gated iteration: classifies
/// unbound ops as quiet/hot against the recorded iteration, copies the
/// recorded score tables for quiet ops (computing hot rows fresh),
/// realizes the trusted recorded candidates and merges in freshly
/// evaluated ones, sorted by the cold path's total order.
pub(crate) fn plan_gated_iteration(
    rs: &mut ReplayState<'_>,
    ctx: &mut Context<'_>,
    unbound_vec: &[NodeId],
    unbound_words: &[u64],
) -> GatedPlan {
    let memo = rs.memo;
    let delta = rs.delta;
    let it = &memo.iters[rs.ptr];
    let n = ctx.graph.len();
    let lib_len = ctx.library.len();
    let horizon = ctx.constraints.latency;

    // Cycles whose reserved power diverged from the recorded run, as
    // prefix counts: the quiet test needs "is any cycle of [ready,
    // deadline) dirty" in O(1). The recorded horizon equals this run's
    // (same constraints by construction).
    rs.dirty_prefix.clear();
    rs.dirty_prefix.reserve(horizon as usize + 1);
    rs.dirty_prefix.push(0);
    for c in 0..horizon {
        let last = *rs.dirty_prefix.last().expect("seeded with 0");
        let dirty = u32::from(ctx.ledger.used(c) != it.ledger_used[c as usize]);
        rs.dirty_prefix.push(last + dirty);
    }

    // Quiet/hot classification. `hot` defaults to true for every op, so
    // bound ops and ops outside `unbound_vec` are implicitly hot.
    rs.hot.clear();
    rs.hot.resize(n, true);
    let mut hot_ops = 0usize;
    for &u in unbound_vec {
        let quiet = is_quiet(ctx, memo, it, delta, &rs.dirty_prefix, u);
        rs.hot[u.index()] = !quiet;
        if !quiet {
            hot_ops += 1;
        }
    }
    // Decaying hot-work ratio: a mostly-hot gated iteration costs more
    // than a cold one (fresh evaluation plus classification), so when
    // the recent hot fraction crosses one half the next `align` bails
    // to the cold path. Halving both counters keeps the ratio weighted
    // toward the last few dozen iterations.
    rs.hot_work += hot_ops;
    rs.total_work += unbound_vec.len();
    if rs.total_work >= 4096 {
        rs.hot_work /= 2;
        rs.total_work /= 2;
    }

    // Trusted bucket-position prefix per module: position p is trusted
    // when the replay instance there provably has the recorded busy
    // intervals and op set (under the mapping). Trust stops at the
    // first mismatch — later positions are evaluated fresh.
    rs.trusted.clear();
    rs.trusted.resize(lib_len, 0);
    for m in 0..lib_len {
        let rbucket = &ctx.by_module[m];
        let mbucket = &it.buckets[m];
        let mut t = 0usize;
        while t < rbucket.len()
            && t < mbucket.len()
            && instance_trusted(ctx, it, delta, rbucket[t], &mbucket[t])
        {
            t += 1;
        }
        rs.trusted[m] = t;
    }

    fill_tables(ctx, rs, it, unbound_vec);
    let ctx = &*ctx;

    let mut entries: Vec<(Decision, CandKey)> = Vec::new();
    // Recorded candidates that survive the edit, realized against the
    // replay's instances.
    for rc in &it.top {
        if let Some(e) = realize(ctx, rs, rc) {
            entries.push(e);
        }
    }
    // Freshly evaluated singles: every (module, bucket position, fresh)
    // for hot ops, plus the untrusted bucket tail for quiet ops.
    for &u in unbound_vec {
        for (m_pos, &m) in ctx.modules_for(u).iter().enumerate() {
            let from = if rs.hot[u.index()] {
                0
            } else {
                rs.trusted[m.index()]
            };
            for (p, &iid) in ctx.by_module[m.index()].iter().enumerate().skip(from) {
                if let Some(d) = existing_decision(ctx, u, m, iid) {
                    entries.push((
                        d,
                        CandKey {
                            tier: 0,
                            a: u.index() as u32,
                            b: m_pos as u32,
                            c: p as u32,
                        },
                    ));
                }
            }
            if rs.hot[u.index()] {
                if let Some(d) = fresh_decision(ctx, u, m) {
                    entries.push((
                        d,
                        CandKey {
                            tier: 0,
                            a: u.index() as u32,
                            b: m_pos as u32,
                            c: u32::MAX,
                        },
                    ));
                }
            }
        }
    }
    // Freshly evaluated pairs: any pair with a hot endpoint, plus
    // quiet-quiet pairs whose dependence orientation flipped (their
    // recorded decision no longer matches the cold enumeration).
    let base_reach = memo.base_reach.as_ref().expect("recorded memo has a reach");
    for &u in unbound_vec {
        for v in iter_and_above(unbound_words, ctx.compat_row(u), u.index()) {
            let fresh_needed = rs.hot[u.index()] || rs.hot[v.index()] || {
                let ub = delta.map_edited(u).expect("quiet ops are mapped");
                let vb = delta.map_edited(v).expect("quiet ops are mapped");
                ctx.reach.reaches(v, u) != base_reach.reaches(vb, ub)
            };
            if !fresh_needed {
                continue;
            }
            let (first, second) = if ctx.reach.reaches(v, u) {
                (v, u)
            } else {
                (u, v)
            };
            for (m_pos, &m) in ctx.modules_for(first).iter().enumerate() {
                if let Some(d) = pair_decision(ctx, first, second, m) {
                    entries.push((
                        d,
                        CandKey {
                            tier: 1,
                            a: u.index() as u32,
                            b: v.index() as u32,
                            c: m_pos as u32,
                        },
                    ));
                }
            }
        }
    }

    // The cold path's total order: score desc, start asc, op asc, then
    // the enumeration-isomorphic key.
    entries.sort_by(|x, y| {
        y.0.score
            .partial_cmp(&x.0.score)
            .expect("scores are finite")
            .then(x.0.start.cmp(&y.0.start))
            .then(x.0.op.cmp(&y.0.op))
            .then(x.1.cmp(&y.1))
    });

    let mut exhaustive = it.complete;
    if !it.complete {
        // The record was truncated at the attempt cap: only entries
        // strictly better than the recorded 64th (score, start) are
        // provably a prefix of the cold ranking — unknown base
        // candidates could interleave at or below the bound.
        if let Some(bound) = it.top.last() {
            entries.retain(|(d, _)| {
                d.score > bound.score || (d.score == bound.score && d.start < bound.start)
            });
        }
    }
    if entries.len() > MAX_ATTEMPTS {
        entries.truncate(MAX_ATTEMPTS);
        // The cold path would have stopped at the cap too.
        exhaustive = true;
    }
    GatedPlan {
        entries: entries.into_iter().map(|(d, _)| d).collect(),
        exhaustive,
        hot_ops,
    }
}

/// Whether every input the scoring of `u`'s candidates reads is
/// bit-identical to the recorded iteration — in which case its recorded
/// candidates (and their absence beyond the recorded list) are trusted
/// verbatim.
fn is_quiet(
    ctx: &Context<'_>,
    memo: &SynthesisMemo,
    it: &MemoIter,
    delta: &GraphDelta,
    dirty_prefix: &[u32],
    u: NodeId,
) -> bool {
    // Structurally identical and mapped: operand list, out-edges and
    // kind unchanged (touched covers added nodes too).
    if delta.touched().contains(u) {
        return false;
    }
    let Some(ub) = delta.map_edited(u) else {
        return false;
    };
    let ubi = ub.index();
    if !it.unbound.contains(ub) {
        return false;
    }
    // Own state rows.
    if ctx.locked.get(u) != it.locked[ubi] {
        return false;
    }
    let t = ctx.timing.of(u);
    let tb = it.timing[ubi];
    if t.delay != tb.delay || t.power != tb.power {
        return false;
    }
    if ctx.provisional.start(u) != it.provisional[ubi] || ctx.late.start(u) != it.late[ubi] {
        return false;
    }
    if !ctx.options.module_selection && ctx.est_modules[u.index()] != memo.est_modules[ubi] {
        return false;
    }
    // Operand readiness terms (positionally mapped — `u` is untouched).
    let mut ready = 0u32;
    for &p in ctx.graph.operands(u) {
        let Some(pb) = delta.map_edited(p) else {
            return false;
        };
        let term = ctx.provisional.start(p) + ctx.timing.delay(p);
        if term != it.provisional[pb.index()] + it.timing[pb.index()].delay {
            return false;
        }
        ready = ready.max(term);
    }
    // Locked-successor deadline term.
    let mut succ_min = u32::MAX;
    let mut succ_min_base = u32::MAX;
    for &s in ctx.graph.successors(u) {
        if let Some(ls) = ctx.locked.get(s) {
            succ_min = succ_min.min(ls);
        }
        let Some(sb) = delta.map_edited(s) else {
            return false;
        };
        if let Some(ls) = it.locked[sb.index()] {
            succ_min_base = succ_min_base.min(ls);
        }
    }
    if succ_min != succ_min_base {
        return false;
    }
    // Ledger window: every cycle a `candidate_start` probe for `u`
    // could consult must carry the recorded reserved power. The probe
    // window is module-independent — `earliest_fit_by(ready, ·, ·,
    // deadline)` reads cells within `[ready, min(deadline, horizon))`
    // only — and `ready`/`deadline` are built from quantities verified
    // equal above.
    let soft_deadline = (ctx.late.start(u) + t.delay).max(ctx.provisional.start(u) + t.delay);
    let deadline = succ_min.min(soft_deadline).min(ctx.constraints.latency);
    if ready < deadline && dirty_prefix[deadline as usize] - dirty_prefix[ready as usize] != 0 {
        return false;
    }
    true
}

/// Whether the replay instance at one bucket position provably equals
/// the recorded one: same op multiset under the mapping, every bound op
/// untouched with unchanged lock/timing — hence identical busy
/// intervals *and* identical interconnect-scoring neighbour sets.
fn instance_trusted(
    ctx: &Context<'_>,
    it: &MemoIter,
    delta: &GraphDelta,
    iid: InstanceId,
    memo_ops: &[NodeId],
) -> bool {
    let ops = ctx.binding.instance(iid).ops();
    if ops.len() != memo_ops.len() {
        return false;
    }
    let mut mapped: Vec<NodeId> = Vec::with_capacity(ops.len());
    for &w in ops {
        if delta.touched().contains(w) {
            return false;
        }
        let Some(wb) = delta.map_edited(w) else {
            return false;
        };
        if ctx.locked.get(w) != it.locked[wb.index()] {
            return false;
        }
        let t = ctx.timing.of(w);
        let tb = it.timing[wb.index()];
        if t.delay != tb.delay || t.power != tb.power {
            return false;
        }
        mapped.push(wb);
    }
    mapped.sort_unstable();
    mapped == memo_ops
}

/// Fills the iteration's score tables: quiet rows are copied from the
/// memo (they are provably bit-identical), hot rows are computed
/// exactly as `precompute_tables` would.
fn fill_tables(ctx: &mut Context<'_>, rs: &ReplayState<'_>, it: &MemoIter, unbound_vec: &[NodeId]) {
    let lib_len = ctx.library.len();
    let n = ctx.graph.len();
    let mut start0 = std::mem::take(&mut ctx.start0);
    start0.clear();
    start0.resize(n * lib_len, None);
    let mut avoided = std::mem::take(&mut ctx.avoided);
    avoided.clear();
    avoided.resize(n, 0.0);
    for &u in unbound_vec {
        if !rs.hot[u.index()] {
            let ub = rs.delta.map_edited(u).expect("quiet ops are mapped");
            for &m in ctx.kind_list(u) {
                start0[u.index() * lib_len + m.index()] =
                    it.start0[ub.index() * lib_len + m.index()];
            }
            avoided[u.index()] = it.avoided[ub.index()];
        } else {
            for &m in ctx.kind_list(u) {
                start0[u.index() * lib_len + m.index()] = ctx.candidate_start(u, m, 0);
            }
            let row = ctx.kind_list(u);
            avoided[u.index()] = row
                .iter()
                .filter(|&&m| start0[u.index() * lib_len + m.index()].is_some())
                .map(|&m| ctx.library.module(m).area())
                .min()
                .or_else(|| row.iter().map(|&m| ctx.library.module(m).area()).min())
                .map(f64::from)
                .expect("library coverage checked at bootstrap");
        }
    }
    ctx.start0 = start0;
    ctx.avoided = avoided;
}

/// Maps one recorded candidate into the replay, or drops it: dropped
/// candidates are exactly those the fresh-evaluation loops regenerate
/// (hot/unmapped/bound endpoints, untrusted bucket positions, flipped
/// pair orientations).
fn realize(ctx: &Context<'_>, rs: &ReplayState<'_>, rc: &RecCand) -> Option<(Decision, CandKey)> {
    let delta = rs.delta;
    let op = delta.map_base(rc.op)?;
    // `hot` is true for bound and unmapped ops too, so this single
    // check covers "still unbound and provably quiet".
    if rs.hot[op.index()] {
        return None;
    }
    match rc.target {
        RecTarget::Fresh => Some((
            Decision {
                op,
                module: rc.module,
                start: rc.start,
                target: Target::Fresh,
                score: rc.score,
            },
            CandKey {
                tier: 0,
                a: op.index() as u32,
                b: rc.key.b,
                c: u32::MAX,
            },
        )),
        RecTarget::Existing { pos } => {
            if (pos as usize) >= rs.trusted[rc.module.index()] {
                return None;
            }
            let iid = ctx.by_module[rc.module.index()][pos as usize];
            Some((
                Decision {
                    op,
                    module: rc.module,
                    start: rc.start,
                    target: Target::Existing(iid),
                    score: rc.score,
                },
                CandKey {
                    tier: 0,
                    a: op.index() as u32,
                    b: rc.key.b,
                    c: pos,
                },
            ))
        }
        RecTarget::FreshPair {
            partner,
            partner_start,
        } => {
            let p = delta.map_base(partner)?;
            if rs.hot[p.index()] {
                return None;
            }
            // Orientation must match: the recorded first op stays first
            // exactly when the dependence direction between the (id-
            // ordered) endpoints is unchanged. The mapping is
            // id-monotone, so min/max correspond across the graphs.
            let (ub, vb) = if rc.op < partner {
                (rc.op, partner)
            } else {
                (partner, rc.op)
            };
            let (u, v) = if op < p { (op, p) } else { (p, op) };
            let base_reach = rs.memo.base_reach.as_ref().expect("recorded memo");
            if ctx.reach.reaches(v, u) != base_reach.reaches(vb, ub) {
                return None;
            }
            Some((
                Decision {
                    op,
                    module: rc.module,
                    start: rc.start,
                    target: Target::FreshPair {
                        partner: p,
                        partner_start,
                    },
                    score: rc.score,
                },
                CandKey {
                    tier: 1,
                    a: u.index() as u32,
                    b: v.index() as u32,
                    c: rc.key.c,
                },
            ))
        }
    }
}
