//! Extended area accounting: registers and steering logic.
//!
//! The paper's Figure 2 reports "area" without defining whether storage
//! and multiplexers are included; Table 1 prices functional units only.
//! This module prices the rest of the datapath so both conventions are
//! available — and so the magnitude question raised in `EXPERIMENTS.md`
//! (our FU-only areas sit below the paper's) can be explored.

use serde::{Deserialize, Serialize};

use pchls_cdfg::Cdfg;

use crate::design::SynthesizedDesign;

/// Unit prices for the non-FU datapath components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Area of one register (word-wide storage element).
    pub register: u32,
    /// Area of one extra multiplexer input (fan-in beyond the first) on
    /// functional-unit operand ports and register write ports.
    pub mux_input: u32,
}

impl AreaModel {
    /// The paper's convention: functional units only.
    #[must_use]
    pub fn fu_only() -> AreaModel {
        AreaModel {
            register: 0,
            mux_input: 0,
        }
    }

    /// A plausible RT-level pricing against Table 1's scale: a register
    /// costs about a quarter of an adder, a mux input about a
    /// twentieth.
    #[must_use]
    pub fn with_storage() -> AreaModel {
        AreaModel {
            register: 22,
            mux_input: 4,
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::fu_only()
    }
}

/// Breakdown of a design's area under an [`AreaModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Functional-unit area (the paper's number).
    pub functional_units: u64,
    /// Register storage area.
    pub registers: u64,
    /// Steering (multiplexer) area.
    pub interconnect: u64,
}

impl AreaBreakdown {
    /// Total datapath area.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.functional_units + self.registers + self.interconnect
    }
}

/// Prices `design` under `model`.
#[must_use]
pub fn area_breakdown(design: &SynthesizedDesign, graph: &Cdfg, model: AreaModel) -> AreaBreakdown {
    let registers = design.registers(graph);
    let interconnect = design.interconnect(graph);
    AreaBreakdown {
        functional_units: design.area,
        registers: registers.count() as u64 * u64::from(model.register),
        interconnect: interconnect.total() as u64 * u64::from(model.mux_input),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::SynthesisConstraints;
    use crate::engine::Engine;
    use crate::options::SynthesisOptions;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::paper_library;

    fn design() -> (Cdfg, SynthesizedDesign) {
        let g = benchmarks::hal();
        let engine = Engine::new(paper_library());
        let compiled = engine.compile(&g);
        let d = engine
            .session(&compiled)
            .synthesize(
                SynthesisConstraints::new(17, 25.0),
                &SynthesisOptions::default(),
            )
            .unwrap();
        (g, d)
    }

    #[test]
    fn fu_only_matches_the_design_area() {
        let (g, d) = design();
        let b = area_breakdown(&d, &g, AreaModel::fu_only());
        assert_eq!(b.total(), d.area);
        assert_eq!(b.registers, 0);
        assert_eq!(b.interconnect, 0);
    }

    #[test]
    fn storage_model_adds_positive_components() {
        let (g, d) = design();
        let b = area_breakdown(&d, &g, AreaModel::with_storage());
        assert_eq!(b.functional_units, d.area);
        assert!(b.registers > 0);
        assert!(b.total() > d.area);
    }

    #[test]
    fn breakdown_is_linear_in_prices() {
        let (g, d) = design();
        let single = area_breakdown(
            &d,
            &g,
            AreaModel {
                register: 1,
                mux_input: 1,
            },
        );
        let double = area_breakdown(
            &d,
            &g,
            AreaModel {
                register: 2,
                mux_input: 2,
            },
        );
        assert_eq!(double.registers, 2 * single.registers);
        assert_eq!(double.interconnect, 2 * single.interconnect);
    }
}
