//! Self-tightening refinement: use the power constraint as an internal
//! pressure knob.
//!
//! The greedy loop shares more hardware when the power budget forces
//! operations apart in time; a generous budget can therefore leave area
//! on the table. Since any design feasible under a *tighter* budget is
//! feasible under the requested one, re-running synthesis with the bound
//! ratcheted down to just below the previously achieved peak explores
//! those better-shared designs for free. The best design is reported
//! against the caller's original constraints.

use pchls_cdfg::Cdfg;
use pchls_fulib::ModuleLibrary;

use crate::constraints::SynthesisConstraints;
use crate::design::SynthesizedDesign;
use crate::engine::{CompiledGraph, Engine};
use crate::error::SynthesisError;
use crate::options::SynthesisOptions;
use crate::synthesis::synthesize_session;

/// Upper bound on ratchet iterations; each strictly lowers the internal
/// power bound, so termination is guaranteed anyway (peaks live on the
/// finite grid of module-power sums), but a cap keeps worst cases cheap.
const MAX_RATCHETS: usize = 64;

/// Like [`synthesize`](crate::synthesize), then repeatedly
/// re-synthesizes with the power bound tightened to just below the
/// achieved peak, keeping the smallest design. Never returns a larger
/// design than plain synthesis does, and the result is validated
/// against the *original* constraints.
///
/// # Errors
///
/// Exactly as [`synthesize`](crate::synthesize) — refinement only runs
/// once a first design exists.
#[deprecated(
    since = "0.2.0",
    note = "use `engine.session(&compiled).synthesize_refined(constraints, options)`"
)]
pub fn synthesize_refined(
    graph: &Cdfg,
    library: &ModuleLibrary,
    constraints: SynthesisConstraints,
    options: &SynthesisOptions,
) -> Result<SynthesizedDesign, SynthesisError> {
    let engine = Engine::new(library.clone());
    let compiled = engine.compile(graph);
    refined_session(&engine, &compiled, &constraints, options)
}

/// [`synthesize_refined`] over precompiled session artifacts: every
/// ratchet iteration reuses the same compiled graph.
pub(crate) fn refined_session(
    engine: &Engine,
    compiled: &CompiledGraph,
    constraints: &SynthesisConstraints,
    options: &SynthesisOptions,
) -> Result<SynthesizedDesign, SynthesisError> {
    let (graph, library) = (compiled.graph(), engine.library());
    let mut best = synthesize_session(engine, compiled, constraints, options, None)?;
    let mut bound = best.peak_power;
    for _ in 0..MAX_RATCHETS {
        // Just below the last peak: forbids the previous placement.
        let tighter = bound - 1e-6;
        if tighter <= 0.0 {
            break;
        }
        // Cap the caller's budget at the ratchet bound instead of
        // replacing it: an envelope constraint keeps every tighter
        // phase, so the candidate stays feasible under the original
        // envelope (for a scalar budget this is the historical constant
        // `tighter`).
        let Ok(candidate) = synthesize_session(
            engine,
            compiled,
            &SynthesisConstraints::new(constraints.latency, constraints.budget.clamped(tighter)),
            options,
            None,
        ) else {
            break;
        };
        let next_bound = candidate.peak_power;
        if candidate.area < best.area {
            best = SynthesizedDesign {
                constraints: constraints.clone(),
                ..candidate
            };
        }
        debug_assert!(next_bound < bound, "ratchet must make progress");
        bound = next_bound;
    }
    best.validate(graph, library)?;
    Ok(best)
}

/// The practical tool entry point: runs the refined combined algorithm
/// *and* the allocation-trimming baseline under both module policies,
/// returning the smallest valid design. Different heuristics win in
/// different regions of the constraint space (see the ablation table in
/// `EXPERIMENTS.md`); a portfolio dominates every member by
/// construction.
///
/// # Errors
///
/// Returns the combined algorithm's error only if *every* member fails —
/// the portfolio is feasible whenever any member is.
#[deprecated(
    since = "0.2.0",
    note = "use `engine.session(&compiled).synthesize_portfolio(constraints, options)`"
)]
pub fn synthesize_portfolio(
    graph: &Cdfg,
    library: &ModuleLibrary,
    constraints: SynthesisConstraints,
    options: &SynthesisOptions,
) -> Result<SynthesizedDesign, SynthesisError> {
    let engine = Engine::new(library.clone());
    let compiled = engine.compile(graph);
    portfolio_session(&engine, &compiled, &constraints, options)
}

/// [`synthesize_portfolio`] over precompiled session artifacts.
pub(crate) fn portfolio_session(
    engine: &Engine,
    compiled: &CompiledGraph,
    constraints: &SynthesisConstraints,
    options: &SynthesisOptions,
) -> Result<SynthesizedDesign, SynthesisError> {
    use crate::baseline::trimmed_allocation_bind;
    use pchls_fulib::SelectionPolicy;

    let (graph, library) = (compiled.graph(), engine.library());
    let mut best: Option<SynthesizedDesign> = None;
    let mut first_err: Option<SynthesisError> = None;
    let mut consider = |result: Result<SynthesizedDesign, SynthesisError>| match result {
        Ok(d) => {
            if best.as_ref().is_none_or(|b| d.area < b.area) {
                best = Some(d);
            }
        }
        Err(e) => {
            if first_err.is_none() {
                first_err = Some(e);
            }
        }
    };
    consider(refined_session(engine, compiled, constraints, options));
    consider(trimmed_allocation_bind(
        graph,
        library,
        constraints.clone(),
        SelectionPolicy::Fastest,
    ));
    consider(trimmed_allocation_bind(
        graph,
        library,
        constraints.clone(),
        SelectionPolicy::MinArea,
    ));
    match best {
        Some(d) => {
            d.validate(graph, library)?;
            Ok(d)
        }
        None => Err(first_err.expect("at least one member ran")),
    }
}

#[cfg(test)]
mod tests {
    // The deprecated shims are under test on purpose: they must match
    // the session path until removed.
    #![allow(deprecated)]

    use super::*;
    use crate::synthesis::synthesize;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::paper_library;

    #[test]
    fn refined_never_worse_than_plain() {
        let lib = paper_library();
        for g in benchmarks::paper_set() {
            for (t, p) in [(30u32, 1e6), (20, 50.0)] {
                let c = SynthesisConstraints::new(t, p);
                let plain = synthesize(&g, &lib, c.clone(), &SynthesisOptions::default()).unwrap();
                let refined =
                    synthesize_refined(&g, &lib, c.clone(), &SynthesisOptions::default()).unwrap();
                assert!(
                    refined.area <= plain.area,
                    "{}: refined {} > plain {}",
                    g.name(),
                    refined.area,
                    plain.area
                );
                refined.validate(&g, &lib).unwrap();
                assert_eq!(refined.constraints, c, "original constraints reported");
            }
        }
    }

    #[test]
    fn refinement_finds_sharing_on_generous_budgets() {
        // hal at T=30 with an unlimited budget: plain synthesis leaves
        // parallelism (and area) on the table that the ratchet recovers.
        let lib = paper_library();
        let g = benchmarks::hal();
        let c = SynthesisConstraints::new(30, 1e6);
        let plain = synthesize(&g, &lib, c.clone(), &SynthesisOptions::default()).unwrap();
        let refined = synthesize_refined(&g, &lib, c, &SynthesisOptions::default()).unwrap();
        assert!(refined.area <= plain.area);
        // The refined design must still satisfy the caller's bound
        // trivially and stay within latency.
        assert!(refined.latency <= 30);
    }

    #[test]
    fn refined_propagates_infeasibility() {
        let lib = paper_library();
        let g = benchmarks::hal();
        let c = SynthesisConstraints::new(4, 1e6);
        assert!(synthesize_refined(&g, &lib, c, &SynthesisOptions::default()).is_err());
    }

    #[test]
    fn portfolio_dominates_every_member() {
        let lib = paper_library();
        for g in benchmarks::paper_set() {
            for (t, p) in [(25u32, 40.0), (30, 12.0)] {
                let c = SynthesisConstraints::new(t, p);
                let port = synthesize_portfolio(&g, &lib, c.clone(), &SynthesisOptions::default())
                    .unwrap_or_else(|e| panic!("{} T={t} P={p}: {e}", g.name()));
                port.validate(&g, &lib).unwrap();
                if let Ok(d) = synthesize_refined(&g, &lib, c.clone(), &SynthesisOptions::default())
                {
                    assert!(port.area <= d.area, "{}: portfolio > refined", g.name());
                }
                if let Ok(d) = crate::baseline::trimmed_allocation_bind(
                    &g,
                    &lib,
                    c.clone(),
                    pchls_fulib::SelectionPolicy::Fastest,
                ) {
                    assert!(port.area <= d.area, "{}: portfolio > trim", g.name());
                }
            }
        }
    }

    #[test]
    fn portfolio_survives_points_where_members_fail() {
        // Low power: trim(Fastest) cannot run parallel multipliers under
        // P<=8, but the portfolio still succeeds via other members.
        let lib = paper_library();
        let g = benchmarks::hal();
        let c = SynthesisConstraints::new(40, 8.0);
        let port = synthesize_portfolio(&g, &lib, c, &SynthesisOptions::default()).unwrap();
        port.validate(&g, &lib).unwrap();
    }
}
