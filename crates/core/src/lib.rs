//! The paper's contribution: simultaneous power- and time-constrained
//! scheduling, allocation and binding minimizing datapath area.
//!
//! [`synthesize`] implements the heuristic of Nielsen & Madsen (DATE
//! 2003): a greedy partial-clique-partitioning loop over the power-aware
//! time-extended compatibility structure. Each iteration recomputes the
//! power-constrained `pasap`/`palap` windows, evaluates every feasible
//! *decision* — bind an operation onto an existing functional-unit
//! instance, or open a new instance with some library module — commits
//! the best one (most area saved, then least interconnect), and verifies
//! that a power-feasible schedule still exists. When a commitment makes
//! the remaining operations unschedulable, the algorithm **backtracks one
//! step and locks all unscheduled operations to the last valid `pasap`
//! schedule**, exactly as prescribed in the paper.
//!
//! The module-selection dimension of the design space (serial vs.
//! parallel multiplier, ALU vs. dedicated units) is explored through the
//! candidate decisions, and an adaptive bootstrap upgrades estimated
//! modules along infeasible critical paths so tight latencies force fast
//! units only where needed.
//!
//! # Example
//!
//! ```
//! use pchls_cdfg::benchmarks::hal;
//! use pchls_core::{synthesize, SynthesisConstraints, SynthesisOptions};
//! use pchls_fulib::paper_library;
//!
//! # fn main() -> Result<(), pchls_core::SynthesisError> {
//! let design = synthesize(
//!     &hal(),
//!     &paper_library(),
//!     SynthesisConstraints::new(17, 25.0),
//!     &SynthesisOptions::default(),
//! )?;
//! assert!(design.latency <= 17);
//! assert!(design.peak_power <= 25.0 + 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod baseline;
mod constraints;
mod design;
mod error;
mod explore;
mod options;
mod refine;
mod synthesis;

pub use area::{area_breakdown, AreaBreakdown, AreaModel};
pub use baseline::{trimmed_allocation_bind, two_step_bind, unconstrained_bind, BaselineDesign};
pub use constraints::SynthesisConstraints;
pub use design::{SynthesisStats, SynthesizedDesign};
pub use error::SynthesisError;
pub use explore::{
    auto_power_grid, latency_sweep, latency_sweep_serial, pareto_front, power_sweep,
    power_sweep_serial, sweep_many, SweepPoint, SweepRequest,
};
pub use options::SynthesisOptions;
pub use refine::{synthesize_portfolio, synthesize_refined};
pub use synthesis::synthesize;
