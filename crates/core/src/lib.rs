//! The paper's contribution: simultaneous power- and time-constrained
//! scheduling, allocation and binding minimizing datapath area.
//!
//! The [`Engine`] implements the heuristic of Nielsen & Madsen (DATE
//! 2003): a greedy partial-clique-partitioning loop over the power-aware
//! time-extended compatibility structure. Each iteration recomputes the
//! power-constrained `pasap`/`palap` windows, evaluates every feasible
//! *decision* — bind an operation onto an existing functional-unit
//! instance, or open a new instance with some library module — commits
//! the best one (most area saved, then least interconnect), and verifies
//! that a power-feasible schedule still exists. When a commitment makes
//! the remaining operations unschedulable, the algorithm **backtracks one
//! step and locks all unscheduled operations to the last valid `pasap`
//! schedule**, exactly as prescribed in the paper.
//!
//! The module-selection dimension of the design space (serial vs.
//! parallel multiplier, ALU vs. dedicated units) is explored through the
//! candidate decisions, and an adaptive bootstrap upgrades estimated
//! modules along infeasible critical paths so tight latencies force fast
//! units only where needed.
//!
//! # The session API
//!
//! Synthesis state is split by lifetime: [`Engine::new`] owns the
//! per-library indexes, [`Engine::compile`] owns the per-graph analyses
//! (reachability bitsets, bootstrap estimates, schedule skeletons), and
//! a [`Session`] synthesizes under any number of `(T, P<)` constraint
//! points — one at a time ([`Session::synthesize`]), as a constraint
//! sweep ([`Session::sweep`]), or as an arbitrary batched request list
//! ([`Session::batch`]) — without recomputing any of it. The historical
//! free functions ([`synthesize`], [`power_sweep`], …) survive as
//! deprecated shims over a throwaway engine, byte-identical in output.
//!
//! # Example
//!
//! ```
//! use pchls_cdfg::benchmarks::hal;
//! use pchls_core::{Engine, SynthesisConstraints, SynthesisOptions};
//! use pchls_fulib::paper_library;
//!
//! # fn main() -> Result<(), pchls_core::SynthesisError> {
//! let engine = Engine::new(paper_library());
//! let compiled = engine.compile(&hal());
//! let design = engine.session(&compiled).synthesize(
//!     SynthesisConstraints::new(17, 25.0),
//!     &SynthesisOptions::default(),
//! )?;
//! assert!(design.latency <= 17);
//! assert!(design.peak_power <= 25.0 + 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod baseline;
mod constraints;
mod design;
mod engine;
mod error;
mod explore;
mod options;
mod refine;
mod replay;
mod synthesis;
mod topk;

pub use area::{area_breakdown, AreaBreakdown, AreaModel};
pub use baseline::{trimmed_allocation_bind, two_step_bind, unconstrained_bind, BaselineDesign};
pub use constraints::SynthesisConstraints;
pub use design::{SynthesisStats, SynthesizedDesign};
pub use engine::{
    CompiledGraph, Engine, Progress, Resynthesis, Session, SweepJob, SweepResult, SweepSpec,
    SynthesisRequest, SynthesisResult,
};
pub use error::SynthesisError;
pub use explore::{
    auto_power_grid, latency_sweep_serial, pareto_front, power_sweep_serial, SweepPoint,
    SweepRequest,
};
#[allow(deprecated)]
pub use explore::{latency_sweep, power_sweep, sweep_many};
pub use options::{SynthesisOptions, SynthesisOptionsBuilder};
pub use pchls_sched::PowerBudget;
#[allow(deprecated)]
pub use refine::{synthesize_portfolio, synthesize_refined};
pub use replay::SynthesisMemo;
#[allow(deprecated)]
pub use synthesis::synthesize;
pub use topk::TopK;
