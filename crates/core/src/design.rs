//! The result of synthesis: a fully scheduled, allocated and bound
//! design.

use serde::{Deserialize, Serialize};

use pchls_bind::{Binding, InterconnectEstimate, RegisterAllocation};
use pchls_cdfg::Cdfg;
use pchls_fulib::ModuleLibrary;
use pchls_sched::{PowerProfile, Schedule, TimingMap};

use crate::constraints::SynthesisConstraints;
use crate::error::SynthesisError;

/// Counters describing how hard the greedy loop had to work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SynthesisStats {
    /// Binding decisions committed (one per operation).
    pub decisions: usize,
    /// Paper-style backtracks (undo last decision + lock all unscheduled
    /// operations to the last valid `pasap` schedule).
    pub backtracks: usize,
    /// Candidate decisions rejected by the per-decision feasibility
    /// check before commitment.
    pub rejected_candidates: usize,
    /// Commits whose feasibility was proven without re-running the
    /// scheduler (the decision locked operations exactly at their
    /// provisional starts with unchanged timing).
    #[serde(default)]
    pub fast_commits: usize,
}

/// A complete synthesized datapath: schedule, module timing, binding and
/// the derived metrics the paper reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesizedDesign {
    /// Start cycle of every operation.
    pub schedule: Schedule,
    /// Final per-operation delay/power (consistent with the binding).
    pub timing: TimingMap,
    /// Functional-unit instances and the operation → instance map.
    pub binding: Binding,
    /// Total functional-unit area (the paper's y-axis in Figure 2).
    pub area: u64,
    /// Achieved latency in cycles.
    pub latency: u32,
    /// Peak per-cycle power of the design.
    pub peak_power: f64,
    /// The constraints the design was synthesized under.
    pub constraints: SynthesisConstraints,
    /// Effort counters from the synthesis loop (zero for baselines).
    #[serde(default)]
    pub stats: SynthesisStats,
}

impl SynthesizedDesign {
    /// Assembles a design from its parts, computing the metrics.
    #[must_use]
    pub fn assemble(
        schedule: Schedule,
        timing: TimingMap,
        binding: Binding,
        library: &ModuleLibrary,
        constraints: SynthesisConstraints,
    ) -> SynthesizedDesign {
        let area = binding.area(library);
        let latency = schedule.latency(&timing);
        let peak_power = PowerProfile::of(&schedule, &timing).peak();
        SynthesizedDesign {
            schedule,
            timing,
            binding,
            area,
            latency,
            peak_power,
            constraints,
            stats: SynthesisStats::default(),
        }
    }

    /// The design's per-cycle power profile.
    #[must_use]
    pub fn power_profile(&self) -> PowerProfile {
        PowerProfile::of(&self.schedule, &self.timing)
    }

    /// Per-cycle power profile including the static (idle) draw of every
    /// allocated unit in the cycles it executes nothing.
    ///
    /// With the paper's idle-free library this equals
    /// [`power_profile`](Self::power_profile); with
    /// [`ModuleSpec::with_idle_power`](pchls_fulib::ModuleSpec::with_idle_power)
    /// it exposes the leakage trade-off sharing creates: fewer units mean
    /// a lower idle floor.
    #[must_use]
    pub fn power_profile_with_idle(&self, library: &ModuleLibrary) -> PowerProfile {
        let latency = self.latency as usize;
        let mut per_cycle = vec![0.0f64; latency];
        for inst in self.binding.instances() {
            let module = library.module(inst.module());
            let mut busy = vec![false; latency];
            for &op in inst.ops() {
                for c in self.schedule.start(op)..self.schedule.finish(op, &self.timing) {
                    busy[c as usize] = true;
                }
            }
            // Active draw is accounted per-op below; idle cycles leak.
            for (c, cell) in per_cycle.iter_mut().enumerate() {
                if !busy[c] {
                    *cell += module.idle_power();
                }
            }
        }
        let active = PowerProfile::of(&self.schedule, &self.timing);
        for (cell, &a) in per_cycle.iter_mut().zip(active.per_cycle()) {
            *cell += a;
        }
        PowerProfile::from_cycles(per_cycle)
    }

    /// Left-edge register allocation for the design.
    #[must_use]
    pub fn registers(&self, graph: &Cdfg) -> RegisterAllocation {
        RegisterAllocation::left_edge(graph, &self.schedule, &self.timing)
    }

    /// Multiplexer fan-in estimate for the design.
    #[must_use]
    pub fn interconnect(&self, graph: &Cdfg) -> InterconnectEstimate {
        InterconnectEstimate::of(graph, &self.binding, &self.registers(graph))
    }

    /// Re-validates every invariant: dependences, the latency and power
    /// bounds, binding completeness, kind/timing consistency and
    /// non-overlap on shared units.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self, graph: &Cdfg, library: &ModuleLibrary) -> Result<(), SynthesisError> {
        self.schedule
            .validate_budget(
                graph,
                &self.timing,
                Some(self.constraints.latency),
                &self.constraints.budget,
            )
            .map_err(SynthesisError::Schedule)?;
        self.binding
            .validate(graph, library, &self.schedule, &self.timing)?;
        Ok(())
    }

    /// One-line human summary (`area`, `latency`, `peak`).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "area={} latency={} peak_power={:.1} units={}",
            self.area,
            self.latency,
            self.peak_power,
            self.binding.instances().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_bind::CostWeights;
    use pchls_cdfg::benchmarks::hal;
    use pchls_fulib::{paper_library, SelectionPolicy};
    use pchls_sched::asap;

    fn sample() -> (Cdfg, ModuleLibrary, SynthesizedDesign) {
        let g = hal();
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        let b = pchls_bind::bind_schedule(&g, &lib, &s, &t, &CostWeights::default()).unwrap();
        let c = SynthesisConstraints::latency_only(20);
        let d = SynthesizedDesign::assemble(s, t, b, &lib, c);
        (g, lib, d)
    }

    #[test]
    fn assemble_computes_consistent_metrics() {
        let (g, lib, d) = sample();
        assert_eq!(d.area, d.binding.area(&lib));
        assert_eq!(d.latency, d.schedule.latency(&d.timing));
        assert!((d.peak_power - d.power_profile().peak()).abs() < 1e-12);
        d.validate(&g, &lib).unwrap();
    }

    #[test]
    fn validate_rejects_violated_power_bound() {
        let (g, lib, mut d) = sample();
        d.constraints = SynthesisConstraints::new(20, d.peak_power / 2.0);
        assert!(matches!(
            d.validate(&g, &lib),
            Err(SynthesisError::Schedule(_))
        ));
    }

    #[test]
    fn summary_mentions_area() {
        let (_, _, d) = sample();
        assert!(d.summary().contains(&format!("area={}", d.area)));
    }

    #[test]
    fn registers_and_interconnect_are_available() {
        let (g, _, d) = sample();
        assert!(d.registers(&g).count() > 0);
        let _ = d.interconnect(&g);
    }

    #[test]
    fn idle_free_library_gives_identical_profiles() {
        let (_, lib, d) = sample();
        let plain = d.power_profile();
        let with_idle = d.power_profile_with_idle(&lib);
        for (a, b) in plain.per_cycle().iter().zip(with_idle.per_cycle()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn idle_power_raises_the_floor() {
        use pchls_fulib::{ModuleLibrary, ModuleSpec, OpKind};
        let (g, _, d) = sample();
        // Same library shape, but every module leaks 0.2 per idle cycle.
        let leaky = ModuleLibrary::new([
            ModuleSpec::new("add", [OpKind::Add], 87, 1, 2.5).with_idle_power(0.2),
            ModuleSpec::new("sub", [OpKind::Sub], 87, 1, 2.5).with_idle_power(0.2),
            ModuleSpec::new("comp", [OpKind::Comp], 8, 1, 2.5).with_idle_power(0.2),
            ModuleSpec::new("ALU", [OpKind::Add, OpKind::Sub, OpKind::Comp], 97, 1, 2.5)
                .with_idle_power(0.2),
            ModuleSpec::new("mult_ser", [OpKind::Mul], 103, 4, 2.7).with_idle_power(0.2),
            ModuleSpec::new("mult_par", [OpKind::Mul], 339, 2, 8.1).with_idle_power(0.2),
            ModuleSpec::new("input", [OpKind::Input], 16, 1, 0.2).with_idle_power(0.2),
            ModuleSpec::new("output", [OpKind::Output], 16, 1, 1.7).with_idle_power(0.2),
        ])
        .unwrap();
        let plain = d.power_profile();
        let leaked = d.power_profile_with_idle(&leaky);
        let mut strictly_higher_somewhere = false;
        for (a, b) in plain.per_cycle().iter().zip(leaked.per_cycle()) {
            assert!(b + 1e-12 >= *a);
            if *b > a + 1e-12 {
                strictly_higher_somewhere = true;
            }
        }
        assert!(strictly_higher_somewhere);
        assert!(leaked.energy() > plain.energy());
        let _ = g;
    }
}
