//! A flat bounded "best-k" heap with a reusable buffer.
//!
//! The synthesis kernel ranks every candidate decision of an iteration
//! but only ever *attempts* the best `MAX_ATTEMPTS` (64) of them. The
//! historical shape — materialize a full index vector,
//! `select_nth_unstable` it, truncate, sort — allocates O(C) and walks
//! every index three times. [`TopK`] replaces that with a single pass:
//! a flat array-backed heap of at most `k` items whose **root is the
//! worst kept item**, so each incoming candidate either replaces the
//! root (one sift-down) or is discarded with a single comparison. The
//! buffer persists across iterations ([`TopK::clear`], not a fresh
//! allocation).
//!
//! Under a **total** order (the kernel's `(score, start, op, index)`
//! comparator) the kept set is exactly the k smallest items, so
//! `TopK::push` everything + [`TopK::sorted`] equals a full sort
//! truncated to `k` — element for element. The differential proptest in
//! `crates/core/tests/properties.rs` pins that equivalence.

use std::cmp::Ordering;

/// A bounded max-heap keeping the `k` smallest items under a
/// caller-supplied comparator (`Ordering::Less` = ranks earlier =
/// better). The comparator is passed per call — not stored — so it can
/// borrow data the heap's items index into (the kernel's candidates
/// vector).
///
/// # Example
///
/// ```
/// use pchls_core::TopK;
///
/// let mut top = TopK::new(3);
/// for x in [5u32, 1, 4, 2, 8, 3] {
///     top.push(x, u32::cmp);
/// }
/// assert_eq!(top.sorted(u32::cmp), &[1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK<T> {
    cap: usize,
    heap: Vec<T>,
}

impl<T: Copy> TopK<T> {
    /// An empty heap keeping at most `cap` items.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is 0 (a top-0 selection is meaningless).
    #[must_use]
    pub fn new(cap: usize) -> TopK<T> {
        assert!(cap > 0, "TopK capacity must be positive");
        TopK {
            cap,
            heap: Vec::with_capacity(cap),
        }
    }

    /// Number of items currently kept.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no items are kept.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every kept item, retaining the buffer. Call between uses —
    /// required after [`TopK::sorted`], which leaves the buffer sorted
    /// rather than heap-ordered.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Offers `item`: kept if the heap is under capacity or `item` ranks
    /// before the current worst kept item (the root), which it then
    /// replaces. A discarded offer costs exactly one comparison.
    pub fn push(&mut self, item: T, mut cmp: impl FnMut(&T, &T) -> Ordering) {
        if self.heap.len() < self.cap {
            self.heap.push(item);
            self.sift_up(self.heap.len() - 1, &mut cmp);
        } else if cmp(&item, &self.heap[0]) == Ordering::Less {
            self.heap[0] = item;
            self.sift_down(0, &mut cmp);
        }
    }

    /// Sorts the kept items in place (best first) and returns them.
    /// The heap shape is consumed: [`TopK::clear`] before pushing again.
    pub fn sorted(&mut self, mut cmp: impl FnMut(&T, &T) -> Ordering) -> &[T] {
        self.heap.sort_unstable_by(&mut cmp);
        &self.heap
    }

    fn sift_up(&mut self, mut i: usize, cmp: &mut impl FnMut(&T, &T) -> Ordering) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if cmp(&self.heap[i], &self.heap[parent]) != Ordering::Greater {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, cmp: &mut impl FnMut(&T, &T) -> Ordering) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < n && cmp(&self.heap[l], &self.heap[largest]) == Ordering::Greater {
                largest = l;
            }
            if r < n && cmp(&self.heap[r], &self.heap[largest]) == Ordering::Greater {
                largest = r;
            }
            if largest == i {
                return;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select_reference(items: &[u32], k: usize) -> Vec<u32> {
        let mut all = items.to_vec();
        all.sort_unstable();
        all.truncate(k);
        all
    }

    #[test]
    fn keeps_the_k_smallest_in_order() {
        let items = [9u32, 3, 7, 1, 8, 2, 6, 0, 5, 4];
        for k in 1..=items.len() + 2 {
            let mut top = TopK::new(k);
            for &x in &items {
                top.push(x, u32::cmp);
            }
            assert_eq!(top.sorted(u32::cmp), select_reference(&items, k), "k={k}");
        }
    }

    #[test]
    fn buffer_reuse_via_clear() {
        let mut top = TopK::new(2);
        top.push(3u32, u32::cmp);
        top.push(1, u32::cmp);
        assert_eq!(top.sorted(u32::cmp), &[1, 3]);
        top.clear();
        assert!(top.is_empty());
        for x in [10u32, 7, 9] {
            top.push(x, u32::cmp);
        }
        assert_eq!(top.sorted(u32::cmp), &[7, 9]);
        assert_eq!(top.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = TopK::<u32>::new(0);
    }
}
