//! The session-oriented engine API: compile-once graphs, reusable
//! synthesis sessions, batched sweeps.
//!
//! The paper's exploration workflow (its Figure 2) synthesizes the
//! *same* CDFG under dozens of `(T, P<)` constraint points. The free
//! functions ([`synthesize`](crate::synthesize),
//! [`power_sweep`](crate::power_sweep), …) re-derive library indexes,
//! reachability bitsets and bootstrap module estimates from scratch on
//! every call; this module splits those costs by lifetime instead:
//!
//! * [`Engine::new`] owns the **per-library** artifacts — kind-bucketed
//!   module candidate lists and the kind-compatibility matrix — computed
//!   once for the library's lifetime.
//! * [`Engine::compile`] produces a [`CompiledGraph`] owning the
//!   **per-graph** artifacts — the transitive-closure
//!   [`Reachability`] bitsets (via the shared
//!   [`AnalysisCache`] handle), min-area bootstrap module estimates,
//!   fastest/min-area timing maps and the ASAP/ALAP schedule skeletons —
//!   computed once per graph.
//! * [`Engine::session`] pairs the two into a [`Session`] whose
//!   [`synthesize`](Session::synthesize), [`sweep`](Session::sweep) and
//!   [`batch`](Session::batch) calls share every compiled artifact
//!   across thousands of constraint points with **no per-point
//!   recompute** — and produce output byte-identical to the
//!   free-function path (enforced by `tests/engine_equivalence.rs`).
//!
//! # Example
//!
//! ```
//! use pchls_cdfg::benchmarks::hal;
//! use pchls_core::{Engine, SweepSpec, SynthesisConstraints, SynthesisOptions};
//! use pchls_fulib::paper_library;
//!
//! # fn main() -> Result<(), pchls_core::SynthesisError> {
//! let engine = Engine::new(paper_library());
//! let compiled = engine.compile(&hal());
//! let session = engine.session(&compiled);
//!
//! // One point…
//! let opts = SynthesisOptions::default();
//! let design = session.synthesize(SynthesisConstraints::new(17, 25.0), &opts)?;
//! assert!(design.latency <= 17);
//!
//! // …or a whole constraint sweep, reusing the same compiled graph.
//! let sweep = session.sweep(&SweepSpec::power(17, vec![10.0, 25.0, 60.0]), &opts);
//! assert_eq!(sweep.points.len(), 3);
//! # Ok(())
//! # }
//! ```

use std::ops::ControlFlow;

use pchls_cdfg::{
    diff, optimize, AnalysisCache, Cdfg, GraphDelta, OpKind, OptimizeStats, Reachability,
};
use pchls_fulib::{ModuleId, ModuleLibrary, SelectionPolicy};
use pchls_sched::{alap, asap, OpTiming, PowerBudget, PowerProfile, Schedule, TimingMap};

use crate::baseline::{trimmed_allocation_bind, two_step_bind, unconstrained_bind, BaselineDesign};
use crate::constraints::SynthesisConstraints;
use crate::design::SynthesizedDesign;
use crate::error::SynthesisError;
use crate::explore::{envelope, latency_order, power_order, run_point, SweepAxis, SweepPoint};
use crate::options::SynthesisOptions;
use crate::refine::{portfolio_session, refined_session};
use crate::replay::{ReplayState, SynthesisMemo};
use crate::synthesis::{synthesize_session, synthesize_session_mode, KernelMode};

/// Whether some library module implements both kinds, indexed by
/// [`OpKind::index`] on both axes.
pub(crate) type KindCompat = [[bool; OpKind::ALL.len()]; OpKind::ALL.len()];

/// The per-library half of the synthesis state: owns the immutable
/// module library plus every index derived from it alone.
///
/// Construct once, [`compile`](Engine::compile) each graph once, then
/// open [`Session`]s to synthesize under as many constraint points as
/// needed.
#[derive(Debug, Clone)]
pub struct Engine {
    library: ModuleLibrary,
    /// Per-kind module candidate lists, indexed by [`OpKind::index`].
    kind_modules: Vec<Vec<ModuleId>>,
    /// `kind_compat[a][b]`: some module implements both kinds.
    kind_compat: KindCompat,
}

impl Engine {
    /// Builds the per-library indexes (kind buckets, kind-compatibility
    /// matrix) and takes ownership of `library`.
    #[must_use]
    pub fn new(library: ModuleLibrary) -> Engine {
        let kind_modules: Vec<Vec<ModuleId>> = OpKind::ALL
            .iter()
            .map(|&k| library.candidates(k).collect())
            .collect();
        let mut kind_compat = [[false; OpKind::ALL.len()]; OpKind::ALL.len()];
        for (a, row) in kind_modules.iter().enumerate() {
            for (b, &kb) in OpKind::ALL.iter().enumerate() {
                kind_compat[a][b] = row.iter().any(|&m| library.module(m).implements(kb));
            }
        }
        Engine {
            library,
            kind_modules,
            kind_compat,
        }
    }

    /// The module library this engine serves.
    #[must_use]
    pub fn library(&self) -> &ModuleLibrary {
        &self.library
    }

    pub(crate) fn kind_modules(&self) -> &[Vec<ModuleId>] {
        &self.kind_modules
    }

    pub(crate) fn kind_compat(&self) -> &KindCompat {
        &self.kind_compat
    }

    /// Compiles `graph` into the per-graph artifacts every subsequent
    /// synthesis call reuses: reachability bitsets, bootstrap module
    /// estimates, timing maps and the ASAP/ALAP skeletons.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::Uncovered`] when the library implements none of
    /// the modules for some operation kind in the graph.
    pub fn try_compile(&self, graph: &Cdfg) -> Result<CompiledGraph, SynthesisError> {
        let _span = pchls_obs::span!("engine.compile", "ops" => graph.len());
        for node in graph.nodes() {
            if self.kind_modules[node.kind().index()].is_empty() {
                return Err(SynthesisError::Uncovered { kind: node.kind() });
            }
        }
        let seed_modules: Vec<ModuleId> = graph
            .nodes()
            .iter()
            .map(|nd| {
                self.library
                    .select(nd.kind(), SelectionPolicy::MinArea)
                    .expect("coverage checked above")
            })
            .collect();
        let fastest_timing = TimingMap::from_policy(graph, &self.library, SelectionPolicy::Fastest);
        let min_area_timing =
            TimingMap::from_policy(graph, &self.library, SelectionPolicy::MinArea);
        let asap_fastest = asap(graph, &fastest_timing);
        let min_latency = asap_fastest.latency(&fastest_timing);
        let asap_peak = PowerProfile::of(&asap_fastest, &fastest_timing).peak();
        let analyses = AnalysisCache::new();
        // Warm the closure eagerly: compile is the one place allowed to
        // be slow, sessions must only read.
        let _ = analyses.reachability(graph);
        // Kind-major node masks: row `k` has bit `j` set iff some module
        // implements both kind `k` and node `j`'s kind. ANDed against
        // the kernel's unbound bitset, one row turns "every compatible
        // pair partner of an op" into a word walk.
        let mask_words = graph.len().div_ceil(64);
        let mut compat_masks = vec![0u64; OpKind::ALL.len() * mask_words];
        for (j, node) in graph.nodes().iter().enumerate() {
            let kj = node.kind().index();
            for k in 0..OpKind::ALL.len() {
                if self.kind_compat[k][kj] {
                    compat_masks[k * mask_words + j / 64] |= 1u64 << (j % 64);
                }
            }
        }
        Ok(CompiledGraph {
            graph: graph.clone(),
            analyses,
            seed_modules,
            fastest_timing,
            min_area_timing,
            asap_fastest,
            // Lazy: the kernel never reads the ALAP skeleton, so
            // one-shot compiles (the deprecated shims) skip the pass.
            alap_fastest: std::sync::OnceLock::new(),
            min_latency,
            asap_peak,
            compat_masks,
            mask_words,
            optimize_stats: None,
        })
    }

    /// [`try_compile`](Engine::try_compile), panicking on a library
    /// coverage gap (the historical free-function behaviour).
    ///
    /// # Panics
    ///
    /// Panics if the library does not cover every operation kind in the
    /// graph.
    #[must_use]
    pub fn compile(&self, graph: &Cdfg) -> CompiledGraph {
        self.try_compile(graph).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`compile`](Engine::compile) wrapped in an [`Arc`](std::sync::Arc),
    /// for sharing one compiled graph across threads — worker pools,
    /// compile caches, anything that outlives a single borrow.
    /// [`CompiledGraph`] is `Send + Sync`, so the clones are free and
    /// every thread reads the same warmed artifacts.
    ///
    /// # Example
    ///
    /// ```
    /// use pchls_cdfg::benchmarks::hal;
    /// use pchls_core::{Engine, SynthesisConstraints, SynthesisOptions};
    /// use pchls_fulib::paper_library;
    ///
    /// let engine = Engine::new(paper_library());
    /// let compiled = engine.compile_arc(&hal());
    /// let opts = SynthesisOptions::default();
    ///
    /// // Two threads synthesize different points over ONE compile.
    /// std::thread::scope(|s| {
    ///     for latency in [17u32, 10] {
    ///         let compiled = std::sync::Arc::clone(&compiled);
    ///         let (engine, opts) = (&engine, &opts);
    ///         s.spawn(move || {
    ///             let session = engine.session(&compiled);
    ///             let d = session
    ///                 .synthesize(SynthesisConstraints::new(latency, 40.0), opts)
    ///                 .expect("feasible");
    ///             assert!(d.latency <= latency);
    ///         });
    ///     }
    /// });
    /// ```
    ///
    /// # Panics
    ///
    /// As [`compile`](Engine::compile): panics if the library does not
    /// cover every operation kind in the graph.
    #[must_use]
    pub fn compile_arc(&self, graph: &Cdfg) -> std::sync::Arc<CompiledGraph> {
        std::sync::Arc::new(self.compile(graph))
    }

    /// Runs the CDFG optimizer (CSE + dead-code elimination) first, then
    /// compiles the cleaned graph; the optimizer report is kept on the
    /// compiled graph ([`CompiledGraph::optimize_stats`]).
    ///
    /// # Errors
    ///
    /// As [`try_compile`](Engine::try_compile).
    pub fn compile_optimized(&self, graph: &Cdfg) -> Result<CompiledGraph, SynthesisError> {
        let (optimized, stats) = optimize(graph);
        let mut compiled = self.try_compile(&optimized)?;
        compiled.optimize_stats = Some(stats);
        Ok(compiled)
    }

    /// Opens a synthesis session over a compiled graph. Sessions are
    /// cheap handles; open as many as needed.
    #[must_use]
    pub fn session<'e>(&'e self, compiled: &'e CompiledGraph) -> Session<'e> {
        Session {
            engine: self,
            compiled,
        }
    }

    /// Runs many sweeps at once, fanning **all grid points of all jobs**
    /// out across the worker pool — the whole-figure entry point (all
    /// six Figure 2 curves in one call). Flattening the `jobs × grid`
    /// rectangle into one work list keeps every core busy even while the
    /// last expensive points of one curve are still running, which a
    /// job-at-a-time loop over [`Session::sweep`] cannot do.
    ///
    /// Each returned sweep is byte-identical to [`Session::sweep`] on
    /// the same `(compiled, spec)` pair.
    #[must_use]
    pub fn sweep_batch(
        &self,
        jobs: &[SweepJob<'_>],
        options: &SynthesisOptions,
    ) -> Vec<SweepResult> {
        let flat: Vec<(usize, usize)> = jobs
            .iter()
            .enumerate()
            .flat_map(|(j, job)| (0..job.spec.len()).map(move |i| (j, i)))
            .collect();
        let mut raw = pchls_par::par_map(&flat, |&(j, i)| {
            let job = &jobs[j];
            run_point(self, job.compiled, job.spec.constraints(i), options)
        });
        jobs.iter()
            .map(|job| {
                let rest = raw.split_off(job.spec.len());
                let points = std::mem::replace(&mut raw, rest);
                finish_sweep(job.compiled, &job.spec, points)
            })
            .collect()
    }

    /// Recompiles an edited graph against a previous compile, reusing
    /// every per-graph artifact outside the edit cone: the structural
    /// delta is computed here (span `cdfg.diff`), then handed to
    /// [`recompile_with_delta`](Engine::recompile_with_delta). The
    /// compiled output is byte-identical to a cold
    /// [`try_compile`](Engine::try_compile) of `edited` — asserted by
    /// the differential tests via `CompiledGraph::artifacts_equal`.
    ///
    /// # Errors
    ///
    /// As [`try_compile`](Engine::try_compile).
    pub fn recompile(
        &self,
        base: &CompiledGraph,
        edited: &Cdfg,
    ) -> Result<(CompiledGraph, GraphDelta), SynthesisError> {
        let delta = {
            let _span = pchls_obs::span!("cdfg.diff", "ops" => edited.len());
            diff(base.graph(), edited)
        };
        let compiled = self.recompile_with_delta(base, edited, &delta)?;
        Ok((compiled, delta))
    }

    /// [`recompile`](Engine::recompile) with a precomputed delta.
    ///
    /// Artifacts reused from `base` for every node outside the edit
    /// cone: bootstrap module estimates, fastest/min-area timing
    /// entries, ASAP starts (copied rather than re-propagated), and the
    /// transitive closure (recomputed only for cone rows via
    /// [`Reachability::incremental`]). Degenerate deltas (non-monotone
    /// mapping) fall back to a full [`try_compile`](Engine::try_compile).
    ///
    /// # Errors
    ///
    /// As [`try_compile`](Engine::try_compile).
    pub fn recompile_with_delta(
        &self,
        base: &CompiledGraph,
        edited: &Cdfg,
        delta: &GraphDelta,
    ) -> Result<CompiledGraph, SynthesisError> {
        if delta.degenerate()
            || delta.base_len() != base.graph.len()
            || delta.edited_len() != edited.len()
        {
            return self.try_compile(edited);
        }
        let mut span = pchls_obs::span!(
            "engine.recompile",
            "ops" => edited.len(),
            "cone" => delta.cone_size()
        );
        for node in edited.nodes() {
            if self.kind_modules[node.kind().index()].is_empty() {
                return Err(SynthesisError::Uncovered { kind: node.kind() });
            }
        }
        let n = edited.len();
        let mut seed_modules = Vec::with_capacity(n);
        let mut fastest_entries = Vec::with_capacity(n);
        let mut min_area_entries = Vec::with_capacity(n);
        for (i, node) in edited.nodes().iter().enumerate() {
            let id = pchls_cdfg::NodeId::new(i as u32);
            // Per-node selections depend on the node's kind alone, so
            // any mapped node can copy the base entries verbatim
            // (mapped nodes never change kind).
            if let Some(b) = delta.map_edited(id) {
                seed_modules.push(base.seed_modules[b.index()]);
                fastest_entries.push(base.fastest_timing.of(b));
                min_area_entries.push(base.min_area_timing.of(b));
            } else {
                let seed = self
                    .library
                    .select(node.kind(), SelectionPolicy::MinArea)
                    .expect("coverage checked above");
                seed_modules.push(seed);
                let fm = self.library.module(
                    self.library
                        .select(node.kind(), SelectionPolicy::Fastest)
                        .expect("coverage checked above"),
                );
                fastest_entries.push(OpTiming {
                    delay: fm.latency(),
                    power: fm.power(),
                });
                let am = self.library.module(seed);
                min_area_entries.push(OpTiming {
                    delay: am.latency(),
                    power: am.power(),
                });
            }
        }
        let fastest_timing = TimingMap::from_entries(fastest_entries);
        let min_area_timing = TimingMap::from_entries(min_area_entries);
        let reach = Reachability::incremental(edited, base.reachability(), delta);
        // ASAP starts: out-of-cone mapped nodes have edge-for-edge
        // identical ancestor subgraphs with identical timing, so their
        // base starts are copied; cone nodes re-propagate exactly as
        // `pchls_sched::asap` would (same max-over-operands recurrence,
        // same topological order restricted to these nodes).
        let mut starts = vec![0u32; n];
        let mut copied = 0usize;
        for &id in edited.topological() {
            if let (false, Some(b)) = (delta.cone().contains(id), delta.map_edited(id)) {
                starts[id.index()] = base.asap_fastest.start(b);
                copied += 1;
            } else {
                starts[id.index()] = edited
                    .operands(id)
                    .iter()
                    .map(|&p| starts[p.index()] + fastest_timing.delay(p))
                    .max()
                    .unwrap_or(0);
            }
        }
        span.arg("asap_copied", copied);
        let asap_fastest = Schedule::new(starts);
        let min_latency = asap_fastest.latency(&fastest_timing);
        let asap_peak = PowerProfile::of(&asap_fastest, &fastest_timing).peak();
        // Compatibility masks depend only on the node-kind sequence:
        // identical when the mapping is the identity (no adds/removes —
        // monotone total mappings are identities), rebuilt otherwise.
        let mask_words = n.div_ceil(64);
        let compat_masks = if delta.added().is_empty() && delta.removed().is_empty() {
            base.compat_masks.clone()
        } else {
            let mut masks = vec![0u64; OpKind::ALL.len() * mask_words];
            for (j, node) in edited.nodes().iter().enumerate() {
                let kj = node.kind().index();
                for k in 0..OpKind::ALL.len() {
                    if self.kind_compat[k][kj] {
                        masks[k * mask_words + j / 64] |= 1u64 << (j % 64);
                    }
                }
            }
            masks
        };
        Ok(CompiledGraph {
            graph: edited.clone(),
            analyses: AnalysisCache::with_reachability(reach),
            seed_modules,
            fastest_timing,
            min_area_timing,
            asap_fastest,
            alap_fastest: std::sync::OnceLock::new(),
            min_latency,
            asap_peak,
            compat_masks,
            mask_words,
            optimize_stats: None,
        })
    }
}

/// The per-graph half of the synthesis state: an owned copy of the
/// graph plus every artifact derived from `(graph, library)` alone —
/// shared, read-only, across all constraint points of all sessions.
#[derive(Debug)]
pub struct CompiledGraph {
    graph: Cdfg,
    /// Shared analysis handles ([`Reachability`] et al.), warmed at
    /// compile time.
    analyses: AnalysisCache,
    /// Min-area module estimate per operation — the bootstrap seed.
    seed_modules: Vec<ModuleId>,
    fastest_timing: TimingMap,
    min_area_timing: TimingMap,
    asap_fastest: Schedule,
    /// ALAP at the minimum latency, computed on first request (the
    /// synthesis kernel never reads it).
    alap_fastest: std::sync::OnceLock<Schedule>,
    min_latency: u32,
    asap_peak: f64,
    /// Kind-major compatibility masks over the graph's nodes (row `k`,
    /// bit `j`: some module implements both kind `k` and node `j`'s
    /// kind), in the packed `u64` layout of
    /// [`Reachability::descendant_words`] — the kernel ANDs a row
    /// against its unbound bitset to enumerate pair-merge partners.
    compat_masks: Vec<u64>,
    /// Words per `compat_masks` row.
    mask_words: usize,
    optimize_stats: Option<OptimizeStats>,
}

impl CompiledGraph {
    /// The compiled graph.
    #[must_use]
    pub fn graph(&self) -> &Cdfg {
        &self.graph
    }

    /// The graph's name (benchmark label on sweep points).
    #[must_use]
    pub fn name(&self) -> &str {
        self.graph.name()
    }

    /// The graph's transitive closure, computed once at compile time.
    #[must_use]
    pub fn reachability(&self) -> &Reachability {
        self.analyses.reachability(&self.graph)
    }

    pub(crate) fn seed_modules(&self) -> &[ModuleId] {
        &self.seed_modules
    }

    /// The node-compatibility mask row of `kind` (see `compat_masks`).
    pub(crate) fn compat_row(&self, kind: OpKind) -> &[u64] {
        let k = kind.index();
        &self.compat_masks[k * self.mask_words..(k + 1) * self.mask_words]
    }

    /// Per-operation timing under the fastest-module policy.
    #[must_use]
    pub fn fastest_timing(&self) -> &TimingMap {
        &self.fastest_timing
    }

    /// Per-operation timing under the min-area-module policy.
    #[must_use]
    pub fn min_area_timing(&self) -> &TimingMap {
        &self.min_area_timing
    }

    /// The power-oblivious ASAP schedule skeleton under fastest modules.
    #[must_use]
    pub fn asap_schedule(&self) -> &Schedule {
        &self.asap_fastest
    }

    /// The ALAP skeleton at the minimum achievable latency, computed on
    /// first request and shared afterwards.
    #[must_use]
    pub fn alap_schedule(&self) -> &Schedule {
        self.alap_fastest.get_or_init(|| {
            alap(&self.graph, &self.fastest_timing, self.min_latency)
                .expect("ALAP at the ASAP latency is always feasible")
        })
    }

    /// The minimum achievable latency (fastest modules, no power bound):
    /// constraints below this are infeasible for every power budget.
    #[must_use]
    pub fn min_latency(&self) -> u32 {
        self.min_latency
    }

    /// Peak per-cycle power of the power-oblivious fastest ASAP design —
    /// above this bound the power constraint stops binding.
    #[must_use]
    pub fn asap_peak_power(&self) -> f64 {
        self.asap_peak
    }

    /// The optimizer report, when the graph was compiled through
    /// [`Engine::compile_optimized`].
    #[must_use]
    pub fn optimize_stats(&self) -> Option<&OptimizeStats> {
        self.optimize_stats.as_ref()
    }

    /// Whether every eagerly computed compile artifact equals `other`'s
    /// — the invariant [`Engine::recompile`] maintains against a cold
    /// compile of the same graph. Test support; not part of the stable
    /// API.
    #[doc(hidden)]
    #[must_use]
    pub fn artifacts_equal(&self, other: &CompiledGraph) -> bool {
        self.graph == other.graph
            && self.seed_modules == other.seed_modules
            && self.fastest_timing == other.fastest_timing
            && self.min_area_timing == other.min_area_timing
            && self.asap_fastest == other.asap_fastest
            && self.min_latency == other.min_latency
            && self.asap_peak.to_bits() == other.asap_peak.to_bits()
            && self.compat_masks == other.compat_masks
            && self.mask_words == other.mask_words
            && self.reachability() == other.reachability()
    }
}

/// One iteration snapshot handed to a progress hook (see
/// [`Session::synthesize_with_progress`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct Progress {
    /// Operations bound so far.
    pub bound_ops: usize,
    /// Total operations in the graph.
    pub total_ops: usize,
    /// Paper-style backtracks taken so far.
    pub backtracks: usize,
    /// Candidate decisions rejected so far.
    pub rejected_candidates: usize,
}

/// The outcome of [`Session::resynthesize`]: the design plus which
/// path produced it.
#[derive(Debug, Clone)]
pub struct Resynthesis {
    /// The synthesized design — byte-identical to a cold synthesis of
    /// the edited graph either way.
    pub design: SynthesizedDesign,
    /// Whether the incremental replay path ran (`false`: full-recompute
    /// fallback).
    pub incremental: bool,
    /// The edit cone's size, as reported by the delta.
    pub cone_size: usize,
    /// Kernel iterations that were gated against the recorded memo
    /// (zero on the fallback path).
    pub gated_iterations: usize,
    /// Gated iterations that exhausted the recorded trust bound and
    /// re-enumerated cold before committing.
    pub extensions: usize,
    /// Whether the replay abandoned the memo mid-run because the edited
    /// run's commit order diverged from the recording (the rest of the
    /// run used the cold path, bounding cost near a full recompute).
    pub bailed: bool,
}

/// A synthesis session: an [`Engine`] paired with one of its
/// [`CompiledGraph`]s. Every call shares the compiled artifacts; none
/// recomputes reachability, library indexes or bootstrap seeds.
#[derive(Debug, Clone, Copy)]
pub struct Session<'e> {
    engine: &'e Engine,
    compiled: &'e CompiledGraph,
}

impl<'e> Session<'e> {
    /// The engine behind this session.
    #[must_use]
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// The compiled graph behind this session.
    #[must_use]
    pub fn compiled(&self) -> &'e CompiledGraph {
        self.compiled
    }

    /// Synthesizes one design under `constraints` — the paper's combined
    /// scheduling/allocation/binding loop, minus all per-graph setup.
    ///
    /// # Errors
    ///
    /// As [`synthesize`](crate::synthesize): [`SynthesisError::Infeasible`]
    /// outside the feasible region, internal validation failures
    /// otherwise.
    pub fn synthesize(
        &self,
        constraints: SynthesisConstraints,
        options: &SynthesisOptions,
    ) -> Result<SynthesizedDesign, SynthesisError> {
        synthesize_session(self.engine, self.compiled, &constraints, options, None)
    }

    /// [`synthesize`](Session::synthesize) with a progress/cancel hook:
    /// `hook` is called once per greedy iteration; returning
    /// [`ControlFlow::Break`] aborts with [`SynthesisError::Cancelled`].
    ///
    /// # Errors
    ///
    /// As [`synthesize`](Session::synthesize), plus
    /// [`SynthesisError::Cancelled`] when the hook breaks.
    pub fn synthesize_with_progress(
        &self,
        constraints: SynthesisConstraints,
        options: &SynthesisOptions,
        hook: &mut dyn FnMut(Progress) -> ControlFlow<()>,
    ) -> Result<SynthesizedDesign, SynthesisError> {
        synthesize_session(
            self.engine,
            self.compiled,
            &constraints,
            options,
            Some(hook),
        )
    }

    /// [`synthesize`](Session::synthesize) while recording a
    /// [`SynthesisMemo`]: a per-iteration observation journal of the
    /// kernel run, replayable against edited graphs via
    /// [`resynthesize`](Session::resynthesize). The design returned is
    /// byte-identical to the plain [`synthesize`](Session::synthesize)
    /// call — recording only observes.
    ///
    /// # Errors
    ///
    /// As [`synthesize`](Session::synthesize).
    pub fn synthesize_recorded(
        &self,
        constraints: SynthesisConstraints,
        options: &SynthesisOptions,
    ) -> Result<(SynthesizedDesign, SynthesisMemo), SynthesisError> {
        let mut memo = SynthesisMemo::empty(constraints.clone(), *options);
        let design = synthesize_session_mode(
            self.engine,
            self.compiled,
            &constraints,
            options,
            None,
            KernelMode::Record(&mut memo),
        )?;
        Ok((design, memo))
    }

    /// [`synthesize_recorded`](Session::synthesize_recorded) with a
    /// progress/cancel hook, for callers (like the serve tier) that
    /// record replay seeds inside deadline-supervised requests.
    ///
    /// # Errors
    ///
    /// As [`synthesize_with_progress`](Session::synthesize_with_progress).
    pub fn synthesize_recorded_with_progress(
        &self,
        constraints: SynthesisConstraints,
        options: &SynthesisOptions,
        hook: &mut dyn FnMut(Progress) -> ControlFlow<()>,
    ) -> Result<(SynthesizedDesign, SynthesisMemo), SynthesisError> {
        let mut memo = SynthesisMemo::empty(constraints.clone(), *options);
        let design = synthesize_session_mode(
            self.engine,
            self.compiled,
            &constraints,
            options,
            Some(hook),
            KernelMode::Record(&mut memo),
        )?;
        Ok((design, memo))
    }

    /// Re-synthesizes after a graph edit, seeding the kernel from a
    /// recorded base run: this session must hold the **edited** compiled
    /// graph (typically from [`Engine::recompile`]), `memo` a recording
    /// of the **base** graph under the constraints and options that are
    /// reused here, and `delta` the structural diff between the two.
    ///
    /// Small edit cones replay incrementally — quiet operations skip
    /// candidate enumeration and trust the recorded scores, while every
    /// attempt still executes for real — and the output is
    /// byte-identical to a cold synthesis of the edited graph (designs,
    /// decision traces and effort counters alike; asserted by the
    /// differential tests). Cones above half the graph, degenerate
    /// deltas and shape mismatches fall back to a full cold run. Use
    /// [`resynthesize_with_limit`](Session::resynthesize_with_limit) to
    /// tune the cutoff.
    ///
    /// # Errors
    ///
    /// As [`synthesize`](Session::synthesize), against the edited graph.
    pub fn resynthesize(
        &self,
        memo: &SynthesisMemo,
        delta: &GraphDelta,
    ) -> Result<Resynthesis, SynthesisError> {
        self.resynthesize_with_limit(memo, delta, self.compiled.graph().len() / 2)
    }

    /// [`resynthesize`](Session::resynthesize) with an explicit maximum
    /// edit-cone size for the incremental path; larger cones run the
    /// full cold kernel (above roughly half the graph the bookkeeping
    /// outweighs the skipped enumeration).
    ///
    /// # Errors
    ///
    /// As [`resynthesize`](Session::resynthesize).
    pub fn resynthesize_with_limit(
        &self,
        memo: &SynthesisMemo,
        delta: &GraphDelta,
        max_cone: usize,
    ) -> Result<Resynthesis, SynthesisError> {
        let cone_size = delta.cone_size();
        let incremental = !delta.degenerate()
            && delta.base_len() == memo.n
            && delta.edited_len() == self.compiled.graph().len()
            && memo.lib_len == self.engine.library().len()
            && !memo.iters.is_empty()
            && cone_size <= max_cone;
        let _span = pchls_obs::span!(
            "kernel.patch",
            "cone" => cone_size,
            "mode" => if incremental { "incremental" } else { "full" }
        );
        let (design, gated_iterations, extensions, bailed) = if incremental {
            pchls_obs::global()
                .counter("pchls_session_incremental_hits_total")
                .inc();
            let mut rs = ReplayState::new(memo, delta);
            let design = synthesize_session_mode(
                self.engine,
                self.compiled,
                &memo.constraints,
                &memo.options,
                None,
                KernelMode::Replay(&mut rs),
            )?;
            (design, rs.gated_iterations, rs.extensions, rs.bailed)
        } else {
            pchls_obs::global()
                .counter("pchls_session_incremental_fallbacks_total")
                .inc();
            let design = synthesize_session(
                self.engine,
                self.compiled,
                &memo.constraints,
                &memo.options,
                None,
            )?;
            (design, 0, 0, false)
        };
        Ok(Resynthesis {
            design,
            incremental,
            cone_size,
            gated_iterations,
            extensions,
            bailed,
        })
    }

    /// The self-tightening refinement loop
    /// ([`synthesize_refined`](crate::synthesize_refined)) over this
    /// session's shared artifacts.
    ///
    /// # Errors
    ///
    /// As [`synthesize`](Session::synthesize).
    pub fn synthesize_refined(
        &self,
        constraints: SynthesisConstraints,
        options: &SynthesisOptions,
    ) -> Result<SynthesizedDesign, SynthesisError> {
        refined_session(self.engine, self.compiled, &constraints, options)
    }

    /// The portfolio entry point
    /// ([`synthesize_portfolio`](crate::synthesize_portfolio)) over this
    /// session's shared artifacts.
    ///
    /// # Errors
    ///
    /// Returns an error only when every portfolio member fails.
    pub fn synthesize_portfolio(
        &self,
        constraints: SynthesisConstraints,
        options: &SynthesisOptions,
    ) -> Result<SynthesizedDesign, SynthesisError> {
        portfolio_session(self.engine, self.compiled, &constraints, options)
    }

    /// Sweeps one constraint axis, reusing the compiled graph for every
    /// grid point: raw points fan out over the worker pool, the
    /// monotone-envelope pass runs sequentially — output byte-identical
    /// to the deprecated [`power_sweep`](crate::power_sweep) /
    /// [`latency_sweep`](crate::latency_sweep) free functions.
    #[must_use]
    pub fn sweep(&self, spec: &SweepSpec, options: &SynthesisOptions) -> SweepResult {
        let raw = pchls_par::par_map_indices(spec.len(), |i| {
            run_point(self.engine, self.compiled, spec.constraints(i), options)
        });
        finish_sweep(self.compiled, spec, raw)
    }

    /// [`sweep`](Session::sweep) with known raw points supplied instead
    /// of recomputed — the resume path for persistent result stores.
    ///
    /// `cached[i]`, when `Some`, must be the **raw** synthesis outcome
    /// of grid point `i` (what this method returns in its second
    /// component), *not* a point taken from an enveloped [`SweepResult`]
    /// — the monotone-envelope pass is rerun here over the merged raw
    /// grid, so feeding it enveloped points would double-apply carries.
    /// Only the `None` entries are synthesized, fanned out over the
    /// worker pool. Returns the enveloped result (byte-identical to a
    /// full [`sweep`](Session::sweep) of the same grid, by determinism)
    /// plus the `(grid index, raw point)` pairs computed fresh this
    /// call, for the caller to persist.
    ///
    /// # Panics
    ///
    /// Panics when `cached.len() != spec.len()`.
    #[must_use]
    pub fn sweep_resumable(
        &self,
        spec: &SweepSpec,
        options: &SynthesisOptions,
        cached: &[Option<SweepPoint>],
    ) -> (SweepResult, Vec<(usize, SweepPoint)>) {
        assert_eq!(
            cached.len(),
            spec.len(),
            "cached grid must align with the sweep spec"
        );
        let missing: Vec<usize> = (0..spec.len()).filter(|&i| cached[i].is_none()).collect();
        let computed = pchls_par::par_map(&missing, |&i| {
            run_point(self.engine, self.compiled, spec.constraints(i), options)
        });
        let fresh: Vec<(usize, SweepPoint)> = missing.into_iter().zip(computed).collect();
        let mut raw: Vec<SweepPoint> = Vec::with_capacity(spec.len());
        let mut fresh_iter = fresh.iter().peekable();
        for (i, slot) in cached.iter().enumerate() {
            match slot {
                Some(point) => raw.push(point.clone()),
                None => {
                    let (j, point) = fresh_iter.next().expect("every missing index was computed");
                    debug_assert_eq!(*j, i);
                    raw.push(point.clone());
                }
            }
        }
        (finish_sweep(self.compiled, spec, raw), fresh)
    }

    /// Runs a batch of independent synthesis requests, fanned out over
    /// the worker pool while sharing every compiled artifact. Results
    /// come back in request order; each equals the corresponding
    /// one-at-a-time [`synthesize`](Session::synthesize) call exactly.
    #[must_use]
    pub fn batch(
        &self,
        requests: impl IntoIterator<Item = SynthesisRequest>,
    ) -> Vec<SynthesisResult> {
        let requests: Vec<SynthesisRequest> = requests.into_iter().collect();
        let outcomes = pchls_par::par_map(&requests, |r| {
            synthesize_session(self.engine, self.compiled, &r.constraints, &r.options, None)
        });
        requests
            .into_iter()
            .zip(outcomes)
            .map(|(request, outcome)| SynthesisResult { request, outcome })
            .collect()
    }

    /// A sensible power grid for sweeping this graph, from the cached
    /// compile-time skeletons (equals
    /// [`auto_power_grid`](crate::auto_power_grid)).
    #[must_use]
    pub fn auto_power_grid(&self, steps: usize) -> Vec<f64> {
        let lo = self.compiled.fastest_timing.max_single_op_power();
        let hi = self.compiled.asap_peak * 1.1;
        let steps = steps.max(2);
        (0..steps)
            .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
            .collect()
    }

    /// The two-step baseline (paper refs [1, 2]) on this session's
    /// graph and library.
    ///
    /// # Errors
    ///
    /// As [`two_step_bind`].
    pub fn two_step(
        &self,
        constraints: SynthesisConstraints,
        policy: SelectionPolicy,
    ) -> Result<BaselineDesign, SynthesisError> {
        two_step_bind(
            &self.compiled.graph,
            &self.engine.library,
            constraints,
            policy,
        )
    }

    /// The power-oblivious ASAP baseline on this session's graph and
    /// library.
    ///
    /// # Errors
    ///
    /// As [`unconstrained_bind`].
    pub fn unconstrained(
        &self,
        latency: u32,
        policy: SelectionPolicy,
    ) -> Result<SynthesizedDesign, SynthesisError> {
        unconstrained_bind(&self.compiled.graph, &self.engine.library, latency, policy)
    }

    /// The allocation-trimming baseline on this session's graph and
    /// library.
    ///
    /// # Errors
    ///
    /// As [`trimmed_allocation_bind`].
    pub fn trimmed_allocation(
        &self,
        constraints: SynthesisConstraints,
        policy: SelectionPolicy,
    ) -> Result<SynthesizedDesign, SynthesisError> {
        trimmed_allocation_bind(
            &self.compiled.graph,
            &self.engine.library,
            constraints,
            policy,
        )
    }

    /// The force-directed scheduling baseline (Paulin & Knight) under
    /// `policy`-selected modules, reusing the compiled transitive
    /// closure ([`force_directed_with`]) instead of rebuilding it per
    /// call like the free [`force_directed`] does.
    ///
    /// [`force_directed`]: pchls_sched::force_directed
    /// [`force_directed_with`]: pchls_sched::force_directed_with
    ///
    /// # Errors
    ///
    /// [`SynthesisError::Schedule`] when the critical path misses
    /// `latency`.
    pub fn force_directed(
        &self,
        latency: u32,
        policy: SelectionPolicy,
    ) -> Result<Schedule, SynthesisError> {
        let graph = self.compiled.graph();
        let library = self.engine.library();
        let modules: Vec<ModuleId> = graph
            .nodes()
            .iter()
            .map(|n| {
                library
                    .select(n.kind(), policy)
                    .expect("coverage checked at compile")
            })
            .collect();
        pchls_sched::force_directed_with(
            graph,
            library,
            &modules,
            latency,
            self.compiled.reachability(),
        )
        .map_err(SynthesisError::Schedule)
    }
}

/// Envelope pass + labeling shared by [`Session::sweep`] and
/// [`Engine::sweep_batch`].
fn finish_sweep(compiled: &CompiledGraph, spec: &SweepSpec, raw: Vec<SweepPoint>) -> SweepResult {
    let points = match spec {
        SweepSpec::Power { powers, .. } => envelope(raw, &power_order(powers), SweepAxis::Power),
        SweepSpec::Latency { latencies, .. } => {
            envelope(raw, &latency_order(latencies), SweepAxis::Latency)
        }
        // A design feasible at scale `s` stays feasible at every larger
        // scale (the envelope only grows pointwise), so the monotone
        // carry applies along ascending scales; the carried label is
        // the point's own peak bound (`SweepAxis::Power`).
        SweepSpec::BudgetScale { scales, .. } => {
            envelope(raw, &power_order(scales), SweepAxis::Power)
        }
    };
    SweepResult {
        benchmark: compiled.name().to_owned(),
        points,
    }
}

/// One constraint-axis sweep over a compiled graph.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepSpec {
    /// Fixed latency, varying power bounds (one Figure 2 curve).
    Power {
        /// Latency constraint `T` for every point.
        latency: u32,
        /// Power bounds of the grid.
        powers: Vec<f64>,
    },
    /// Fixed power bound, varying latencies (the orthogonal cut).
    Latency {
        /// Power constraint `P<` for every point.
        power: f64,
        /// Latency bounds of the grid.
        latencies: Vec<u32>,
    },
    /// Fixed latency, one budget *envelope* swept over scale factors:
    /// grid point `i` synthesizes under `budget.scaled(scales[i])`. The
    /// envelope generalization of a power sweep — the x-axis is "how
    /// much of the envelope the supply can actually deliver" (battery
    /// ageing, derating), not a scalar bound.
    BudgetScale {
        /// Latency constraint `T` for every point.
        latency: u32,
        /// The envelope being scaled.
        budget: PowerBudget,
        /// Scale factors of the grid (each ≥ 0).
        scales: Vec<f64>,
    },
}

impl SweepSpec {
    /// A power sweep at fixed `latency`.
    #[must_use]
    pub fn power(latency: u32, powers: Vec<f64>) -> SweepSpec {
        SweepSpec::Power { latency, powers }
    }

    /// A latency sweep at fixed `power`.
    #[must_use]
    pub fn latency(power: f64, latencies: Vec<u32>) -> SweepSpec {
        SweepSpec::Latency { power, latencies }
    }

    /// An envelope-scale sweep at fixed `latency`: point `i` runs under
    /// `budget.scaled(scales[i])`.
    #[must_use]
    pub fn budget_scale(latency: u32, budget: PowerBudget, scales: Vec<f64>) -> SweepSpec {
        SweepSpec::BudgetScale {
            latency,
            budget,
            scales,
        }
    }

    /// Number of grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            SweepSpec::Power { powers, .. } => powers.len(),
            SweepSpec::Latency { latencies, .. } => latencies.len(),
            SweepSpec::BudgetScale { scales, .. } => scales.len(),
        }
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The constraints of grid point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn constraints(&self, i: usize) -> SynthesisConstraints {
        match self {
            SweepSpec::Power { latency, powers } => SynthesisConstraints::new(*latency, powers[i]),
            SweepSpec::Latency { power, latencies } => {
                SynthesisConstraints::new(latencies[i], *power)
            }
            SweepSpec::BudgetScale {
                latency,
                budget,
                scales,
            } => SynthesisConstraints::new(*latency, budget.scaled(scales[i])),
        }
    }
}

/// One sweep's output: the enveloped points, labelled with the
/// benchmark they came from.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Name of the swept graph.
    pub benchmark: String,
    /// One enveloped point per grid entry, in grid order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Consumes the result, yielding just the points.
    #[must_use]
    pub fn into_points(self) -> Vec<SweepPoint> {
        self.points
    }
}

/// One sweep job for [`Engine::sweep_batch`]: a compiled graph plus the
/// constraint grid to sweep it over.
#[derive(Debug, Clone)]
pub struct SweepJob<'a> {
    /// The graph to sweep (compile once, reference from many jobs).
    pub compiled: &'a CompiledGraph,
    /// The constraint grid.
    pub spec: SweepSpec,
}

/// One point of a [`Session::batch`] request list.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisRequest {
    /// The constraint point.
    pub constraints: SynthesisConstraints,
    /// Options for this request (defaults to the paper configuration).
    pub options: SynthesisOptions,
}

impl SynthesisRequest {
    /// A request at `constraints` with the default options.
    #[must_use]
    pub fn new(constraints: SynthesisConstraints) -> SynthesisRequest {
        SynthesisRequest {
            constraints,
            options: SynthesisOptions::default(),
        }
    }

    /// Replaces the options.
    #[must_use]
    pub fn with_options(mut self, options: SynthesisOptions) -> SynthesisRequest {
        self.options = options;
        self
    }
}

/// One outcome of a [`Session::batch`] call.
#[derive(Debug)]
pub struct SynthesisResult {
    /// The request this result answers.
    pub request: SynthesisRequest,
    /// The synthesized design, or why the point failed.
    pub outcome: Result<SynthesizedDesign, SynthesisError>,
}

impl SynthesisResult {
    /// Whether the point was feasible.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.outcome.is_ok()
    }

    /// Summarizes the outcome as a serializable [`SweepPoint`]
    /// (`benchmark` labels the row — typically
    /// [`CompiledGraph::name`]).
    #[must_use]
    pub fn to_point(&self, benchmark: &str) -> SweepPoint {
        let c = &self.request.constraints;
        match &self.outcome {
            Ok(d) => SweepPoint {
                benchmark: benchmark.to_owned(),
                latency_bound: c.latency,
                power_bound: c.max_power(),
                area: Some(d.area),
                latency: Some(d.latency),
                peak_power: Some(d.peak_power),
                units: Some(d.binding.instances().len()),
            },
            Err(_) => SweepPoint {
                benchmark: benchmark.to_owned(),
                latency_bound: c.latency,
                power_bound: c.max_power(),
                area: None,
                latency: None,
                peak_power: None,
                units: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::paper_library;

    #[test]
    fn engine_and_compiled_graph_are_shareable_across_threads() {
        // The service layer (`pchls-serve`) hands `Arc<CompiledGraph>`s
        // to a worker pool; these bounds are its load-bearing contract.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<CompiledGraph>();
        assert_send_sync::<std::sync::Arc<CompiledGraph>>();

        let engine = Engine::new(paper_library());
        let compiled = engine.compile_arc(&benchmarks::hal());
        let opts = SynthesisOptions::default();
        let single = engine
            .session(&compiled)
            .synthesize(SynthesisConstraints::new(17, 25.0), &opts)
            .unwrap();
        let from_thread = std::thread::scope(|s| {
            let compiled = std::sync::Arc::clone(&compiled);
            let (engine, opts) = (&engine, &opts);
            s.spawn(move || {
                engine
                    .session(&compiled)
                    .synthesize(SynthesisConstraints::new(17, 25.0), opts)
                    .unwrap()
            })
            .join()
            .unwrap()
        });
        assert_eq!(single, from_thread, "sharing the compile changed output");
    }

    #[test]
    fn session_reuses_one_compiled_graph_across_points() {
        let engine = Engine::new(paper_library());
        let compiled = engine.compile(&benchmarks::hal());
        let session = engine.session(&compiled);
        let opts = SynthesisOptions::default();
        let a = session
            .synthesize(SynthesisConstraints::new(17, 25.0), &opts)
            .unwrap();
        let b = session
            .synthesize(SynthesisConstraints::new(10, 40.0), &opts)
            .unwrap();
        assert!(a.latency <= 17 && b.latency <= 10);
        // The compiled artifacts are shared, not rebuilt: the closure
        // handle is pointer-stable across calls.
        assert!(std::ptr::eq(
            compiled.reachability(),
            compiled.reachability()
        ));
    }

    #[test]
    fn try_compile_reports_uncovered_kinds() {
        use pchls_fulib::{ModuleLibrary, ModuleSpec};
        // A library with no multiplier cannot compile hal.
        let lib = ModuleLibrary::new([
            ModuleSpec::new("add", [OpKind::Add], 87, 1, 2.5),
            ModuleSpec::new("sub", [OpKind::Sub], 87, 1, 2.5),
            ModuleSpec::new("comp", [OpKind::Comp], 8, 1, 2.5),
            ModuleSpec::new("input", [OpKind::Input], 16, 1, 0.2),
            ModuleSpec::new("output", [OpKind::Output], 16, 1, 1.7),
        ])
        .unwrap();
        let engine = Engine::new(lib);
        let err = engine.try_compile(&benchmarks::hal()).unwrap_err();
        assert!(matches!(
            err,
            SynthesisError::Uncovered { kind: OpKind::Mul }
        ));
    }

    #[test]
    fn compiled_skeletons_are_consistent() {
        let engine = Engine::new(paper_library());
        let compiled = engine.compile(&benchmarks::cosine());
        assert_eq!(
            compiled.min_latency(),
            compiled.asap_schedule().latency(compiled.fastest_timing())
        );
        assert!(compiled.asap_peak_power() > 0.0);
        assert!(compiled.optimize_stats().is_none());
        // The ALAP skeleton respects the same deadline.
        assert!(
            compiled.alap_schedule().latency(compiled.fastest_timing()) <= compiled.min_latency()
        );
    }

    #[test]
    fn compile_optimized_records_the_report() {
        let engine = Engine::new(paper_library());
        let compiled = engine.compile_optimized(&benchmarks::hal()).unwrap();
        assert!(compiled.optimize_stats().is_some());
    }

    #[test]
    fn batch_matches_one_at_a_time() {
        let engine = Engine::new(paper_library());
        let compiled = engine.compile(&benchmarks::hal());
        let session = engine.session(&compiled);
        let opts = SynthesisOptions::default();
        let points = [(17u32, 25.0), (10, 40.0), (17, 1.0), (30, 12.0)];
        let results = session.batch(
            points
                .iter()
                .map(|&(t, p)| SynthesisRequest::new(SynthesisConstraints::new(t, p))),
        );
        assert_eq!(results.len(), points.len());
        for (r, &(t, p)) in results.iter().zip(&points) {
            let single = session.synthesize(SynthesisConstraints::new(t, p), &opts);
            match (&r.outcome, &single) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "T={t} P={p}"),
                (Err(_), Err(_)) => {}
                _ => panic!("batch/single disagree at T={t} P={p}"),
            }
        }
    }

    #[test]
    fn progress_hook_sees_every_iteration_and_can_cancel() {
        let engine = Engine::new(paper_library());
        let compiled = engine.compile(&benchmarks::hal());
        let session = engine.session(&compiled);
        let opts = SynthesisOptions::default();
        let c = SynthesisConstraints::new(17, 25.0);

        let mut events = 0usize;
        let d = session
            .synthesize_with_progress(c.clone(), &opts, &mut |p| {
                events += 1;
                assert!(p.bound_ops <= p.total_ops);
                ControlFlow::Continue(())
            })
            .unwrap();
        assert!(events > 0, "hook never ran");
        assert_eq!(
            d,
            session.synthesize(c.clone(), &opts).unwrap(),
            "hook is pure"
        );

        let err = session
            .synthesize_with_progress(c, &opts, &mut |_| ControlFlow::Break(()))
            .unwrap_err();
        assert!(matches!(err, SynthesisError::Cancelled));
    }

    #[test]
    fn session_force_directed_matches_free_function() {
        let g = benchmarks::cosine();
        let lib = paper_library();
        let engine = Engine::new(lib.clone());
        let compiled = engine.compile(&g);
        let session = engine.session(&compiled);
        let latency = compiled.min_latency() + 4;
        let via_session = session
            .force_directed(latency, SelectionPolicy::Fastest)
            .unwrap();
        let modules: Vec<_> = g
            .nodes()
            .iter()
            .map(|n| lib.select(n.kind(), SelectionPolicy::Fastest).unwrap())
            .collect();
        let via_free = pchls_sched::force_directed(&g, &lib, &modules, latency).unwrap();
        assert_eq!(via_session, via_free, "shared closure changed the schedule");
        // An impossible deadline surfaces as a typed schedule error.
        assert!(matches!(
            session.force_directed(1, SelectionPolicy::Fastest),
            Err(SynthesisError::Schedule(_))
        ));
    }

    #[test]
    fn session_auto_grid_matches_free_function() {
        let g = benchmarks::hal();
        let engine = Engine::new(paper_library());
        let compiled = engine.compile(&g);
        let session = engine.session(&compiled);
        assert_eq!(
            session.auto_power_grid(10),
            crate::explore::auto_power_grid(&g, engine.library(), 10)
        );
    }

    #[test]
    fn sweep_batch_equals_individual_sweeps() {
        let engine = Engine::new(paper_library());
        let hal = engine.compile(&benchmarks::hal());
        let cosine = engine.compile(&benchmarks::cosine());
        let opts = SynthesisOptions::default();
        let jobs = [
            SweepJob {
                compiled: &hal,
                spec: SweepSpec::power(17, vec![10.0, 20.0, 40.0]),
            },
            SweepJob {
                compiled: &hal,
                spec: SweepSpec::power(10, vec![10.0, 20.0, 40.0]),
            },
            SweepJob {
                compiled: &cosine,
                spec: SweepSpec::latency(30.0, vec![10, 12, 15, 19]),
            },
        ];
        let batched = engine.sweep_batch(&jobs, &opts);
        assert_eq!(batched.len(), jobs.len());
        for (result, job) in batched.iter().zip(&jobs) {
            let single = engine.session(job.compiled).sweep(&job.spec, &opts);
            assert_eq!(result, &single);
        }
    }

    #[test]
    fn resumable_sweep_matches_full_sweep_and_reports_only_fresh_points() {
        let engine = Engine::new(paper_library());
        let compiled = engine.compile(&benchmarks::hal());
        let session = engine.session(&compiled);
        let opts = SynthesisOptions::default();
        let spec = SweepSpec::power(17, vec![5.0, 10.0, 20.0, 25.0, 40.0]);
        let full = session.sweep(&spec, &opts);

        // Seed the cache with the raw outcomes of points 1 and 3 — the
        // raw points come from a cold resumable run with nothing cached.
        let (cold, cold_fresh) = session.sweep_resumable(&spec, &opts, &vec![None; spec.len()]);
        assert_eq!(cold, full, "cold resumable run diverged from sweep()");
        assert_eq!(cold_fresh.len(), spec.len());
        let mut cached: Vec<Option<SweepPoint>> = vec![None; spec.len()];
        for &i in &[1usize, 3] {
            cached[i] = Some(cold_fresh[i].1.clone());
        }

        let (resumed, fresh) = session.sweep_resumable(&spec, &opts, &cached);
        assert_eq!(resumed, full, "resume changed the enveloped result");
        assert_eq!(
            fresh.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 2, 4],
            "only the uncached grid indices were synthesized"
        );
        for (i, point) in &fresh {
            assert_eq!(point, &cold_fresh[*i].1, "fresh point {i} is not raw");
        }
    }
}
