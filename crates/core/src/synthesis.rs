//! The combined power-constrained scheduling/allocation/binding loop.

use std::collections::BTreeSet;

use pchls_bind::{Binding, InstanceId};
use pchls_cdfg::{Cdfg, NodeId, Reachability};
use pchls_fulib::{ModuleId, ModuleLibrary, SelectionPolicy};
use pchls_sched::{
    palap_locked, pasap_locked, LockedStarts, OpTiming, PowerLedger, Schedule, ScheduleError,
    TimingMap,
};

use crate::constraints::SynthesisConstraints;
use crate::design::{SynthesisStats, SynthesizedDesign};
use crate::error::SynthesisError;
use crate::options::SynthesisOptions;

/// One greedy decision over the compatibility structure, in decreasing
/// order of preference:
///
/// * merge an operation onto an existing instance,
/// * merge **two** unbound operations onto a new shared instance (the
///   Jou-style clique-forming merge — this is what makes expensive units
///   like multipliers fold before cheap I/O units get a chance to eat the
///   schedule slack),
/// * open a dedicated instance for one operation (fallback; negative
///   score so it only wins when nothing can be shared).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Decision {
    op: NodeId,
    module: ModuleId,
    start: u32,
    target: Target,
    score: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Existing(InstanceId),
    Fresh,
    FreshPair { partner: NodeId, partner_start: u32 },
}

/// Synthesizes `graph` under `constraints`, minimizing functional-unit
/// area (see the crate-level documentation for the algorithm).
///
/// # Errors
///
/// * [`SynthesisError::Infeasible`] when no power-feasible schedule fits
///   the latency bound — the `(T, P<)` point is outside the feasible
///   region.
/// * [`SynthesisError::Schedule`] / [`SynthesisError::Bind`] on internal
///   validation failures (defended by tests; callers can treat any error
///   as "no design produced").
pub fn synthesize(
    graph: &Cdfg,
    library: &ModuleLibrary,
    constraints: SynthesisConstraints,
    options: &SynthesisOptions,
) -> Result<SynthesizedDesign, SynthesisError> {
    let n = graph.len();
    let reach = Reachability::new(graph);
    let (mut timing, est_modules) = bootstrap(graph, library, constraints, &reach)?;

    let mut binding = Binding::new(n);
    let mut locked = LockedStarts::none(n);
    let mut unbound: BTreeSet<NodeId> = graph.node_ids().collect();
    let mut stats = SynthesisStats::default();

    while !unbound.is_empty() {
        // Power-feasible windows under the current commitments.
        let provisional = pasap_locked(
            graph,
            &timing,
            constraints.max_power,
            constraints.latency,
            &locked,
        )
        .map_err(|cause| SynthesisError::Infeasible { cause })?;
        let late = palap_locked(
            graph,
            &timing,
            constraints.max_power,
            constraints.latency,
            &locked,
        )
        // The reversed heuristic can fail where the forward one succeeded;
        // fall back to zero mobility (late = early), which is always safe.
        .unwrap_or_else(|_| provisional.clone());

        let ledger = locked_ledger(graph, &timing, &locked, constraints)?;
        let busy = instance_busy(&binding, &locked, &timing);
        let ctx = Context {
            graph,
            library,
            options,
            reach: &reach,
            timing: &timing,
            est_modules: &est_modules,
            binding: &binding,
            locked: &locked,
            ledger: &ledger,
            busy: &busy,
            provisional: &provisional,
            late: &late,
            constraints,
        };
        let mut candidates = enumerate_candidates(&ctx, &unbound);
        // Deterministic order: best score first, then earlier start, then
        // smaller op id.
        candidates.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then(a.start.cmp(&b.start))
                .then(a.op.cmp(&b.op))
        });

        // Try candidates best-first; a candidate commits only if the
        // remaining operations still admit a power-feasible schedule (the
        // paper's feasibility check). Rejected candidates are undone and
        // skipped; attempts are capped so a pathological iteration stays
        // cheap.
        const MAX_ATTEMPTS: usize = 64;
        let mut committed = false;
        for cand in candidates.iter().take(MAX_ATTEMPTS) {
            let saved = saved_state(cand, &timing);
            apply(cand, library, &mut binding, &mut locked, &mut timing);
            let feasible = pasap_locked(
                graph,
                &timing,
                constraints.max_power,
                constraints.latency,
                &locked,
            )
            .is_ok();
            if feasible {
                unbound.remove(&cand.op);
                stats.decisions += 1;
                if let Target::FreshPair { partner, .. } = cand.target {
                    unbound.remove(&partner);
                    stats.decisions += 1;
                }
                committed = true;
                break;
            }
            undo(cand, &mut binding, &mut locked, &mut timing, &saved);
            stats.rejected_candidates += 1;
        }
        if !committed {
            // Every candidate strands the remaining operations. The
            // paper's repair: backtrack (all failed decisions are already
            // undone) and lock every unscheduled operation to the last
            // valid pasap schedule, then continue with binding-only
            // decisions.
            if !options.backtracking {
                return Err(SynthesisError::Infeasible {
                    cause: ScheduleError::Infeasible {
                        node: *unbound.iter().next().expect("non-empty"),
                        horizon: constraints.latency,
                        max_power: constraints.max_power,
                    },
                });
            }
            for &v in &unbound {
                locked.lock(v, provisional.start(v));
            }
            stats.backtracks += 1;
        }
    }

    // All operations bound and locked: the locked schedule is final.
    let final_schedule = pasap_locked(
        graph,
        &timing,
        constraints.max_power,
        constraints.latency,
        &locked,
    )
    .map_err(SynthesisError::Schedule)?;
    binding.prune_empty();
    let mut design =
        SynthesizedDesign::assemble(final_schedule, timing, binding, library, constraints);
    design.stats = stats;
    design.validate(graph, library)?;
    Ok(design)
}

/// Read-only state shared by the candidate enumeration helpers.
struct Context<'a> {
    graph: &'a Cdfg,
    library: &'a ModuleLibrary,
    options: &'a SynthesisOptions,
    reach: &'a Reachability,
    timing: &'a TimingMap,
    est_modules: &'a [ModuleId],
    binding: &'a Binding,
    locked: &'a LockedStarts,
    ledger: &'a PowerLedger,
    busy: &'a [Vec<(u32, u32)>],
    provisional: &'a Schedule,
    late: &'a Schedule,
    constraints: SynthesisConstraints,
}

/// The per-cycle power already reserved by locked operations.
fn locked_ledger(
    graph: &Cdfg,
    timing: &TimingMap,
    locked: &LockedStarts,
    constraints: SynthesisConstraints,
) -> Result<PowerLedger, SynthesisError> {
    let mut ledger = PowerLedger::new(constraints.latency, constraints.max_power);
    for id in graph.node_ids() {
        if let Some(s) = locked.get(id) {
            let t = timing.of(id);
            if !ledger.fits(s, t.delay, t.power) {
                return Err(SynthesisError::Schedule(ScheduleError::PowerExceeded {
                    cycle: s,
                    power: ledger.used(s) + t.power,
                    bound: constraints.max_power,
                }));
            }
            ledger.reserve(s, t.delay, t.power);
        }
    }
    Ok(ledger)
}

/// Busy intervals of each instance (bound ops are always locked).
fn instance_busy(
    binding: &Binding,
    locked: &LockedStarts,
    timing: &TimingMap,
) -> Vec<Vec<(u32, u32)>> {
    binding
        .instance_ids()
        .map(|iid| {
            binding
                .instance(iid)
                .ops()
                .iter()
                .map(|&op| {
                    let s = locked.get(op).expect("bound ops are locked");
                    (s, s + timing.delay(op))
                })
                .collect()
        })
        .collect()
}

impl Context<'_> {
    /// Area of the cheapest library module that could *feasibly* execute
    /// `op` in the current state — the unit a successful merge avoids
    /// opening. Feasibility matters: when the latency bound rules the
    /// serial multiplier out for an operation, merging it onto a parallel
    /// multiplier avoids a 339-area unit, not a 103-area one.
    fn avoided_area(&self, op: NodeId) -> f64 {
        self.library
            .candidates(self.graph.node(op).kind())
            .filter(|&m| self.candidate_start(op, m, 0).is_some())
            .map(|m| self.library.module(m).area())
            .min()
            .or_else(|| {
                // Nothing currently fits (rare, mid-backtrack): fall back
                // to the global cheapest so scoring stays total.
                self.library
                    .candidates(self.graph.node(op).kind())
                    .map(|m| self.library.module(m).area())
                    .min()
            })
            .map(f64::from)
            .expect("library coverage checked at bootstrap")
    }

    /// The earliest feasible start for `op` executed on module `m`, no
    /// earlier than `not_before`. Respects the power ledger, the
    /// palap-estimated deadline (softened so the provisional slot always
    /// qualifies), locked direct successors, and — for locked ops — the
    /// fixed slot and timing.
    fn candidate_start(&self, op: NodeId, m: ModuleId, not_before: u32) -> Option<u32> {
        let spec = self.library.module(m);
        if let Some(s) = self.locked.get(op) {
            let cur = self.timing.of(op);
            if spec.latency() != cur.delay || (spec.power() - cur.power).abs() > 1e-9 {
                return None; // reservation coherence
            }
            return (s >= not_before).then_some(s);
        }
        let delay = spec.latency();
        let power = spec.power();
        if power > self.constraints.max_power + 1e-9 {
            return None;
        }
        let ready = self
            .graph
            .operands(op)
            .iter()
            .map(|&p| self.provisional.start(p) + self.timing.delay(p))
            .max()
            .unwrap_or(0)
            .max(not_before);
        // Soft palap deadline: never tighter than the provisional slot.
        let soft_deadline = (self.late.start(op) + self.timing.delay(op))
            .max(self.provisional.start(op) + self.timing.delay(op));
        // Hard bounds: the latency constraint and locked successors.
        let deadline = self
            .graph
            .successors(op)
            .iter()
            .filter_map(|&s| self.locked.get(s))
            .min()
            .unwrap_or(u32::MAX)
            .min(soft_deadline)
            .min(self.constraints.latency);
        let mut s = ready;
        while s + delay <= deadline {
            if self.ledger.fits(s, delay, power) {
                return Some(s);
            }
            s += 1;
        }
        None
    }

    /// Interconnect bonus: shared operand producers / result consumers.
    fn interconnect(&self, u: NodeId, others: &[NodeId]) -> f64 {
        if !self.options.interconnect_scoring {
            return 0.0;
        }
        let mut shared = 0usize;
        for &v in others {
            shared += self
                .graph
                .operands(u)
                .iter()
                .filter(|p| self.graph.operands(v).contains(p))
                .count();
            shared += self
                .graph
                .successors(u)
                .iter()
                .filter(|c| self.graph.successors(v).contains(c))
                .count();
        }
        shared as f64 * self.options.weights.interconnect
    }

    /// Modules allowed for `op` under the ablation switches.
    fn modules_for(&self, op: NodeId) -> Vec<ModuleId> {
        if self.options.module_selection {
            self.library
                .candidates(self.graph.node(op).kind())
                .collect()
        } else {
            vec![self.est_modules[op.index()]]
        }
    }
}

/// Enumerates every feasible decision for the unbound operations.
fn enumerate_candidates(ctx: &Context<'_>, unbound: &BTreeSet<NodeId>) -> Vec<Decision> {
    let mut out = Vec::new();
    let unbound_vec: Vec<NodeId> = unbound.iter().copied().collect();

    for &u in &unbound_vec {
        for m in ctx.modules_for(u) {
            let spec = ctx.library.module(m);
            let area = f64::from(spec.area());
            // (1) Merge onto an existing instance: earliest start at which
            // the instance is free and power fits. Starting later than the
            // op's free earliest start consumes schedule slack and is
            // penalized (see `CostWeights::displacement`).
            let free_start = ctx.candidate_start(u, m, 0);
            for iid in ctx.binding.instance_ids() {
                let inst = ctx.binding.instance(iid);
                if inst.module() != m {
                    continue;
                }
                if let Some(s) = earliest_instance_fit(ctx, u, m, iid) {
                    let displaced = f64::from(s - free_start.expect("fit implies a free start"));
                    // The +1 bonus breaks ties against pair merges: growing
                    // an existing clique saves one unit per *one* operation
                    // consumed, a pair saves one unit per two — without the
                    // bonus the greedy fragments large op classes into
                    // many two-op instances.
                    out.push(Decision {
                        op: u,
                        module: m,
                        start: s,
                        target: Target::Existing(iid),
                        score: ctx.options.weights.area * ctx.avoided_area(u)
                            + ctx.interconnect(u, inst.ops())
                            - ctx.options.weights.displacement * displaced
                            + 1.0,
                    });
                }
            }
            // (3) Dedicated instance (fallback).
            if let Some(s) = ctx.candidate_start(u, m, 0) {
                out.push(Decision {
                    op: u,
                    module: m,
                    start: s,
                    target: Target::Fresh,
                    score: -ctx.options.weights.area * area,
                });
            }
        }
    }

    // (2) Pair merges: two unbound operations opening one shared unit.
    for (i, &u) in unbound_vec.iter().enumerate() {
        for &v in &unbound_vec[i + 1..] {
            // Serialize in dependence order if one exists.
            let (first, second) = if ctx.reach.reaches(v, u) {
                (v, u)
            } else {
                (u, v)
            };
            for m in ctx.modules_for(first) {
                let spec = ctx.library.module(m);
                if !spec.implements(ctx.graph.node(second).kind()) {
                    continue;
                }
                let gain =
                    ctx.avoided_area(first) + ctx.avoided_area(second) - f64::from(spec.area());
                if gain <= 0.0 {
                    continue; // two dedicated cheapest units are no worse
                }
                let Some(s1) = ctx.candidate_start(first, m, 0) else {
                    continue;
                };
                let Some(s2_free) = ctx.candidate_start(second, m, 0) else {
                    continue;
                };
                let Some(s2) = ctx.candidate_start(second, m, s1 + spec.latency()) else {
                    continue;
                };
                // Dependence-ordered pairs serialize for free (s2 at its
                // natural slot); concurrent siblings pay for the slack
                // their serialization consumes.
                let displaced = f64::from(s2 - s2_free);
                out.push(Decision {
                    op: first,
                    module: m,
                    start: s1,
                    target: Target::FreshPair {
                        partner: second,
                        partner_start: s2,
                    },
                    score: ctx.options.weights.area * gain + ctx.interconnect(first, &[second])
                        - ctx.options.weights.displacement * displaced,
                });
            }
        }
    }
    out
}

/// Earliest start at which `u` can execute on instance `iid` of module
/// `m`: power-feasible and not overlapping the instance's busy intervals.
fn earliest_instance_fit(
    ctx: &Context<'_>,
    u: NodeId,
    m: ModuleId,
    iid: InstanceId,
) -> Option<u32> {
    let delay = ctx.library.module(m).latency();
    let busy = &ctx.busy[iid.index()];
    let mut s = ctx.candidate_start(u, m, 0)?;
    loop {
        // First busy interval overlapping [s, s+delay), if any.
        match busy
            .iter()
            .filter(|&&(bs, bf)| s < bf && bs < s + delay)
            .map(|&(_, bf)| bf)
            .max()
        {
            None => return Some(s),
            Some(resume) => {
                // Skip past the collision and re-check power/deadline.
                s = ctx.candidate_start(u, m, resume)?;
            }
        }
    }
}

/// State saved for undoing a decision.
struct Saved {
    op_timing: OpTiming,
    partner_timing: Option<(NodeId, OpTiming)>,
}

fn saved_state(cand: &Decision, timing: &TimingMap) -> Saved {
    Saved {
        op_timing: timing.of(cand.op),
        partner_timing: match cand.target {
            Target::FreshPair { partner, .. } => Some((partner, timing.of(partner))),
            _ => None,
        },
    }
}

fn apply(
    cand: &Decision,
    library: &ModuleLibrary,
    binding: &mut Binding,
    locked: &mut LockedStarts,
    timing: &mut TimingMap,
) {
    let spec = library.module(cand.module);
    let t = OpTiming {
        delay: spec.latency(),
        power: spec.power(),
    };
    timing.set(cand.op, t);
    locked.lock(cand.op, cand.start);
    match cand.target {
        Target::Existing(i) => binding.bind(cand.op, i),
        Target::Fresh => {
            let i = binding.new_instance(cand.module);
            binding.bind(cand.op, i);
        }
        Target::FreshPair {
            partner,
            partner_start,
        } => {
            let i = binding.new_instance(cand.module);
            binding.bind(cand.op, i);
            timing.set(partner, t);
            locked.lock(partner, partner_start);
            binding.bind(partner, i);
        }
    }
}

fn undo(
    cand: &Decision,
    binding: &mut Binding,
    locked: &mut LockedStarts,
    timing: &mut TimingMap,
    saved: &Saved,
) {
    binding.unbind(cand.op);
    locked.unlock(cand.op);
    timing.set(cand.op, saved.op_timing);
    if let Some((partner, t)) = saved.partner_timing {
        binding.unbind(partner);
        locked.unlock(partner);
        timing.set(partner, t);
    }
    // A fresh instance allocated for this decision stays empty and is
    // pruned at the end; ids of other instances are unaffected.
}

/// Chooses initial per-operation module estimates: minimum area (also the
/// low-power choice in realistic libraries), then upgrades operations to
/// their fastest module along infeasible critical paths until a
/// power-feasible schedule exists.
fn bootstrap(
    graph: &Cdfg,
    library: &ModuleLibrary,
    constraints: SynthesisConstraints,
    reach: &Reachability,
) -> Result<(TimingMap, Vec<ModuleId>), SynthesisError> {
    let mut modules: Vec<ModuleId> = graph
        .nodes()
        .iter()
        .map(|nd| {
            library
                .select(nd.kind(), SelectionPolicy::MinArea)
                .unwrap_or_else(|| panic!("library does not cover {}", nd.kind()))
        })
        .collect();
    let mut timing = TimingMap::from_modules(graph, library, &modules);

    loop {
        let err =
            match pchls_sched::pasap(graph, &timing, constraints.max_power, constraints.latency) {
                Ok(_) => return Ok((timing, modules)),
                Err(e) => e,
            };
        // Power alone can never be fixed by a faster (more power-hungry)
        // module.
        if matches!(err, ScheduleError::OpExceedsBudget { .. }) {
            return Err(SynthesisError::Infeasible { cause: err });
        }
        let failing = match err {
            ScheduleError::Infeasible { node, .. } => Some(node),
            _ => None,
        };
        // Upgradeable ops: a strictly faster module exists whose power
        // still fits the budget.
        let upgrade_of = |v: NodeId| -> Option<ModuleId> {
            let cur = timing.delay(v);
            library
                .candidates(graph.node(v).kind())
                .filter(|&m| {
                    library.module(m).latency() < cur
                        && library.module(m).power() <= constraints.max_power + 1e-9
                })
                .min_by_key(|&m| (library.module(m).latency(), library.module(m).area()))
        };
        let mut upgradeable: Vec<NodeId> = graph
            .node_ids()
            .filter(|&v| upgrade_of(v).is_some())
            .collect();
        if let Some(f) = failing {
            // Prefer the failing op itself or one of its ancestors — the
            // delay on the path into `f` is what broke the horizon.
            let on_path: Vec<NodeId> = upgradeable
                .iter()
                .copied()
                .filter(|&v| v == f || reach.reaches(v, f))
                .collect();
            if !on_path.is_empty() {
                upgradeable = on_path;
            }
        }
        // Upgrade the slowest candidate first (largest delay win).
        let Some(&pick) = upgradeable.iter().max_by_key(|&&v| {
            timing.delay(v) - library.module(upgrade_of(v).expect("filtered")).latency()
        }) else {
            return Err(SynthesisError::Infeasible { cause: err });
        };
        let m = upgrade_of(pick).expect("pick is upgradeable");
        modules[pick.index()] = m;
        timing.set(
            pick,
            OpTiming {
                delay: library.module(m).latency(),
                power: library.module(m).power(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::paper_library;

    fn synth(graph: &Cdfg, latency: u32, power: f64) -> Result<SynthesizedDesign, SynthesisError> {
        synthesize(
            graph,
            &paper_library(),
            SynthesisConstraints::new(latency, power),
            &SynthesisOptions::default(),
        )
    }

    #[test]
    fn hal_paper_constraints_synthesize() {
        let g = benchmarks::hal();
        for (t, p) in [(10, 40.0), (10, 20.0), (17, 40.0), (17, 12.0)] {
            let d = synth(&g, t, p).unwrap_or_else(|e| panic!("T={t} P={p}: {e}"));
            d.validate(&g, &paper_library()).unwrap();
            assert!(d.latency <= t);
            assert!(d.peak_power <= p + 1e-9);
        }
    }

    #[test]
    fn cosine_and_elliptic_synthesize() {
        for (g, t) in [
            (benchmarks::cosine(), 12),
            (benchmarks::cosine(), 19),
            (benchmarks::elliptic(), 22),
        ] {
            let d = synth(&g, t, 60.0).unwrap_or_else(|e| panic!("{} T={t}: {e}", g.name()));
            d.validate(&g, &paper_library()).unwrap();
        }
    }

    #[test]
    fn infeasible_power_is_reported() {
        let g = benchmarks::hal();
        let err = synth(&g, 10, 2.0).unwrap_err();
        assert!(matches!(err, SynthesisError::Infeasible { .. }));
    }

    #[test]
    fn infeasible_latency_is_reported() {
        let g = benchmarks::hal();
        let err = synth(&g, 4, 1e6).unwrap_err();
        assert!(matches!(err, SynthesisError::Infeasible { .. }));
    }

    #[test]
    fn area_decreases_with_looser_power() {
        let g = benchmarks::hal();
        let tight = synth(&g, 17, 12.0).unwrap();
        let loose = synth(&g, 17, 200.0).unwrap();
        // More power headroom can only help the area objective (the
        // feasible design space strictly grows). The greedy is not
        // guaranteed monotone, but on hal it is and the paper's Figure 2
        // depends on this qualitative trend.
        assert!(
            loose.area <= tight.area,
            "loose {} > tight {}",
            loose.area,
            tight.area
        );
    }

    #[test]
    fn area_decreases_with_looser_latency() {
        let g = benchmarks::hal();
        let tight = synth(&g, 10, 40.0).unwrap();
        let loose = synth(&g, 30, 40.0).unwrap();
        assert!(
            loose.area <= tight.area,
            "loose {} > tight {}",
            loose.area,
            tight.area
        );
    }

    #[test]
    fn tight_latency_uses_parallel_multipliers() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let d = synth(&g, 10, 1e6).unwrap();
        let par = lib.by_name("mult_par").unwrap();
        assert!(
            d.binding.instances().iter().any(|i| i.module() == par),
            "T=10 requires at least one parallel multiplier"
        );
    }

    #[test]
    fn loose_latency_prefers_serial_multipliers() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let d = synth(&g, 40, 10.0).unwrap();
        let par = lib.by_name("mult_par").unwrap();
        // At T=40 with a 10.0 budget the 8.1-power parallel multiplier
        // is never worth opening: serial ones are smaller and pasap has
        // room to stretch.
        assert!(
            d.binding.instances().iter().all(|i| i.module() != par),
            "unexpected parallel multiplier in a relaxed design"
        );
    }

    #[test]
    fn multiplications_fold_before_io() {
        // The pair-merge ordering: with generous slack, the expensive
        // multipliers must share units (fewer instances than operations).
        let g = benchmarks::hal();
        let lib = paper_library();
        let d = synth(&g, 30, 25.0).unwrap();
        let mult_instances = d
            .binding
            .instances()
            .iter()
            .filter(|i| lib.module(i.module()).implements(pchls_cdfg::OpKind::Mul))
            .count();
        assert!(
            mult_instances < 6,
            "6 multiplications must not need 6 units at T=30"
        );
    }

    #[test]
    fn synthesis_is_deterministic() {
        let g = benchmarks::cosine();
        let a = synth(&g, 15, 40.0).unwrap();
        let b = synth(&g, 15, 40.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn every_op_is_bound_once() {
        let g = benchmarks::elliptic();
        let d = synth(&g, 25, 30.0).unwrap();
        assert!(d.binding.is_complete());
        let total_bound: usize = d.binding.instances().iter().map(|i| i.ops().len()).sum();
        assert_eq!(total_bound, g.len());
    }

    #[test]
    fn stats_count_decisions() {
        let g = benchmarks::hal();
        let d = synth(&g, 17, 25.0).unwrap();
        assert_eq!(d.stats.decisions, g.len());
    }

    #[test]
    fn ablation_no_backtracking_still_works_on_easy_points() {
        let g = benchmarks::hal();
        let opts = SynthesisOptions {
            backtracking: false,
            ..SynthesisOptions::default()
        };
        let d = synthesize(
            &g,
            &paper_library(),
            SynthesisConstraints::new(20, 40.0),
            &opts,
        )
        .unwrap();
        d.validate(&g, &paper_library()).unwrap();
        assert_eq!(d.stats.backtracks, 0);
    }

    #[test]
    fn ablation_no_module_selection_uses_estimates_only() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let opts = SynthesisOptions {
            module_selection: false,
            ..SynthesisOptions::default()
        };
        // Loose constraints: the MinArea bootstrap keeps serial
        // multipliers, so the design must contain no parallel ones.
        let d = synthesize(&g, &lib, SynthesisConstraints::new(40, 1e6), &opts).unwrap();
        let par = lib.by_name("mult_par").unwrap();
        assert!(d.binding.instances().iter().all(|i| i.module() != par));
    }
}
