//! The combined power-constrained scheduling/allocation/binding loop.

use pchls_bind::{Binding, InstanceId};
use pchls_cdfg::{iter_and_above, Cdfg, NodeId, NodeSet, Reachability};
use pchls_fulib::{ModuleId, ModuleLibrary};
use pchls_sched::{
    palap_locked_budget, pasap_locked_budget, LockedStarts, OpTiming, PowerLedger, Schedule,
    ScheduleError, TimingMap,
};

use std::ops::ControlFlow;

use crate::constraints::SynthesisConstraints;
use crate::design::{SynthesisStats, SynthesizedDesign};
use crate::engine::{CompiledGraph, Engine, KindCompat, Progress};
use crate::error::SynthesisError;
use crate::options::SynthesisOptions;
use crate::replay::{plan_gated_iteration, ReplayState, SynthesisMemo};
use crate::topk::TopK;

/// One greedy decision over the compatibility structure, in decreasing
/// order of preference:
///
/// * merge an operation onto an existing instance,
/// * merge **two** unbound operations onto a new shared instance (the
///   Jou-style clique-forming merge — this is what makes expensive units
///   like multipliers fold before cheap I/O units get a chance to eat the
///   schedule slack),
/// * open a dedicated instance for one operation (fallback; negative
///   score so it only wins when nothing can be shared).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Decision {
    pub(crate) op: NodeId,
    pub(crate) module: ModuleId,
    pub(crate) start: u32,
    pub(crate) target: Target,
    pub(crate) score: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Target {
    Existing(InstanceId),
    Fresh,
    FreshPair { partner: NodeId, partner_start: u32 },
}

/// How one kernel run interacts with the incremental-replay machinery
/// (see [`crate::replay`]): `Plain` runs are untouched, `Record` runs
/// additionally journal per-iteration observation state into a
/// [`SynthesisMemo`], and `Replay` runs consult a memo plus a graph
/// delta to skip candidate enumeration wherever the edit provably
/// cannot have changed it. All three modes produce byte-identical
/// designs and effort counters for the same `(graph, constraints,
/// options)` input.
pub(crate) enum KernelMode<'m, 'r> {
    Plain,
    Record(&'r mut SynthesisMemo),
    Replay(&'r mut ReplayState<'m>),
}

/// Synthesizes `graph` under `constraints`, minimizing functional-unit
/// area (see the crate-level documentation for the algorithm).
///
/// This is the legacy one-shot entry point: it builds a throwaway
/// [`Engine`], compiles the graph, synthesizes once and discards both —
/// re-deriving the library indexes and reachability bitsets every call.
/// Callers synthesizing the same graph more than once should hold an
/// [`Engine`] and a [`CompiledGraph`] instead; the output is
/// byte-identical either way.
///
/// # Errors
///
/// * [`SynthesisError::Infeasible`] when no power-feasible schedule fits
///   the latency bound — the `(T, P<)` point is outside the feasible
///   region.
/// * [`SynthesisError::Schedule`] / [`SynthesisError::Bind`] on internal
///   validation failures (defended by tests; callers can treat any error
///   as "no design produced").
#[deprecated(
    since = "0.2.0",
    note = "build an `Engine` once and reuse it across constraint points: \
            `Engine::new(library.clone())`, `engine.compile(graph)`, then \
            `engine.session(&compiled).synthesize(constraints, options)`"
)]
pub fn synthesize(
    graph: &Cdfg,
    library: &ModuleLibrary,
    constraints: SynthesisConstraints,
    options: &SynthesisOptions,
) -> Result<SynthesizedDesign, SynthesisError> {
    let engine = Engine::new(library.clone());
    let compiled = engine.compile(graph);
    synthesize_session(&engine, &compiled, &constraints, options, None)
}

/// The combined loop over precompiled shared artifacts — the engine's
/// library indexes and the compiled graph's reachability/bootstrap
/// state. All public entry points ([`synthesize`],
/// [`Session::synthesize`](crate::Session::synthesize), sweeps,
/// batches) funnel here.
pub(crate) fn synthesize_session(
    engine: &Engine,
    compiled: &CompiledGraph,
    constraints: &SynthesisConstraints,
    options: &SynthesisOptions,
    hook: Option<&mut dyn FnMut(Progress) -> ControlFlow<()>>,
) -> Result<SynthesizedDesign, SynthesisError> {
    synthesize_session_mode(
        engine,
        compiled,
        constraints,
        options,
        hook,
        KernelMode::Plain,
    )
}

/// [`synthesize_session`] with an explicit [`KernelMode`] — the
/// recording ([`crate::Session::synthesize_recorded`]) and replay
/// ([`crate::Session::resynthesize`]) entry points land here.
pub(crate) fn synthesize_session_mode(
    engine: &Engine,
    compiled: &CompiledGraph,
    constraints: &SynthesisConstraints,
    options: &SynthesisOptions,
    mut hook: Option<&mut dyn FnMut(Progress) -> ControlFlow<()>>,
    mut mode: KernelMode<'_, '_>,
) -> Result<SynthesizedDesign, SynthesisError> {
    let graph = compiled.graph();
    let library = engine.library();
    let reach = compiled.reachability();
    // Per-kind module candidate lists and the kind-compatibility matrix
    // are owned by the engine — computed once per library, not per
    // point. Incompatible kind pairs can never share a unit, so the
    // O(n²) pair loop drops them with one table load.
    let kind_modules = engine.kind_modules();
    let kind_compat = engine.kind_compat();
    let n = graph.len();
    // Normalize the budget once: a value-constant envelope (however it
    // was spelled) becomes the scalar `Constant`, so the thousands of
    // per-probe ledger constructions below take the O(1) collapse path
    // instead of re-scanning the envelope each time. Semantics within
    // the horizon are identical; the design still records the caller's
    // own constraints.
    let budget = constraints.budget.normalized(constraints.latency);
    let _synth_span = pchls_obs::span!("kernel.synthesize", "ops" => n);
    let (mut timing, est_modules) = {
        let _span = pchls_obs::span!("kernel.bootstrap");
        bootstrap(graph, library, constraints, &budget, reach, compiled)?
    };
    if let KernelMode::Record(memo) = &mut mode {
        memo.begin(
            constraints.clone(),
            *options,
            n,
            library.len(),
            est_modules.clone(),
            reach.clone(),
        );
    }

    let mut binding = Binding::new(n);
    let mut locked = LockedStarts::none(n);
    // Word-bitset membership of the not-yet-bound operations, in the
    // same packed layout as the `Reachability` rows and the compiled
    // kind-compat masks — pair enumeration ANDs it against a compat row
    // and walks the surviving words. `scratch.unbound_vec` below
    // re-materializes the ascending-id order the scoring pass iterates
    // in.
    let mut unbound = NodeSet::full(n);
    let mut unbound_count = n;
    let mut stats = SynthesisStats::default();
    // Iteration-scoped work buffers, allocated once per synthesize call
    // and `clear()`ed per iteration instead of rebuilt.
    let mut scratch = Scratch::new(library.len());

    // The per-cycle power reserved by locked operations, maintained
    // incrementally: candidate attempts reserve on apply and restore a
    // bit-exact snapshot on undo, instead of rebuilding the ledger from
    // the whole locked set every iteration.
    let mut ledger = PowerLedger::with_budget(constraints.latency, &budget);

    // Power-feasible early starts under the current commitments. A
    // commitment that locks operations exactly at their provisional
    // starts with unchanged timing leaves `pasap_locked`'s greedy output
    // unchanged (locked reservations are placed where the greedy itself
    // put them, and placement order is timing-determined), so the
    // schedule is only recomputed when a commit actually displaced an
    // operation or changed its module timing — the "dirty" commits.
    let mut provisional = {
        let _span = pchls_obs::span!("fds.refit");
        pasap_locked_budget(graph, &timing, &budget, constraints.latency, &locked)
            .map_err(|cause| SynthesisError::Infeasible { cause })?
    };
    let mut dirty = false;

    while unbound_count > 0 {
        // Progress/cancel hook: one event per greedy iteration. `None`
        // (every batch/sweep path) costs nothing.
        if let Some(h) = hook.as_deref_mut() {
            let snapshot = Progress {
                bound_ops: n - unbound_count,
                total_ops: n,
                backtracks: stats.backtracks,
                rejected_candidates: stats.rejected_candidates,
            };
            if h(snapshot).is_break() {
                return Err(SynthesisError::Cancelled);
            }
        }
        if dirty {
            let _span = pchls_obs::span!("fds.refit");
            provisional =
                pasap_locked_budget(graph, &timing, &budget, constraints.latency, &locked)
                    .map_err(|cause| SynthesisError::Infeasible { cause })?;
            dirty = false;
        }
        // The soft deadlines must track every lock, so the reversed
        // heuristic is recomputed each iteration. It can fail where the
        // forward one succeeded; fall back to zero mobility (late =
        // early, the provisional schedule itself), which is always safe
        // — borrowed, not cloned.
        let palap = {
            let _span = pchls_obs::span!("fds.palap");
            palap_locked_budget(graph, &timing, &budget, constraints.latency, &locked).ok()
        };
        let late = palap.as_ref().unwrap_or(&provisional);

        scratch.unbound_vec.clear();
        scratch.unbound_vec.extend(unbound.iter());
        // Candidate scoring fans out across the worker pool only when
        // the iteration is wide enough to amortize the spawn and a
        // fan-out would actually happen (single-worker hosts and nested
        // sweep workers stay on the buffer-free serial shape); both
        // paths produce bit-identical decisions (see
        // `enumerate_candidates`).
        let parallel = scratch.unbound_vec.len() >= PAR_MIN_OPS
            && pchls_par::would_parallelize(scratch.unbound_vec.len());

        instance_busy_into(&binding, &locked, &timing, &mut scratch.busy);
        // Open instances bucketed by module (ascending instance id per
        // row), so a candidate (op, module) only visits the instances it
        // could actually merge onto.
        for row in &mut scratch.by_module {
            row.clear();
        }
        for iid in binding.instance_ids() {
            scratch.by_module[binding.instance(iid).module().index()].push(iid);
        }
        // Replay alignment: `Some` names the recorded iteration to gate
        // this one against; `None` means replay fell back to the cold
        // path for the rest of the run (or the mode never replays).
        let gated = match &mut mode {
            KernelMode::Replay(rs) => rs.align(&unbound),
            _ => None,
        };
        if let KernelMode::Record(memo) = &mut mode {
            // Snapshot everything the replay-side quiet test compares —
            // taken here, after the per-iteration buffers are rebuilt
            // and before any candidate attempt mutates state.
            memo.begin_iteration(
                &provisional,
                late,
                &locked,
                &timing,
                &ledger,
                &unbound,
                &binding,
                &scratch.by_module,
                constraints.latency,
            );
        }
        let mut ctx = Context {
            graph,
            library,
            options,
            reach,
            compiled,
            timing: &timing,
            est_modules: &est_modules,
            kind_modules,
            binding: &binding,
            locked: &locked,
            ledger: &ledger,
            busy: &scratch.busy,
            by_module: &scratch.by_module,
            kind_compat,
            provisional: &provisional,
            late,
            constraints,
            peak_power: constraints.max_power(),
            start0: std::mem::take(&mut scratch.start0),
            avoided: std::mem::take(&mut scratch.avoided),
        };
        if gated.is_some() {
            let KernelMode::Replay(rs) = &mut mode else {
                unreachable!("gated iterations only arise in replay mode")
            };
            let rs = &mut **rs;
            // Gated iteration: trust the memo for every quiet operation
            // (scores copied, not recomputed) and evaluate only the hot
            // cone fresh. Attempts still run for real — state mutations,
            // feasibility probes and effort counters are identical to
            // the cold path by construction.
            let plan = {
                let mut patch_span = pchls_obs::span!("kernel.patch");
                let plan =
                    plan_gated_iteration(rs, &mut ctx, &scratch.unbound_vec, unbound.words());
                patch_span.arg("hot", plan.hot_ops);
                plan
            };
            scratch.start0 = std::mem::take(&mut ctx.start0);
            scratch.avoided = std::mem::take(&mut ctx.avoided);
            drop(ctx);
            let mut commit_span = pchls_obs::span!("kernel.commit");
            let mut attempts = 0u64;
            let mut outcome = run_attempts(
                plan.entries.iter(),
                graph,
                library,
                constraints,
                &budget,
                &provisional,
                &mut binding,
                &mut locked,
                &mut timing,
                &mut ledger,
                &mut unbound,
                &mut unbound_count,
                &mut stats,
                &mut dirty,
                &mut attempts,
            );
            if outcome.is_none() && !plan.exhaustive {
                // The replayed stream was truncated at the recorded
                // trust bound without committing: re-enumerate the whole
                // iteration cold and continue past the already-attempted
                // prefix (every undo restored state bit-exactly, and the
                // busy/bucket scratch rows are iteration-start snapshots
                // the attempts never touch). Repeated extensions mean
                // the memo no longer predicts this run — `align` bails
                // to the cold path after a few.
                rs.extensions += 1;
                let mut ctx = Context {
                    graph,
                    library,
                    options,
                    reach,
                    compiled,
                    timing: &timing,
                    est_modules: &est_modules,
                    kind_modules,
                    binding: &binding,
                    locked: &locked,
                    ledger: &ledger,
                    busy: &scratch.busy,
                    by_module: &scratch.by_module,
                    kind_compat,
                    provisional: &provisional,
                    late,
                    constraints,
                    peak_power: constraints.max_power(),
                    start0: std::mem::take(&mut scratch.start0),
                    avoided: std::mem::take(&mut scratch.avoided),
                };
                {
                    let mut score_span = pchls_obs::span!("kernel.score");
                    ctx.precompute_tables(&scratch.unbound_vec, parallel);
                    scratch.candidates.clear();
                    enumerate_candidates(
                        &ctx,
                        &scratch.unbound_vec,
                        unbound.words(),
                        parallel,
                        &mut scratch.candidates,
                        &mut scratch.pairs,
                    );
                    score_span.arg("candidates", scratch.candidates.len());
                }
                scratch.start0 = std::mem::take(&mut ctx.start0);
                scratch.avoided = std::mem::take(&mut ctx.avoided);
                drop(ctx);
                let candidates: &[Decision] = &scratch.candidates;
                let cmp = |&x: &u32, &y: &u32| {
                    let (a, b) = (&candidates[x as usize], &candidates[y as usize]);
                    b.score
                        .partial_cmp(&a.score)
                        .expect("scores are finite")
                        .then(a.start.cmp(&b.start))
                        .then(a.op.cmp(&b.op))
                        .then(x.cmp(&y))
                };
                let order: &[u32] = {
                    let _span = pchls_obs::span!("kernel.topk");
                    scratch.top.clear();
                    for i in 0..candidates.len() as u32 {
                        scratch.top.push(i, cmp);
                    }
                    scratch.top.sorted(cmp)
                };
                let skip = attempts as usize;
                debug_assert!(
                    plan.entries
                        .iter()
                        .zip(order.iter())
                        .all(|(e, &i)| *e == candidates[i as usize]),
                    "replayed candidate prefix diverged from the cold ranking"
                );
                outcome = run_attempts(
                    order.iter().skip(skip).map(|&i| &candidates[i as usize]),
                    graph,
                    library,
                    constraints,
                    &budget,
                    &provisional,
                    &mut binding,
                    &mut locked,
                    &mut timing,
                    &mut ledger,
                    &mut unbound,
                    &mut unbound_count,
                    &mut stats,
                    &mut dirty,
                    &mut attempts,
                );
            }
            commit_span.arg("attempts", attempts);
            drop(commit_span);
            if outcome.is_none() {
                backtrack_all(
                    graph,
                    &timing,
                    constraints,
                    &budget,
                    options,
                    &scratch.unbound_vec,
                    &provisional,
                    &mut locked,
                    &mut ledger,
                    &mut stats,
                )?;
                // A backtrack invalidates every later recorded
                // iteration (recording stops at the first backtrack);
                // finish the run on the cold path.
                rs.full = true;
            }
        } else {
            {
                let mut score_span = pchls_obs::span!("kernel.score");
                ctx.precompute_tables(&scratch.unbound_vec, parallel);
                scratch.candidates.clear();
                enumerate_candidates(
                    &ctx,
                    &scratch.unbound_vec,
                    unbound.words(),
                    parallel,
                    &mut scratch.candidates,
                    &mut scratch.pairs,
                );
                score_span.arg("candidates", scratch.candidates.len());
            }
            if let KernelMode::Record(memo) = &mut mode {
                memo.record_tables(&ctx.start0, &ctx.avoided);
            }
            // Hand the score tables back for the next iteration and release
            // every `ctx` borrow before the commit loop mutates state.
            scratch.start0 = std::mem::take(&mut ctx.start0);
            scratch.avoided = std::mem::take(&mut ctx.avoided);
            drop(ctx);
            let candidates: &[Decision] = &scratch.candidates;
            // Deterministic order: best score first, then earlier start, then
            // smaller op id, then enumeration index — the index makes the
            // comparison a *total* order, so the kept top-k set is unique
            // and the bounded heap below equals a stable full sort truncated
            // to `MAX_ATTEMPTS`. One pass, one persistent buffer: each
            // also-ran candidate costs a single comparison against the
            // heap's worst kept entry.
            let cmp = |&x: &u32, &y: &u32| {
                let (a, b) = (&candidates[x as usize], &candidates[y as usize]);
                b.score
                    .partial_cmp(&a.score)
                    .expect("scores are finite")
                    .then(a.start.cmp(&b.start))
                    .then(a.op.cmp(&b.op))
                    .then(x.cmp(&y))
            };
            let order: &[u32] = {
                let _span = pchls_obs::span!("kernel.topk");
                scratch.top.clear();
                for i in 0..candidates.len() as u32 {
                    scratch.top.push(i, cmp);
                }
                scratch.top.sorted(cmp)
            };
            if let KernelMode::Record(memo) = &mut mode {
                memo.record_top(order, candidates, &scratch.by_module, kind_modules, graph);
            }

            // Try candidates best-first; a candidate commits only if the
            // remaining operations still admit a power-feasible schedule (the
            // paper's feasibility check). Rejected candidates are undone and
            // skipped; attempts are capped so a pathological iteration stays
            // cheap.
            let mut commit_span = pchls_obs::span!("kernel.commit");
            let mut attempts = 0u64;
            let committed = run_attempts(
                order.iter().map(|&i| &candidates[i as usize]),
                graph,
                library,
                constraints,
                &budget,
                &provisional,
                &mut binding,
                &mut locked,
                &mut timing,
                &mut ledger,
                &mut unbound,
                &mut unbound_count,
                &mut stats,
                &mut dirty,
                &mut attempts,
            );
            commit_span.arg("attempts", attempts);
            drop(commit_span);
            if let KernelMode::Record(memo) = &mut mode {
                match committed {
                    Some(d) => memo.commit_iteration(
                        d.op,
                        match d.target {
                            Target::FreshPair { partner, .. } => Some(partner),
                            _ => None,
                        },
                    ),
                    // A backtracked iteration ends the usable recording:
                    // replays go cold from here (see `ReplayState`).
                    None => memo.abort_recording(),
                }
            }
            if committed.is_none() {
                backtrack_all(
                    graph,
                    &timing,
                    constraints,
                    &budget,
                    options,
                    &scratch.unbound_vec,
                    &provisional,
                    &mut locked,
                    &mut ledger,
                    &mut stats,
                )?;
            }
        }
    }

    // All operations bound and locked: the locked schedule is final.
    let final_schedule = if dirty {
        let _span = pchls_obs::span!("fds.refit");
        pasap_locked_budget(graph, &timing, &budget, constraints.latency, &locked)
            .map_err(SynthesisError::Schedule)?
    } else {
        provisional
    };
    binding.prune_empty();
    let mut design = SynthesizedDesign::assemble(
        final_schedule,
        timing,
        binding,
        library,
        constraints.clone(),
    );
    design.stats = stats;
    design.validate(graph, library)?;
    Ok(design)
}

/// Whether a just-applied decision is guaranteed not to invalidate the
/// provisional schedule: every operation it locked sits exactly at its
/// provisional start with its timing unchanged.
fn is_clean(cand: &Decision, saved: &Saved, provisional: &Schedule) -> bool {
    let unchanged = |op: NodeId, start: u32, before: OpTiming, after: OpTiming| {
        start == provisional.start(op) && before.delay == after.delay && before.power == after.power
    };
    let op_clean = unchanged(cand.op, cand.start, saved.op_timing, saved.applied_timing);
    match cand.target {
        Target::FreshPair {
            partner,
            partner_start,
        } => {
            op_clean
                && saved
                    .partner_timing
                    .map(|(_, before)| {
                        unchanged(partner, partner_start, before, saved.applied_timing)
                    })
                    .unwrap_or(false)
        }
        _ => op_clean,
    }
}

/// Attempts candidates best-first until one commits: apply, prove
/// feasibility (fast-path for clean commits), keep or undo — the loop
/// body shared verbatim by the cold and gated (replay) paths, so both
/// produce identical state mutations and effort counters.
#[allow(clippy::too_many_arguments)]
fn run_attempts<'d>(
    cands: impl Iterator<Item = &'d Decision>,
    graph: &Cdfg,
    library: &ModuleLibrary,
    constraints: &SynthesisConstraints,
    budget: &pchls_sched::PowerBudget,
    provisional: &Schedule,
    binding: &mut Binding,
    locked: &mut LockedStarts,
    timing: &mut TimingMap,
    ledger: &mut PowerLedger,
    unbound: &mut NodeSet,
    unbound_count: &mut usize,
    stats: &mut SynthesisStats,
    dirty: &mut bool,
    attempts: &mut u64,
) -> Option<Decision> {
    for cand in cands {
        *attempts += 1;
        let saved = saved_state(cand, library, timing, locked, ledger);
        apply(cand, library, binding, locked, timing, ledger, &saved);
        // A candidate that locks its operation(s) exactly at their
        // provisional starts with unchanged timing cannot invalidate
        // the provisional schedule — it is feasible by construction
        // and the expensive re-schedule is skipped.
        let clean = is_clean(cand, &saved, provisional);
        let feasible = clean
            || pasap_locked_budget(graph, timing, budget, constraints.latency, locked).is_ok();
        if feasible {
            unbound.remove(cand.op);
            *unbound_count -= 1;
            stats.decisions += 1;
            if let Target::FreshPair { partner, .. } = cand.target {
                unbound.remove(partner);
                *unbound_count -= 1;
                stats.decisions += 1;
            }
            if clean {
                stats.fast_commits += 1;
            } else {
                *dirty = true;
            }
            return Some(*cand);
        }
        undo(cand, binding, locked, timing, ledger, &saved);
        stats.rejected_candidates += 1;
    }
    None
}

/// Every candidate stranded the remaining operations. The paper's
/// repair: backtrack (all failed decisions are already undone) and lock
/// every unscheduled operation to the last valid pasap schedule, then
/// continue with binding-only decisions. Locks land exactly at
/// provisional starts, so the provisional schedule remains valid (not
/// dirty).
#[allow(clippy::too_many_arguments)]
fn backtrack_all(
    graph: &Cdfg,
    timing: &TimingMap,
    constraints: &SynthesisConstraints,
    budget: &pchls_sched::PowerBudget,
    options: &SynthesisOptions,
    unbound_vec: &[NodeId],
    provisional: &Schedule,
    locked: &mut LockedStarts,
    ledger: &mut PowerLedger,
    stats: &mut SynthesisStats,
) -> Result<(), SynthesisError> {
    if !options.backtracking {
        return Err(SynthesisError::Infeasible {
            cause: ScheduleError::Infeasible {
                node: unbound_vec[0],
                horizon: constraints.latency,
                max_power: constraints.max_power(),
            },
        });
    }
    for &v in unbound_vec {
        locked.lock(v, provisional.start(v));
    }
    // Rebuild the ledger from the full locked set (the newly locked
    // operations were not reserved incrementally).
    *ledger = locked_ledger(graph, timing, locked, constraints.latency, budget)?;
    stats.backtracks += 1;
    Ok(())
}

/// Minimum unbound-op count at which one scoring iteration fans out
/// across the worker pool: below this the per-iteration thread spawn
/// costs more than the (identical) serial pass.
const PAR_MIN_OPS: usize = 24;

/// Candidate attempts per iteration: commits are tried best-first and a
/// pathological iteration must stay cheap.
pub(crate) const MAX_ATTEMPTS: usize = 64;

/// Read-only state shared by the candidate enumeration helpers, plus
/// per-iteration score tables (every tabulated quantity depends only on
/// state that is fixed for the whole enumeration pass, so the tables are
/// filled up-front — in parallel on wide iterations — and the scoring
/// context stays `Sync` for the fan-out).
pub(crate) struct Context<'a> {
    pub(crate) graph: &'a Cdfg,
    pub(crate) library: &'a ModuleLibrary,
    pub(crate) options: &'a SynthesisOptions,
    pub(crate) reach: &'a Reachability,
    /// Source of the compiled kind-compat node masks (see
    /// [`Context::compat_row`]).
    pub(crate) compiled: &'a CompiledGraph,
    pub(crate) timing: &'a TimingMap,
    pub(crate) est_modules: &'a [ModuleId],
    /// Per-kind module candidate lists, indexed by [`OpKind::index`].
    pub(crate) kind_modules: &'a [Vec<ModuleId>],
    pub(crate) binding: &'a Binding,
    pub(crate) locked: &'a LockedStarts,
    pub(crate) ledger: &'a PowerLedger,
    pub(crate) busy: &'a [Vec<(u32, u32)>],
    /// Open instances per library module, ascending instance id.
    pub(crate) by_module: &'a [Vec<InstanceId>],
    /// `kind_compat[a][b]`: some module implements both kinds.
    pub(crate) kind_compat: &'a KindCompat,
    pub(crate) provisional: &'a Schedule,
    pub(crate) late: &'a Schedule,
    pub(crate) constraints: &'a SynthesisConstraints,
    /// Cached `constraints.max_power()` — the peak per-cycle bound any
    /// cycle can see (the bound itself for scalar constraints).
    pub(crate) peak_power: f64,
    /// Tabulated `candidate_start(op, m, 0)`, flattened as
    /// `op.index() * library.len() + m.index()`; filled for every unbound
    /// op over its kind's candidate modules (the only entries scoring
    /// reads). The pair-merge loop queries these O(n²·modules) times for
    /// only O(n·modules) distinct answers.
    pub(crate) start0: Vec<Option<u32>>,
    /// Tabulated [`Context::avoided_area`] per unbound operation.
    pub(crate) avoided: Vec<f64>,
}

/// The per-cycle power already reserved by locked operations.
fn locked_ledger(
    graph: &Cdfg,
    timing: &TimingMap,
    locked: &LockedStarts,
    latency: u32,
    budget: &pchls_sched::PowerBudget,
) -> Result<PowerLedger, SynthesisError> {
    let mut ledger = PowerLedger::with_budget(latency, budget);
    for id in graph.node_ids() {
        if let Some(s) = locked.get(id) {
            let t = timing.of(id);
            if !ledger.fits(s, t.delay, t.power) {
                // As in `pasap`'s locked pass: name the cycle that
                // actually rejects the reservation, not the interval's
                // start (they differ under an envelope).
                let v = ledger
                    .first_unfit_cycle(s, t.delay, t.power)
                    .expect("fits just failed");
                return Err(SynthesisError::Schedule(ScheduleError::PowerExceeded {
                    cycle: v,
                    power: ledger.used(v) + t.power,
                    bound: ledger.bound(v),
                }));
            }
            ledger.reserve(s, t.delay, t.power);
        }
    }
    Ok(ledger)
}

/// Busy intervals of each instance (bound ops are always locked),
/// rebuilt into `busy` — rows are cleared and reused, not reallocated.
fn instance_busy_into(
    binding: &Binding,
    locked: &LockedStarts,
    timing: &TimingMap,
    busy: &mut Vec<Vec<(u32, u32)>>,
) {
    let count = binding.instance_ids().count();
    busy.truncate(count);
    for row in busy.iter_mut() {
        row.clear();
    }
    busy.resize_with(count, Vec::new);
    for iid in binding.instance_ids() {
        let row = &mut busy[iid.index()];
        for &op in binding.instance(iid).ops() {
            let s = locked.get(op).expect("bound ops are locked");
            row.push((s, s + timing.delay(op)));
        }
    }
}

/// Per-call work buffers for the greedy iteration loop, `clear()`ed and
/// refilled each iteration instead of reallocated — the iteration loop
/// runs `n/2`–`n` times per synthesize call, so the rebuilt-vec churn
/// (ids, busy rows, module buckets, candidates, score tables, ranking)
/// used to dominate small-point allocations.
struct Scratch {
    /// Unbound ops in ascending id order (the scoring iteration order).
    unbound_vec: Vec<NodeId>,
    /// Busy intervals per instance, indexed by instance id.
    busy: Vec<Vec<(u32, u32)>>,
    /// Open instances per library module, ascending instance id.
    by_module: Vec<Vec<InstanceId>>,
    /// The iteration's enumerated decisions.
    candidates: Vec<Decision>,
    /// Pair-merge work list (parallel enumeration only).
    pairs: Vec<(NodeId, NodeId)>,
    /// Bounded best-`MAX_ATTEMPTS` ranking over candidate indices.
    top: TopK<u32>,
    /// `Context::start0` score table, handed back after each iteration.
    start0: Vec<Option<u32>>,
    /// `Context::avoided` score table, handed back after each iteration.
    avoided: Vec<f64>,
}

impl Scratch {
    fn new(lib_len: usize) -> Scratch {
        Scratch {
            unbound_vec: Vec::new(),
            busy: Vec::new(),
            by_module: vec![Vec::new(); lib_len],
            candidates: Vec::new(),
            pairs: Vec::new(),
            top: TopK::new(MAX_ATTEMPTS),
            start0: Vec::new(),
            avoided: Vec::new(),
        }
    }
}

impl Context<'_> {
    /// Fills the `start0`/`avoided` score tables for the unbound
    /// operations, fanning the per-op rows across the worker pool on
    /// wide iterations (each row is an independent pure function of the
    /// iteration-fixed state, and [`pchls_par::par_map`] preserves input
    /// order, so the tables are bit-identical to a serial fill).
    fn precompute_tables(&mut self, unbound: &[NodeId], parallel: bool) {
        let lib_len = self.library.len();
        // The tables live in the caller's scratch between iterations:
        // clear + resize reuses their capacity while resetting every
        // entry (only unbound rows are ever read, and those are all
        // rewritten below).
        let mut start0 = std::mem::take(&mut self.start0);
        start0.clear();
        start0.resize(self.graph.len() * lib_len, None);
        if parallel {
            let rows: Vec<Vec<(ModuleId, Option<u32>)>> = pchls_par::par_map(unbound, |&u| {
                self.kind_list(u)
                    .iter()
                    .map(|&m| (m, self.candidate_start(u, m, 0)))
                    .collect()
            });
            for (&u, row) in unbound.iter().zip(&rows) {
                for &(m, s) in row {
                    start0[u.index() * lib_len + m.index()] = s;
                }
            }
        } else {
            // Narrow iteration: fill in place, no per-op row buffers.
            for &u in unbound {
                for &m in self.kind_list(u) {
                    start0[u.index() * lib_len + m.index()] = self.candidate_start(u, m, 0);
                }
            }
        }
        let mut avoided = std::mem::take(&mut self.avoided);
        avoided.clear();
        avoided.resize(self.graph.len(), 0.0);
        for &u in unbound {
            let row = self.kind_list(u);
            // Area of the cheapest library module that could *feasibly*
            // execute `u` in the current state — the unit a successful
            // merge avoids opening. Feasibility matters: when the latency
            // bound rules the serial multiplier out for an operation,
            // merging it onto a parallel multiplier avoids a 339-area
            // unit, not a 103-area one.
            avoided[u.index()] = row
                .iter()
                .filter(|&&m| start0[u.index() * lib_len + m.index()].is_some())
                .map(|&m| self.library.module(m).area())
                .min()
                .or_else(|| {
                    // Nothing currently fits (rare, mid-backtrack): fall
                    // back to the global cheapest so scoring stays total.
                    row.iter().map(|&m| self.library.module(m).area()).min()
                })
                .map(f64::from)
                .expect("library coverage checked at bootstrap");
        }
        self.start0 = start0;
        self.avoided = avoided;
    }

    /// The candidate modules of `op`'s kind.
    pub(crate) fn kind_list(&self, op: NodeId) -> &[ModuleId] {
        &self.kind_modules[self.graph.node(op).kind().index()]
    }

    /// Compiled node-mask row of `op`'s kind: bit `j` set iff some
    /// module implements both `op`'s kind and node `j`'s kind. ANDed
    /// against the unbound bitset this yields exactly the partners
    /// `pair_decisions` would not reject on kind grounds.
    pub(crate) fn compat_row(&self, op: NodeId) -> &[u64] {
        self.compiled.compat_row(self.graph.node(op).kind())
    }

    /// Tabulated avoided area of `op` (unbound ops only).
    pub(crate) fn avoided_area(&self, op: NodeId) -> f64 {
        self.avoided[op.index()]
    }

    /// Tabulated `candidate_start(op, m, 0)` — the form every scoring
    /// path asks for repeatedly. Valid for unbound `op` and any `m`
    /// implementing its kind.
    pub(crate) fn candidate_start0(&self, op: NodeId, m: ModuleId) -> Option<u32> {
        self.start0[op.index() * self.library.len() + m.index()]
    }

    /// The earliest feasible start for `op` executed on module `m`, no
    /// earlier than `not_before`. Respects the power ledger, the
    /// palap-estimated deadline (softened so the provisional slot always
    /// qualifies), locked direct successors, and — for locked ops — the
    /// fixed slot and timing.
    pub(crate) fn candidate_start(&self, op: NodeId, m: ModuleId, not_before: u32) -> Option<u32> {
        let spec = self.library.module(m);
        if let Some(s) = self.locked.get(op) {
            let cur = self.timing.of(op);
            if spec.latency() != cur.delay || (spec.power() - cur.power).abs() > 1e-9 {
                return None; // reservation coherence
            }
            return (s >= not_before).then_some(s);
        }
        let delay = spec.latency();
        let power = spec.power();
        if power > self.peak_power + 1e-9 {
            return None;
        }
        let ready = self
            .graph
            .operands(op)
            .iter()
            .map(|&p| self.provisional.start(p) + self.timing.delay(p))
            .max()
            .unwrap_or(0)
            .max(not_before);
        // Soft palap deadline: never tighter than the provisional slot.
        let soft_deadline = (self.late.start(op) + self.timing.delay(op))
            .max(self.provisional.start(op) + self.timing.delay(op));
        // Hard bounds: the latency constraint and locked successors.
        let deadline = self
            .graph
            .successors(op)
            .iter()
            .filter_map(|&s| self.locked.get(s))
            .min()
            .unwrap_or(u32::MAX)
            .min(soft_deadline)
            .min(self.constraints.latency);
        // Deadline-bounded offset search on the ledger (log-time skips,
        // identical result to the old cycle-by-cycle scan).
        self.ledger.earliest_fit_by(ready, delay, power, deadline)
    }

    /// Interconnect bonus: shared operand producers / result consumers.
    pub(crate) fn interconnect(&self, u: NodeId, others: &[NodeId]) -> f64 {
        if !self.options.interconnect_scoring {
            return 0.0;
        }
        let mut shared = 0usize;
        for &v in others {
            shared += self
                .graph
                .operands(u)
                .iter()
                .filter(|p| self.graph.operands(v).contains(p))
                .count();
            shared += self
                .graph
                .successors(u)
                .iter()
                .filter(|c| self.graph.successors(v).contains(c))
                .count();
        }
        shared as f64 * self.options.weights.interconnect
    }

    /// Modules allowed for `op` under the ablation switches (borrowed —
    /// no per-query allocation).
    pub(crate) fn modules_for(&self, op: NodeId) -> &[ModuleId] {
        if self.options.module_selection {
            self.kind_list(op)
        } else {
            std::slice::from_ref(&self.est_modules[op.index()])
        }
    }
}

/// Enumerates every feasible decision for the unbound operations into
/// `out` (cleared by the caller; `pair_buf` is the parallel path's
/// reusable work-list buffer).
///
/// Pair partners come from a word walk, not a nested scan: for each
/// unbound `u`, `unbound ∧ compat_row(kind(u)) ∧ (id > u)` is two
/// word-`AND`s walked with `trailing_zeros` ([`iter_and_above`]). The
/// surviving ids are exactly the partners the scalar `v`-loop would
/// have fed `pair_decisions` that pass its kind-compatibility
/// early-return, in the same ascending order — dropped pairs produced
/// no decisions, so enumeration indices (and the trace) are unchanged.
///
/// Scoring is embarrassingly parallel over a *deterministic* work list:
/// one item per unbound op (its existing-instance merges and dedicated
/// fallback) followed by one per surviving pair.
/// [`pchls_par::par_map`] preserves item order, each item's decisions
/// are generated in the same inner order as the serial loops, and the
/// caller's ranking is stable over this enumeration index — a fixed
/// `(score, start, op, enumeration index)` total order — so the
/// committed decision, and therefore the whole synthesis trace, is
/// bit-identical to a serial run regardless of thread count.
fn enumerate_candidates(
    ctx: &Context<'_>,
    unbound_vec: &[NodeId],
    unbound_words: &[u64],
    parallel: bool,
    out: &mut Vec<Decision>,
    pair_buf: &mut Vec<(NodeId, NodeId)>,
) {
    if !parallel {
        // Narrow iteration: one shared output vector, no per-item
        // buffers — the allocation profile of the fully serial loops.
        for &u in unbound_vec {
            single_decisions(ctx, u, out);
        }
        for &u in unbound_vec {
            for v in iter_and_above(unbound_words, ctx.compat_row(u), u.index()) {
                pair_decisions(ctx, u, v, out);
            }
        }
        return;
    }

    let singles = pchls_par::par_map(unbound_vec, |&u| {
        let mut items = Vec::new();
        single_decisions(ctx, u, &mut items);
        items
    });
    // (2) Pair merges: two unbound operations opening one shared unit,
    // work list built by the same word walk as the serial loop.
    pair_buf.clear();
    for &u in unbound_vec {
        for v in iter_and_above(unbound_words, ctx.compat_row(u), u.index()) {
            pair_buf.push((u, v));
        }
    }
    let paired = pchls_par::par_map(pair_buf, |&(u, v)| {
        let mut items = Vec::new();
        pair_decisions(ctx, u, v, &mut items);
        items
    });

    out.extend(singles.into_iter().chain(paired).flatten());
}

/// Appends the decisions binding one unbound operation on its own:
/// merges onto each compatible existing instance, plus the
/// dedicated-instance fallback, in the serial enumeration order.
fn single_decisions(ctx: &Context<'_>, u: NodeId, out: &mut Vec<Decision>) {
    for &m in ctx.modules_for(u) {
        // (1) Merge onto an existing instance: earliest start at which
        // the instance is free and power fits. Starting later than the
        // op's free earliest start consumes schedule slack and is
        // penalized (see `CostWeights::displacement`).
        for &iid in &ctx.by_module[m.index()] {
            if let Some(d) = existing_decision(ctx, u, m, iid) {
                out.push(d);
            }
        }
        // (3) Dedicated instance (fallback).
        if let Some(d) = fresh_decision(ctx, u, m) {
            out.push(d);
        }
    }
}

/// The decision merging unbound `u` onto existing instance `iid` of
/// module `m`, if it fits.
pub(crate) fn existing_decision(
    ctx: &Context<'_>,
    u: NodeId,
    m: ModuleId,
    iid: InstanceId,
) -> Option<Decision> {
    let s = earliest_instance_fit(ctx, u, m, iid)?;
    let free_start = ctx.candidate_start0(u, m);
    let displaced = f64::from(s - free_start.expect("fit implies a free start"));
    let inst = ctx.binding.instance(iid);
    // The +1 bonus breaks ties against pair merges: growing an existing
    // clique saves one unit per *one* operation consumed, a pair saves
    // one unit per two — without the bonus the greedy fragments large
    // op classes into many two-op instances.
    Some(Decision {
        op: u,
        module: m,
        start: s,
        target: Target::Existing(iid),
        score: ctx.options.weights.area * ctx.avoided_area(u) + ctx.interconnect(u, inst.ops())
            - ctx.options.weights.displacement * displaced
            + 1.0,
    })
}

/// The decision opening a dedicated instance of module `m` for `u`, if
/// a power-feasible start exists.
pub(crate) fn fresh_decision(ctx: &Context<'_>, u: NodeId, m: ModuleId) -> Option<Decision> {
    let s = ctx.candidate_start0(u, m)?;
    let area = f64::from(ctx.library.module(m).area());
    Some(Decision {
        op: u,
        module: m,
        start: s,
        target: Target::Fresh,
        score: -ctx.options.weights.area * area,
    })
}

/// Appends the pair-merge decisions for one unordered pair of unbound
/// operations, in the serial enumeration order.
fn pair_decisions(ctx: &Context<'_>, u: NodeId, v: NodeId, out: &mut Vec<Decision>) {
    // Kind-incompatible pairs (no module covers both kinds) are already
    // dropped by the callers' compat-mask word walk.
    debug_assert!(
        ctx.kind_compat[ctx.graph.node(u).kind().index()][ctx.graph.node(v).kind().index()],
        "pair enumeration fed a kind-incompatible pair"
    );
    // Serialize in dependence order if one exists.
    let (first, second) = if ctx.reach.reaches(v, u) {
        (v, u)
    } else {
        (u, v)
    };
    for &m in ctx.modules_for(first) {
        if let Some(d) = pair_decision(ctx, first, second, m) {
            out.push(d);
        }
    }
}

/// The decision opening one shared instance of module `m` for the
/// dependence-ordered pair `(first, second)`, if the merge is
/// profitable and feasible.
pub(crate) fn pair_decision(
    ctx: &Context<'_>,
    first: NodeId,
    second: NodeId,
    m: ModuleId,
) -> Option<Decision> {
    let spec = ctx.library.module(m);
    if !spec.implements(ctx.graph.node(second).kind()) {
        return None;
    }
    let gain = ctx.avoided_area(first) + ctx.avoided_area(second) - f64::from(spec.area());
    if gain <= 0.0 {
        return None; // two dedicated cheapest units are no worse
    }
    let s1 = ctx.candidate_start0(first, m)?;
    let s2_free = ctx.candidate_start0(second, m)?;
    let s2 = ctx.candidate_start(second, m, s1 + spec.latency())?;
    // Dependence-ordered pairs serialize for free (s2 at its natural
    // slot); concurrent siblings pay for the slack their serialization
    // consumes.
    let displaced = f64::from(s2 - s2_free);
    Some(Decision {
        op: first,
        module: m,
        start: s1,
        target: Target::FreshPair {
            partner: second,
            partner_start: s2,
        },
        score: ctx.options.weights.area * gain + ctx.interconnect(first, &[second])
            - ctx.options.weights.displacement * displaced,
    })
}

/// Earliest start at which `u` can execute on instance `iid` of module
/// `m`: power-feasible and not overlapping the instance's busy intervals.
fn earliest_instance_fit(
    ctx: &Context<'_>,
    u: NodeId,
    m: ModuleId,
    iid: InstanceId,
) -> Option<u32> {
    let delay = ctx.library.module(m).latency();
    let busy = &ctx.busy[iid.index()];
    let mut s = ctx.candidate_start0(u, m)?;
    loop {
        // First busy interval overlapping [s, s+delay), if any.
        match busy
            .iter()
            .filter(|&&(bs, bf)| s < bf && bs < s + delay)
            .map(|&(_, bf)| bf)
            .max()
        {
            None => return Some(s),
            Some(resume) => {
                // Skip past the collision and re-check power/deadline.
                s = ctx.candidate_start(u, m, resume)?;
            }
        }
    }
}

/// State saved for undoing a decision: previous timing entries, previous
/// lock state, and bit-exact ledger snapshots of the touched cycles.
struct Saved {
    op_timing: OpTiming,
    /// Timing written by `apply` (the module spec's delay/power).
    applied_timing: OpTiming,
    /// Whether the op was already locked (then its power is already in
    /// the ledger and must be neither re-reserved nor released).
    op_was_locked: bool,
    partner_timing: Option<(NodeId, OpTiming)>,
    partner_was_locked: bool,
    /// `(start, previous ledger values)` for every interval reserved by
    /// `apply`, restored verbatim on undo.
    ledger_rows: Vec<(u32, Vec<f64>)>,
}

fn saved_state(
    cand: &Decision,
    library: &ModuleLibrary,
    timing: &TimingMap,
    locked: &LockedStarts,
    ledger: &PowerLedger,
) -> Saved {
    let spec = library.module(cand.module);
    // The timing `apply` will write — snapshots must cover the interval
    // that gets reserved, which uses the *new* module's latency.
    let applied_timing = OpTiming {
        delay: spec.latency(),
        power: spec.power(),
    };
    let mut ledger_rows = Vec::with_capacity(2);
    let op_was_locked = locked.is_locked(cand.op);
    if !op_was_locked {
        ledger_rows.push((
            cand.start,
            ledger.snapshot(cand.start, applied_timing.delay),
        ));
    }
    let (partner_timing, partner_was_locked) = match cand.target {
        Target::FreshPair {
            partner,
            partner_start,
        } => {
            let was = locked.is_locked(partner);
            if !was {
                ledger_rows.push((
                    partner_start,
                    ledger.snapshot(partner_start, applied_timing.delay),
                ));
            }
            (Some((partner, timing.of(partner))), was)
        }
        _ => (None, false),
    };
    Saved {
        op_timing: timing.of(cand.op),
        applied_timing,
        op_was_locked,
        partner_timing,
        partner_was_locked,
        ledger_rows,
    }
}

fn apply(
    cand: &Decision,
    library: &ModuleLibrary,
    binding: &mut Binding,
    locked: &mut LockedStarts,
    timing: &mut TimingMap,
    ledger: &mut PowerLedger,
    saved: &Saved,
) {
    let spec = library.module(cand.module);
    let t = OpTiming {
        delay: spec.latency(),
        power: spec.power(),
    };
    timing.set(cand.op, t);
    locked.lock(cand.op, cand.start);
    if !saved.op_was_locked {
        ledger.reserve(cand.start, t.delay, t.power);
    }
    match cand.target {
        Target::Existing(i) => binding.bind(cand.op, i),
        Target::Fresh => {
            let i = binding.new_instance(cand.module);
            binding.bind(cand.op, i);
        }
        Target::FreshPair {
            partner,
            partner_start,
        } => {
            let i = binding.new_instance(cand.module);
            binding.bind(cand.op, i);
            timing.set(partner, t);
            locked.lock(partner, partner_start);
            if !saved.partner_was_locked {
                ledger.reserve(partner_start, t.delay, t.power);
            }
            binding.bind(partner, i);
        }
    }
}

fn undo(
    cand: &Decision,
    binding: &mut Binding,
    locked: &mut LockedStarts,
    timing: &mut TimingMap,
    ledger: &mut PowerLedger,
    saved: &Saved,
) {
    binding.unbind(cand.op);
    if !saved.op_was_locked {
        locked.unlock(cand.op);
    }
    timing.set(cand.op, saved.op_timing);
    if let Some((partner, t)) = saved.partner_timing {
        binding.unbind(partner);
        if !saved.partner_was_locked {
            locked.unlock(partner);
        }
        timing.set(partner, t);
    }
    for (start, values) in &saved.ledger_rows {
        ledger.restore(*start, values);
    }
    // A fresh instance allocated for this decision stays empty and is
    // pruned at the end; ids of other instances are unaffected.
}

/// Chooses initial per-operation module estimates: minimum area (also the
/// low-power choice in realistic libraries — precomputed once per graph
/// as [`CompiledGraph`]'s seed), then upgrades operations to their
/// fastest module along infeasible critical paths until a power-feasible
/// schedule exists.
fn bootstrap(
    graph: &Cdfg,
    library: &ModuleLibrary,
    constraints: &SynthesisConstraints,
    budget: &pchls_sched::PowerBudget,
    reach: &Reachability,
    compiled: &CompiledGraph,
) -> Result<(TimingMap, Vec<ModuleId>), SynthesisError> {
    let mut modules: Vec<ModuleId> = compiled.seed_modules().to_vec();
    // The seed timing equals the compiled min-area timing map (same
    // per-node MinArea selection), so start from a clone instead of
    // rebuilding it on every constraint point.
    let mut timing = compiled.min_area_timing().clone();

    let peak_power = constraints.max_power();
    loop {
        let err = match pchls_sched::pasap_budget(graph, &timing, budget, constraints.latency) {
            Ok(_) => return Ok((timing, modules)),
            Err(e) => e,
        };
        // Power alone can never be fixed by a faster (more power-hungry)
        // module.
        if matches!(err, ScheduleError::OpExceedsBudget { .. }) {
            return Err(SynthesisError::Infeasible { cause: err });
        }
        let failing = match err {
            ScheduleError::Infeasible { node, .. } => Some(node),
            _ => None,
        };
        // Upgradeable ops: a strictly faster module exists whose power
        // still fits the budget.
        let upgrade_of = |v: NodeId| -> Option<ModuleId> {
            let cur = timing.delay(v);
            library
                .candidates(graph.node(v).kind())
                .filter(|&m| {
                    library.module(m).latency() < cur
                        && library.module(m).power() <= peak_power + 1e-9
                })
                .min_by_key(|&m| (library.module(m).latency(), library.module(m).area()))
        };
        let mut upgradeable: Vec<NodeId> = graph
            .node_ids()
            .filter(|&v| upgrade_of(v).is_some())
            .collect();
        if let Some(f) = failing {
            // Prefer the failing op itself or one of its ancestors — the
            // delay on the path into `f` is what broke the horizon.
            let on_path: Vec<NodeId> = upgradeable
                .iter()
                .copied()
                .filter(|&v| v == f || reach.reaches(v, f))
                .collect();
            if !on_path.is_empty() {
                upgradeable = on_path;
            }
        }
        // Upgrade the slowest candidate first (largest delay win).
        let Some(&pick) = upgradeable.iter().max_by_key(|&&v| {
            timing.delay(v) - library.module(upgrade_of(v).expect("filtered")).latency()
        }) else {
            return Err(SynthesisError::Infeasible { cause: err });
        };
        let m = upgrade_of(pick).expect("pick is upgradeable");
        modules[pick.index()] = m;
        timing.set(
            pick,
            OpTiming {
                delay: library.module(m).latency(),
                power: library.module(m).power(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::paper_library;

    fn synth_opts(
        graph: &Cdfg,
        latency: u32,
        power: f64,
        options: &SynthesisOptions,
    ) -> Result<SynthesizedDesign, SynthesisError> {
        let engine = Engine::new(paper_library());
        let compiled = engine.compile(graph);
        synthesize_session(
            &engine,
            &compiled,
            &SynthesisConstraints::new(latency, power),
            options,
            None,
        )
    }

    fn synth(graph: &Cdfg, latency: u32, power: f64) -> Result<SynthesizedDesign, SynthesisError> {
        synth_opts(graph, latency, power, &SynthesisOptions::default())
    }

    #[test]
    fn deprecated_free_function_matches_the_session_path() {
        #[allow(deprecated)]
        let via_shim = synthesize(
            &benchmarks::hal(),
            &paper_library(),
            SynthesisConstraints::new(17, 25.0),
            &SynthesisOptions::default(),
        )
        .unwrap();
        let via_session = synth(&benchmarks::hal(), 17, 25.0).unwrap();
        assert_eq!(via_shim, via_session);
        assert_eq!(via_shim.stats, via_session.stats);
    }

    #[test]
    fn hal_paper_constraints_synthesize() {
        let g = benchmarks::hal();
        for (t, p) in [(10, 40.0), (10, 20.0), (17, 40.0), (17, 12.0)] {
            let d = synth(&g, t, p).unwrap_or_else(|e| panic!("T={t} P={p}: {e}"));
            d.validate(&g, &paper_library()).unwrap();
            assert!(d.latency <= t);
            assert!(d.peak_power <= p + 1e-9);
        }
    }

    #[test]
    fn cosine_and_elliptic_synthesize() {
        for (g, t) in [
            (benchmarks::cosine(), 12),
            (benchmarks::cosine(), 19),
            (benchmarks::elliptic(), 22),
        ] {
            let d = synth(&g, t, 60.0).unwrap_or_else(|e| panic!("{} T={t}: {e}", g.name()));
            d.validate(&g, &paper_library()).unwrap();
        }
    }

    #[test]
    fn infeasible_power_is_reported() {
        let g = benchmarks::hal();
        let err = synth(&g, 10, 2.0).unwrap_err();
        assert!(matches!(err, SynthesisError::Infeasible { .. }));
    }

    #[test]
    fn infeasible_latency_is_reported() {
        let g = benchmarks::hal();
        let err = synth(&g, 4, 1e6).unwrap_err();
        assert!(matches!(err, SynthesisError::Infeasible { .. }));
    }

    #[test]
    fn area_decreases_with_looser_power() {
        let g = benchmarks::hal();
        let tight = synth(&g, 17, 12.0).unwrap();
        let loose = synth(&g, 17, 200.0).unwrap();
        // More power headroom can only help the area objective (the
        // feasible design space strictly grows). The greedy is not
        // guaranteed monotone, but on hal it is and the paper's Figure 2
        // depends on this qualitative trend.
        assert!(
            loose.area <= tight.area,
            "loose {} > tight {}",
            loose.area,
            tight.area
        );
    }

    #[test]
    fn area_decreases_with_looser_latency() {
        let g = benchmarks::hal();
        let tight = synth(&g, 10, 40.0).unwrap();
        let loose = synth(&g, 30, 40.0).unwrap();
        assert!(
            loose.area <= tight.area,
            "loose {} > tight {}",
            loose.area,
            tight.area
        );
    }

    #[test]
    fn tight_latency_uses_parallel_multipliers() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let d = synth(&g, 10, 1e6).unwrap();
        let par = lib.by_name("mult_par").unwrap();
        assert!(
            d.binding.instances().iter().any(|i| i.module() == par),
            "T=10 requires at least one parallel multiplier"
        );
    }

    #[test]
    fn loose_latency_prefers_serial_multipliers() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let d = synth(&g, 40, 10.0).unwrap();
        let par = lib.by_name("mult_par").unwrap();
        // At T=40 with a 10.0 budget the 8.1-power parallel multiplier
        // is never worth opening: serial ones are smaller and pasap has
        // room to stretch.
        assert!(
            d.binding.instances().iter().all(|i| i.module() != par),
            "unexpected parallel multiplier in a relaxed design"
        );
    }

    #[test]
    fn multiplications_fold_before_io() {
        // The pair-merge ordering: with generous slack, the expensive
        // multipliers must share units (fewer instances than operations).
        let g = benchmarks::hal();
        let lib = paper_library();
        let d = synth(&g, 30, 25.0).unwrap();
        let mult_instances = d
            .binding
            .instances()
            .iter()
            .filter(|i| lib.module(i.module()).implements(pchls_cdfg::OpKind::Mul))
            .count();
        assert!(
            mult_instances < 6,
            "6 multiplications must not need 6 units at T=30"
        );
    }

    #[test]
    fn synthesis_is_deterministic() {
        // Repeated runs of the incremental kernel must agree exactly —
        // including the effort counters, which would diverge if the
        // fast-commit/dirty tracking were at all order-dependent.
        for (g, t, p) in [
            (benchmarks::cosine(), 15, 40.0),
            (benchmarks::hal(), 10, 20.0),
            (benchmarks::elliptic(), 22, 30.0),
        ] {
            let a = synth(&g, t, p).unwrap();
            let b = synth(&g, t, p).unwrap();
            assert_eq!(a, b, "{} T={t} P={p}", g.name());
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn incremental_kernel_skips_redundant_feasibility_checks() {
        // Most commits land operations exactly at their provisional
        // starts; the incremental kernel must prove those feasible
        // without re-running the scheduler.
        let g = benchmarks::hal();
        let d = synth(&g, 17, 25.0).unwrap();
        assert!(
            d.stats.fast_commits > 0,
            "no commit used the fast path: {:?}",
            d.stats
        );
    }

    #[test]
    fn every_op_is_bound_once() {
        let g = benchmarks::elliptic();
        let d = synth(&g, 25, 30.0).unwrap();
        assert!(d.binding.is_complete());
        let total_bound: usize = d.binding.instances().iter().map(|i| i.ops().len()).sum();
        assert_eq!(total_bound, g.len());
    }

    #[test]
    fn stats_count_decisions() {
        let g = benchmarks::hal();
        let d = synth(&g, 17, 25.0).unwrap();
        assert_eq!(d.stats.decisions, g.len());
    }

    #[test]
    fn ablation_no_backtracking_still_works_on_easy_points() {
        let g = benchmarks::hal();
        let opts = SynthesisOptions {
            backtracking: false,
            ..SynthesisOptions::default()
        };
        let d = synth_opts(&g, 20, 40.0, &opts).unwrap();
        d.validate(&g, &paper_library()).unwrap();
        assert_eq!(d.stats.backtracks, 0);
    }

    #[test]
    fn ablation_no_module_selection_uses_estimates_only() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let opts = SynthesisOptions {
            module_selection: false,
            ..SynthesisOptions::default()
        };
        // Loose constraints: the MinArea bootstrap keeps serial
        // multipliers, so the design must contain no parallel ones.
        let d = synth_opts(&g, 40, 1e6, &opts).unwrap();
        let par = lib.by_name("mult_par").unwrap();
        assert!(d.binding.instances().iter().all(|i| i.module() != par));
    }
}
