//! The combined power-constrained scheduling/allocation/binding loop.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use pchls_bind::{Binding, InstanceId};
use pchls_cdfg::{Cdfg, NodeId, OpKind, Reachability};
use pchls_fulib::{ModuleId, ModuleLibrary, SelectionPolicy};
use pchls_sched::{
    palap_locked, pasap_locked, LockedStarts, OpTiming, PowerLedger, Schedule, ScheduleError,
    TimingMap,
};

use crate::constraints::SynthesisConstraints;
use crate::design::{SynthesisStats, SynthesizedDesign};
use crate::error::SynthesisError;
use crate::options::SynthesisOptions;

/// One greedy decision over the compatibility structure, in decreasing
/// order of preference:
///
/// * merge an operation onto an existing instance,
/// * merge **two** unbound operations onto a new shared instance (the
///   Jou-style clique-forming merge — this is what makes expensive units
///   like multipliers fold before cheap I/O units get a chance to eat the
///   schedule slack),
/// * open a dedicated instance for one operation (fallback; negative
///   score so it only wins when nothing can be shared).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Decision {
    op: NodeId,
    module: ModuleId,
    start: u32,
    target: Target,
    score: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Existing(InstanceId),
    Fresh,
    FreshPair { partner: NodeId, partner_start: u32 },
}

/// Synthesizes `graph` under `constraints`, minimizing functional-unit
/// area (see the crate-level documentation for the algorithm).
///
/// # Errors
///
/// * [`SynthesisError::Infeasible`] when no power-feasible schedule fits
///   the latency bound — the `(T, P<)` point is outside the feasible
///   region.
/// * [`SynthesisError::Schedule`] / [`SynthesisError::Bind`] on internal
///   validation failures (defended by tests; callers can treat any error
///   as "no design produced").
pub fn synthesize(
    graph: &Cdfg,
    library: &ModuleLibrary,
    constraints: SynthesisConstraints,
    options: &SynthesisOptions,
) -> Result<SynthesizedDesign, SynthesisError> {
    let n = graph.len();
    let reach = Reachability::new(graph);
    let (mut timing, est_modules) = bootstrap(graph, library, constraints, &reach)?;
    // Per-kind module candidate lists, computed once: the library is
    // immutable, so re-collecting them per candidate (the old behaviour)
    // only burned allocations.
    let kind_modules: BTreeMap<OpKind, Vec<ModuleId>> = OpKind::ALL
        .iter()
        .map(|&k| (k, library.candidates(k).collect()))
        .collect();

    let mut binding = Binding::new(n);
    let mut locked = LockedStarts::none(n);
    let mut unbound: BTreeSet<NodeId> = graph.node_ids().collect();
    let mut stats = SynthesisStats::default();

    // The per-cycle power reserved by locked operations, maintained
    // incrementally: candidate attempts reserve on apply and restore a
    // bit-exact snapshot on undo, instead of rebuilding the ledger from
    // the whole locked set every iteration.
    let mut ledger = PowerLedger::new(constraints.latency, constraints.max_power);

    // Power-feasible early starts under the current commitments. A
    // commitment that locks operations exactly at their provisional
    // starts with unchanged timing leaves `pasap_locked`'s greedy output
    // unchanged (locked reservations are placed where the greedy itself
    // put them, and placement order is timing-determined), so the
    // schedule is only recomputed when a commit actually displaced an
    // operation or changed its module timing — the "dirty" commits.
    let mut provisional = pasap_locked(
        graph,
        &timing,
        constraints.max_power,
        constraints.latency,
        &locked,
    )
    .map_err(|cause| SynthesisError::Infeasible { cause })?;
    let mut dirty = false;

    while !unbound.is_empty() {
        if dirty {
            provisional = pasap_locked(
                graph,
                &timing,
                constraints.max_power,
                constraints.latency,
                &locked,
            )
            .map_err(|cause| SynthesisError::Infeasible { cause })?;
            dirty = false;
        }
        // The soft deadlines must track every lock, so the reversed
        // heuristic is recomputed each iteration. It can fail where the
        // forward one succeeded; fall back to zero mobility (late =
        // early), which is always safe.
        let late = palap_locked(
            graph,
            &timing,
            constraints.max_power,
            constraints.latency,
            &locked,
        )
        .unwrap_or_else(|_| provisional.clone());

        let busy = instance_busy(&binding, &locked, &timing);
        let ctx = Context {
            graph,
            library,
            options,
            reach: &reach,
            timing: &timing,
            est_modules: &est_modules,
            kind_modules: &kind_modules,
            binding: &binding,
            locked: &locked,
            ledger: &ledger,
            busy: &busy,
            provisional: &provisional,
            late: &late,
            constraints,
            avoided_cache: RefCell::new(vec![None; n]),
            start0_cache: RefCell::new(vec![None; n * library.len()]),
        };
        let mut candidates = enumerate_candidates(&ctx, &unbound);
        // Deterministic order: best score first, then earlier start, then
        // smaller op id.
        candidates.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then(a.start.cmp(&b.start))
                .then(a.op.cmp(&b.op))
        });

        // Try candidates best-first; a candidate commits only if the
        // remaining operations still admit a power-feasible schedule (the
        // paper's feasibility check). Rejected candidates are undone and
        // skipped; attempts are capped so a pathological iteration stays
        // cheap.
        const MAX_ATTEMPTS: usize = 64;
        let mut committed = false;
        for cand in candidates.iter().take(MAX_ATTEMPTS) {
            let saved = saved_state(cand, library, &timing, &locked, &ledger);
            apply(
                cand,
                library,
                &mut binding,
                &mut locked,
                &mut timing,
                &mut ledger,
                &saved,
            );
            // A candidate that locks its operation(s) exactly at their
            // provisional starts with unchanged timing cannot invalidate
            // the provisional schedule — it is feasible by construction
            // and the expensive re-schedule is skipped.
            let clean = is_clean(cand, &saved, &provisional);
            let feasible = clean
                || pasap_locked(
                    graph,
                    &timing,
                    constraints.max_power,
                    constraints.latency,
                    &locked,
                )
                .is_ok();
            if feasible {
                unbound.remove(&cand.op);
                stats.decisions += 1;
                if let Target::FreshPair { partner, .. } = cand.target {
                    unbound.remove(&partner);
                    stats.decisions += 1;
                }
                if clean {
                    stats.fast_commits += 1;
                } else {
                    dirty = true;
                }
                committed = true;
                break;
            }
            undo(
                cand,
                &mut binding,
                &mut locked,
                &mut timing,
                &mut ledger,
                &saved,
            );
            stats.rejected_candidates += 1;
        }
        if !committed {
            // Every candidate strands the remaining operations. The
            // paper's repair: backtrack (all failed decisions are already
            // undone) and lock every unscheduled operation to the last
            // valid pasap schedule, then continue with binding-only
            // decisions. Locks land exactly at provisional starts, so the
            // provisional schedule remains valid (not dirty).
            if !options.backtracking {
                return Err(SynthesisError::Infeasible {
                    cause: ScheduleError::Infeasible {
                        node: *unbound.iter().next().expect("non-empty"),
                        horizon: constraints.latency,
                        max_power: constraints.max_power,
                    },
                });
            }
            for &v in &unbound {
                locked.lock(v, provisional.start(v));
            }
            // Rebuild the ledger from the full locked set (the newly
            // locked operations were not reserved incrementally).
            ledger = locked_ledger(graph, &timing, &locked, constraints)?;
            stats.backtracks += 1;
        }
    }

    // All operations bound and locked: the locked schedule is final.
    let final_schedule = if dirty {
        pasap_locked(
            graph,
            &timing,
            constraints.max_power,
            constraints.latency,
            &locked,
        )
        .map_err(SynthesisError::Schedule)?
    } else {
        provisional
    };
    binding.prune_empty();
    let mut design =
        SynthesizedDesign::assemble(final_schedule, timing, binding, library, constraints);
    design.stats = stats;
    design.validate(graph, library)?;
    Ok(design)
}

/// Whether a just-applied decision is guaranteed not to invalidate the
/// provisional schedule: every operation it locked sits exactly at its
/// provisional start with its timing unchanged.
fn is_clean(cand: &Decision, saved: &Saved, provisional: &Schedule) -> bool {
    let unchanged = |op: NodeId, start: u32, before: OpTiming, after: OpTiming| {
        start == provisional.start(op) && before.delay == after.delay && before.power == after.power
    };
    let op_clean = unchanged(cand.op, cand.start, saved.op_timing, saved.applied_timing);
    match cand.target {
        Target::FreshPair {
            partner,
            partner_start,
        } => {
            op_clean
                && saved
                    .partner_timing
                    .map(|(_, before)| {
                        unchanged(partner, partner_start, before, saved.applied_timing)
                    })
                    .unwrap_or(false)
        }
        _ => op_clean,
    }
}

/// Read-only state shared by the candidate enumeration helpers, plus
/// per-iteration memo tables (every cached quantity depends only on
/// state that is fixed for the whole enumeration pass).
struct Context<'a> {
    graph: &'a Cdfg,
    library: &'a ModuleLibrary,
    options: &'a SynthesisOptions,
    reach: &'a Reachability,
    timing: &'a TimingMap,
    est_modules: &'a [ModuleId],
    kind_modules: &'a BTreeMap<OpKind, Vec<ModuleId>>,
    binding: &'a Binding,
    locked: &'a LockedStarts,
    ledger: &'a PowerLedger,
    busy: &'a [Vec<(u32, u32)>],
    provisional: &'a Schedule,
    late: &'a Schedule,
    constraints: SynthesisConstraints,
    /// Memoized [`Context::avoided_area`] per operation: the pair-merge
    /// loop queries it O(n²·modules) times for only n distinct answers.
    avoided_cache: RefCell<Vec<Option<f64>>>,
    /// Memoized `candidate_start(op, m, 0)`, flattened as
    /// `op.index() * library.len() + m.index()`.
    start0_cache: RefCell<Vec<Option<Option<u32>>>>,
}

/// The per-cycle power already reserved by locked operations.
fn locked_ledger(
    graph: &Cdfg,
    timing: &TimingMap,
    locked: &LockedStarts,
    constraints: SynthesisConstraints,
) -> Result<PowerLedger, SynthesisError> {
    let mut ledger = PowerLedger::new(constraints.latency, constraints.max_power);
    for id in graph.node_ids() {
        if let Some(s) = locked.get(id) {
            let t = timing.of(id);
            if !ledger.fits(s, t.delay, t.power) {
                return Err(SynthesisError::Schedule(ScheduleError::PowerExceeded {
                    cycle: s,
                    power: ledger.used(s) + t.power,
                    bound: constraints.max_power,
                }));
            }
            ledger.reserve(s, t.delay, t.power);
        }
    }
    Ok(ledger)
}

/// Busy intervals of each instance (bound ops are always locked).
fn instance_busy(
    binding: &Binding,
    locked: &LockedStarts,
    timing: &TimingMap,
) -> Vec<Vec<(u32, u32)>> {
    binding
        .instance_ids()
        .map(|iid| {
            binding
                .instance(iid)
                .ops()
                .iter()
                .map(|&op| {
                    let s = locked.get(op).expect("bound ops are locked");
                    (s, s + timing.delay(op))
                })
                .collect()
        })
        .collect()
}

impl Context<'_> {
    /// Area of the cheapest library module that could *feasibly* execute
    /// `op` in the current state — the unit a successful merge avoids
    /// opening. Feasibility matters: when the latency bound rules the
    /// serial multiplier out for an operation, merging it onto a parallel
    /// multiplier avoids a 339-area unit, not a 103-area one.
    fn avoided_area(&self, op: NodeId) -> f64 {
        if let Some(v) = self.avoided_cache.borrow()[op.index()] {
            return v;
        }
        let kind_list = &self.kind_modules[&self.graph.node(op).kind()];
        let v = kind_list
            .iter()
            .filter(|&&m| self.candidate_start0(op, m).is_some())
            .map(|&m| self.library.module(m).area())
            .min()
            .or_else(|| {
                // Nothing currently fits (rare, mid-backtrack): fall back
                // to the global cheapest so scoring stays total.
                kind_list
                    .iter()
                    .map(|&m| self.library.module(m).area())
                    .min()
            })
            .map(f64::from)
            .expect("library coverage checked at bootstrap");
        self.avoided_cache.borrow_mut()[op.index()] = Some(v);
        v
    }

    /// Memoized `candidate_start(op, m, 0)` — the form every scoring path
    /// asks for repeatedly.
    fn candidate_start0(&self, op: NodeId, m: ModuleId) -> Option<u32> {
        let idx = op.index() * self.library.len() + m.index();
        if let Some(v) = self.start0_cache.borrow()[idx] {
            return v;
        }
        let v = self.candidate_start(op, m, 0);
        self.start0_cache.borrow_mut()[idx] = Some(v);
        v
    }

    /// The earliest feasible start for `op` executed on module `m`, no
    /// earlier than `not_before`. Respects the power ledger, the
    /// palap-estimated deadline (softened so the provisional slot always
    /// qualifies), locked direct successors, and — for locked ops — the
    /// fixed slot and timing.
    fn candidate_start(&self, op: NodeId, m: ModuleId, not_before: u32) -> Option<u32> {
        let spec = self.library.module(m);
        if let Some(s) = self.locked.get(op) {
            let cur = self.timing.of(op);
            if spec.latency() != cur.delay || (spec.power() - cur.power).abs() > 1e-9 {
                return None; // reservation coherence
            }
            return (s >= not_before).then_some(s);
        }
        let delay = spec.latency();
        let power = spec.power();
        if power > self.constraints.max_power + 1e-9 {
            return None;
        }
        let ready = self
            .graph
            .operands(op)
            .iter()
            .map(|&p| self.provisional.start(p) + self.timing.delay(p))
            .max()
            .unwrap_or(0)
            .max(not_before);
        // Soft palap deadline: never tighter than the provisional slot.
        let soft_deadline = (self.late.start(op) + self.timing.delay(op))
            .max(self.provisional.start(op) + self.timing.delay(op));
        // Hard bounds: the latency constraint and locked successors.
        let deadline = self
            .graph
            .successors(op)
            .iter()
            .filter_map(|&s| self.locked.get(s))
            .min()
            .unwrap_or(u32::MAX)
            .min(soft_deadline)
            .min(self.constraints.latency);
        let mut s = ready;
        while s + delay <= deadline {
            if self.ledger.fits(s, delay, power) {
                return Some(s);
            }
            s += 1;
        }
        None
    }

    /// Interconnect bonus: shared operand producers / result consumers.
    fn interconnect(&self, u: NodeId, others: &[NodeId]) -> f64 {
        if !self.options.interconnect_scoring {
            return 0.0;
        }
        let mut shared = 0usize;
        for &v in others {
            shared += self
                .graph
                .operands(u)
                .iter()
                .filter(|p| self.graph.operands(v).contains(p))
                .count();
            shared += self
                .graph
                .successors(u)
                .iter()
                .filter(|c| self.graph.successors(v).contains(c))
                .count();
        }
        shared as f64 * self.options.weights.interconnect
    }

    /// Modules allowed for `op` under the ablation switches (borrowed —
    /// no per-query allocation).
    fn modules_for(&self, op: NodeId) -> &[ModuleId] {
        if self.options.module_selection {
            &self.kind_modules[&self.graph.node(op).kind()]
        } else {
            std::slice::from_ref(&self.est_modules[op.index()])
        }
    }
}

/// Enumerates every feasible decision for the unbound operations.
fn enumerate_candidates(ctx: &Context<'_>, unbound: &BTreeSet<NodeId>) -> Vec<Decision> {
    let mut out = Vec::new();
    let unbound_vec: Vec<NodeId> = unbound.iter().copied().collect();

    for &u in &unbound_vec {
        for &m in ctx.modules_for(u) {
            let spec = ctx.library.module(m);
            let area = f64::from(spec.area());
            // (1) Merge onto an existing instance: earliest start at which
            // the instance is free and power fits. Starting later than the
            // op's free earliest start consumes schedule slack and is
            // penalized (see `CostWeights::displacement`).
            let free_start = ctx.candidate_start0(u, m);
            for iid in ctx.binding.instance_ids() {
                let inst = ctx.binding.instance(iid);
                if inst.module() != m {
                    continue;
                }
                if let Some(s) = earliest_instance_fit(ctx, u, m, iid) {
                    let displaced = f64::from(s - free_start.expect("fit implies a free start"));
                    // The +1 bonus breaks ties against pair merges: growing
                    // an existing clique saves one unit per *one* operation
                    // consumed, a pair saves one unit per two — without the
                    // bonus the greedy fragments large op classes into
                    // many two-op instances.
                    out.push(Decision {
                        op: u,
                        module: m,
                        start: s,
                        target: Target::Existing(iid),
                        score: ctx.options.weights.area * ctx.avoided_area(u)
                            + ctx.interconnect(u, inst.ops())
                            - ctx.options.weights.displacement * displaced
                            + 1.0,
                    });
                }
            }
            // (3) Dedicated instance (fallback).
            if let Some(s) = ctx.candidate_start0(u, m) {
                out.push(Decision {
                    op: u,
                    module: m,
                    start: s,
                    target: Target::Fresh,
                    score: -ctx.options.weights.area * area,
                });
            }
        }
    }

    // (2) Pair merges: two unbound operations opening one shared unit.
    for (i, &u) in unbound_vec.iter().enumerate() {
        for &v in &unbound_vec[i + 1..] {
            // Serialize in dependence order if one exists.
            let (first, second) = if ctx.reach.reaches(v, u) {
                (v, u)
            } else {
                (u, v)
            };
            for &m in ctx.modules_for(first) {
                let spec = ctx.library.module(m);
                if !spec.implements(ctx.graph.node(second).kind()) {
                    continue;
                }
                let gain =
                    ctx.avoided_area(first) + ctx.avoided_area(second) - f64::from(spec.area());
                if gain <= 0.0 {
                    continue; // two dedicated cheapest units are no worse
                }
                let Some(s1) = ctx.candidate_start0(first, m) else {
                    continue;
                };
                let Some(s2_free) = ctx.candidate_start0(second, m) else {
                    continue;
                };
                let Some(s2) = ctx.candidate_start(second, m, s1 + spec.latency()) else {
                    continue;
                };
                // Dependence-ordered pairs serialize for free (s2 at its
                // natural slot); concurrent siblings pay for the slack
                // their serialization consumes.
                let displaced = f64::from(s2 - s2_free);
                out.push(Decision {
                    op: first,
                    module: m,
                    start: s1,
                    target: Target::FreshPair {
                        partner: second,
                        partner_start: s2,
                    },
                    score: ctx.options.weights.area * gain + ctx.interconnect(first, &[second])
                        - ctx.options.weights.displacement * displaced,
                });
            }
        }
    }
    out
}

/// Earliest start at which `u` can execute on instance `iid` of module
/// `m`: power-feasible and not overlapping the instance's busy intervals.
fn earliest_instance_fit(
    ctx: &Context<'_>,
    u: NodeId,
    m: ModuleId,
    iid: InstanceId,
) -> Option<u32> {
    let delay = ctx.library.module(m).latency();
    let busy = &ctx.busy[iid.index()];
    let mut s = ctx.candidate_start0(u, m)?;
    loop {
        // First busy interval overlapping [s, s+delay), if any.
        match busy
            .iter()
            .filter(|&&(bs, bf)| s < bf && bs < s + delay)
            .map(|&(_, bf)| bf)
            .max()
        {
            None => return Some(s),
            Some(resume) => {
                // Skip past the collision and re-check power/deadline.
                s = ctx.candidate_start(u, m, resume)?;
            }
        }
    }
}

/// State saved for undoing a decision: previous timing entries, previous
/// lock state, and bit-exact ledger snapshots of the touched cycles.
struct Saved {
    op_timing: OpTiming,
    /// Timing written by `apply` (the module spec's delay/power).
    applied_timing: OpTiming,
    /// Whether the op was already locked (then its power is already in
    /// the ledger and must be neither re-reserved nor released).
    op_was_locked: bool,
    partner_timing: Option<(NodeId, OpTiming)>,
    partner_was_locked: bool,
    /// `(start, previous ledger values)` for every interval reserved by
    /// `apply`, restored verbatim on undo.
    ledger_rows: Vec<(u32, Vec<f64>)>,
}

fn saved_state(
    cand: &Decision,
    library: &ModuleLibrary,
    timing: &TimingMap,
    locked: &LockedStarts,
    ledger: &PowerLedger,
) -> Saved {
    let spec = library.module(cand.module);
    // The timing `apply` will write — snapshots must cover the interval
    // that gets reserved, which uses the *new* module's latency.
    let applied_timing = OpTiming {
        delay: spec.latency(),
        power: spec.power(),
    };
    let mut ledger_rows = Vec::with_capacity(2);
    let op_was_locked = locked.is_locked(cand.op);
    if !op_was_locked {
        ledger_rows.push((
            cand.start,
            ledger.snapshot(cand.start, applied_timing.delay),
        ));
    }
    let (partner_timing, partner_was_locked) = match cand.target {
        Target::FreshPair {
            partner,
            partner_start,
        } => {
            let was = locked.is_locked(partner);
            if !was {
                ledger_rows.push((
                    partner_start,
                    ledger.snapshot(partner_start, applied_timing.delay),
                ));
            }
            (Some((partner, timing.of(partner))), was)
        }
        _ => (None, false),
    };
    Saved {
        op_timing: timing.of(cand.op),
        applied_timing,
        op_was_locked,
        partner_timing,
        partner_was_locked,
        ledger_rows,
    }
}

fn apply(
    cand: &Decision,
    library: &ModuleLibrary,
    binding: &mut Binding,
    locked: &mut LockedStarts,
    timing: &mut TimingMap,
    ledger: &mut PowerLedger,
    saved: &Saved,
) {
    let spec = library.module(cand.module);
    let t = OpTiming {
        delay: spec.latency(),
        power: spec.power(),
    };
    timing.set(cand.op, t);
    locked.lock(cand.op, cand.start);
    if !saved.op_was_locked {
        ledger.reserve(cand.start, t.delay, t.power);
    }
    match cand.target {
        Target::Existing(i) => binding.bind(cand.op, i),
        Target::Fresh => {
            let i = binding.new_instance(cand.module);
            binding.bind(cand.op, i);
        }
        Target::FreshPair {
            partner,
            partner_start,
        } => {
            let i = binding.new_instance(cand.module);
            binding.bind(cand.op, i);
            timing.set(partner, t);
            locked.lock(partner, partner_start);
            if !saved.partner_was_locked {
                ledger.reserve(partner_start, t.delay, t.power);
            }
            binding.bind(partner, i);
        }
    }
}

fn undo(
    cand: &Decision,
    binding: &mut Binding,
    locked: &mut LockedStarts,
    timing: &mut TimingMap,
    ledger: &mut PowerLedger,
    saved: &Saved,
) {
    binding.unbind(cand.op);
    if !saved.op_was_locked {
        locked.unlock(cand.op);
    }
    timing.set(cand.op, saved.op_timing);
    if let Some((partner, t)) = saved.partner_timing {
        binding.unbind(partner);
        if !saved.partner_was_locked {
            locked.unlock(partner);
        }
        timing.set(partner, t);
    }
    for (start, values) in &saved.ledger_rows {
        ledger.restore(*start, values);
    }
    // A fresh instance allocated for this decision stays empty and is
    // pruned at the end; ids of other instances are unaffected.
}

/// Chooses initial per-operation module estimates: minimum area (also the
/// low-power choice in realistic libraries), then upgrades operations to
/// their fastest module along infeasible critical paths until a
/// power-feasible schedule exists.
fn bootstrap(
    graph: &Cdfg,
    library: &ModuleLibrary,
    constraints: SynthesisConstraints,
    reach: &Reachability,
) -> Result<(TimingMap, Vec<ModuleId>), SynthesisError> {
    let mut modules: Vec<ModuleId> = graph
        .nodes()
        .iter()
        .map(|nd| {
            library
                .select(nd.kind(), SelectionPolicy::MinArea)
                .unwrap_or_else(|| panic!("library does not cover {}", nd.kind()))
        })
        .collect();
    let mut timing = TimingMap::from_modules(graph, library, &modules);

    loop {
        let err =
            match pchls_sched::pasap(graph, &timing, constraints.max_power, constraints.latency) {
                Ok(_) => return Ok((timing, modules)),
                Err(e) => e,
            };
        // Power alone can never be fixed by a faster (more power-hungry)
        // module.
        if matches!(err, ScheduleError::OpExceedsBudget { .. }) {
            return Err(SynthesisError::Infeasible { cause: err });
        }
        let failing = match err {
            ScheduleError::Infeasible { node, .. } => Some(node),
            _ => None,
        };
        // Upgradeable ops: a strictly faster module exists whose power
        // still fits the budget.
        let upgrade_of = |v: NodeId| -> Option<ModuleId> {
            let cur = timing.delay(v);
            library
                .candidates(graph.node(v).kind())
                .filter(|&m| {
                    library.module(m).latency() < cur
                        && library.module(m).power() <= constraints.max_power + 1e-9
                })
                .min_by_key(|&m| (library.module(m).latency(), library.module(m).area()))
        };
        let mut upgradeable: Vec<NodeId> = graph
            .node_ids()
            .filter(|&v| upgrade_of(v).is_some())
            .collect();
        if let Some(f) = failing {
            // Prefer the failing op itself or one of its ancestors — the
            // delay on the path into `f` is what broke the horizon.
            let on_path: Vec<NodeId> = upgradeable
                .iter()
                .copied()
                .filter(|&v| v == f || reach.reaches(v, f))
                .collect();
            if !on_path.is_empty() {
                upgradeable = on_path;
            }
        }
        // Upgrade the slowest candidate first (largest delay win).
        let Some(&pick) = upgradeable.iter().max_by_key(|&&v| {
            timing.delay(v) - library.module(upgrade_of(v).expect("filtered")).latency()
        }) else {
            return Err(SynthesisError::Infeasible { cause: err });
        };
        let m = upgrade_of(pick).expect("pick is upgradeable");
        modules[pick.index()] = m;
        timing.set(
            pick,
            OpTiming {
                delay: library.module(m).latency(),
                power: library.module(m).power(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::paper_library;

    fn synth(graph: &Cdfg, latency: u32, power: f64) -> Result<SynthesizedDesign, SynthesisError> {
        synthesize(
            graph,
            &paper_library(),
            SynthesisConstraints::new(latency, power),
            &SynthesisOptions::default(),
        )
    }

    #[test]
    fn hal_paper_constraints_synthesize() {
        let g = benchmarks::hal();
        for (t, p) in [(10, 40.0), (10, 20.0), (17, 40.0), (17, 12.0)] {
            let d = synth(&g, t, p).unwrap_or_else(|e| panic!("T={t} P={p}: {e}"));
            d.validate(&g, &paper_library()).unwrap();
            assert!(d.latency <= t);
            assert!(d.peak_power <= p + 1e-9);
        }
    }

    #[test]
    fn cosine_and_elliptic_synthesize() {
        for (g, t) in [
            (benchmarks::cosine(), 12),
            (benchmarks::cosine(), 19),
            (benchmarks::elliptic(), 22),
        ] {
            let d = synth(&g, t, 60.0).unwrap_or_else(|e| panic!("{} T={t}: {e}", g.name()));
            d.validate(&g, &paper_library()).unwrap();
        }
    }

    #[test]
    fn infeasible_power_is_reported() {
        let g = benchmarks::hal();
        let err = synth(&g, 10, 2.0).unwrap_err();
        assert!(matches!(err, SynthesisError::Infeasible { .. }));
    }

    #[test]
    fn infeasible_latency_is_reported() {
        let g = benchmarks::hal();
        let err = synth(&g, 4, 1e6).unwrap_err();
        assert!(matches!(err, SynthesisError::Infeasible { .. }));
    }

    #[test]
    fn area_decreases_with_looser_power() {
        let g = benchmarks::hal();
        let tight = synth(&g, 17, 12.0).unwrap();
        let loose = synth(&g, 17, 200.0).unwrap();
        // More power headroom can only help the area objective (the
        // feasible design space strictly grows). The greedy is not
        // guaranteed monotone, but on hal it is and the paper's Figure 2
        // depends on this qualitative trend.
        assert!(
            loose.area <= tight.area,
            "loose {} > tight {}",
            loose.area,
            tight.area
        );
    }

    #[test]
    fn area_decreases_with_looser_latency() {
        let g = benchmarks::hal();
        let tight = synth(&g, 10, 40.0).unwrap();
        let loose = synth(&g, 30, 40.0).unwrap();
        assert!(
            loose.area <= tight.area,
            "loose {} > tight {}",
            loose.area,
            tight.area
        );
    }

    #[test]
    fn tight_latency_uses_parallel_multipliers() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let d = synth(&g, 10, 1e6).unwrap();
        let par = lib.by_name("mult_par").unwrap();
        assert!(
            d.binding.instances().iter().any(|i| i.module() == par),
            "T=10 requires at least one parallel multiplier"
        );
    }

    #[test]
    fn loose_latency_prefers_serial_multipliers() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let d = synth(&g, 40, 10.0).unwrap();
        let par = lib.by_name("mult_par").unwrap();
        // At T=40 with a 10.0 budget the 8.1-power parallel multiplier
        // is never worth opening: serial ones are smaller and pasap has
        // room to stretch.
        assert!(
            d.binding.instances().iter().all(|i| i.module() != par),
            "unexpected parallel multiplier in a relaxed design"
        );
    }

    #[test]
    fn multiplications_fold_before_io() {
        // The pair-merge ordering: with generous slack, the expensive
        // multipliers must share units (fewer instances than operations).
        let g = benchmarks::hal();
        let lib = paper_library();
        let d = synth(&g, 30, 25.0).unwrap();
        let mult_instances = d
            .binding
            .instances()
            .iter()
            .filter(|i| lib.module(i.module()).implements(pchls_cdfg::OpKind::Mul))
            .count();
        assert!(
            mult_instances < 6,
            "6 multiplications must not need 6 units at T=30"
        );
    }

    #[test]
    fn synthesis_is_deterministic() {
        // Repeated runs of the incremental kernel must agree exactly —
        // including the effort counters, which would diverge if the
        // fast-commit/dirty tracking were at all order-dependent.
        for (g, t, p) in [
            (benchmarks::cosine(), 15, 40.0),
            (benchmarks::hal(), 10, 20.0),
            (benchmarks::elliptic(), 22, 30.0),
        ] {
            let a = synth(&g, t, p).unwrap();
            let b = synth(&g, t, p).unwrap();
            assert_eq!(a, b, "{} T={t} P={p}", g.name());
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn incremental_kernel_skips_redundant_feasibility_checks() {
        // Most commits land operations exactly at their provisional
        // starts; the incremental kernel must prove those feasible
        // without re-running the scheduler.
        let g = benchmarks::hal();
        let d = synth(&g, 17, 25.0).unwrap();
        assert!(
            d.stats.fast_commits > 0,
            "no commit used the fast path: {:?}",
            d.stats
        );
    }

    #[test]
    fn every_op_is_bound_once() {
        let g = benchmarks::elliptic();
        let d = synth(&g, 25, 30.0).unwrap();
        assert!(d.binding.is_complete());
        let total_bound: usize = d.binding.instances().iter().map(|i| i.ops().len()).sum();
        assert_eq!(total_bound, g.len());
    }

    #[test]
    fn stats_count_decisions() {
        let g = benchmarks::hal();
        let d = synth(&g, 17, 25.0).unwrap();
        assert_eq!(d.stats.decisions, g.len());
    }

    #[test]
    fn ablation_no_backtracking_still_works_on_easy_points() {
        let g = benchmarks::hal();
        let opts = SynthesisOptions {
            backtracking: false,
            ..SynthesisOptions::default()
        };
        let d = synthesize(
            &g,
            &paper_library(),
            SynthesisConstraints::new(20, 40.0),
            &opts,
        )
        .unwrap();
        d.validate(&g, &paper_library()).unwrap();
        assert_eq!(d.stats.backtracks, 0);
    }

    #[test]
    fn ablation_no_module_selection_uses_estimates_only() {
        let g = benchmarks::hal();
        let lib = paper_library();
        let opts = SynthesisOptions {
            module_selection: false,
            ..SynthesisOptions::default()
        };
        // Loose constraints: the MinArea bootstrap keeps serial
        // multipliers, so the design must contain no parallel ones.
        let d = synthesize(&g, &lib, SynthesisConstraints::new(40, 1e6), &opts).unwrap();
        let par = lib.by_name("mult_par").unwrap();
        assert!(d.binding.instances().iter().all(|i| i.module() != par));
    }
}
