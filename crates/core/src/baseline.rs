//! Baseline flows the paper compares against.

use pchls_bind::{bind_schedule, CostWeights};
use pchls_cdfg::Cdfg;
use pchls_fulib::{ModuleLibrary, SelectionPolicy};
use pchls_sched::{asap, two_step_budget, PowerProfile, TimingMap};

use crate::constraints::SynthesisConstraints;
use crate::design::SynthesizedDesign;
use crate::error::SynthesisError;

/// A design produced by a baseline flow, with the extra flag two-phase
/// methods need: whether the power constraint was actually met.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineDesign {
    /// The scheduled/bound design.
    pub design: SynthesizedDesign,
    /// `false` when the baseline could not satisfy the power bound (the
    /// returned design then violates it — the failure mode of two-phase
    /// methods the paper highlights).
    pub met_power: bool,
}

/// The two-step baseline (paper refs [1, 2]): a time-constrained ASAP
/// schedule, a mobility-based power-flattening pass, then clique-
/// partitioning binding on the *fixed* resulting schedule.
///
/// Module selection is a single up-front policy (`policy`) — two-phase
/// flows do not co-optimize it.
///
/// # Errors
///
/// Returns [`SynthesisError::Infeasible`] when even the unconstrained
/// schedule misses the latency bound, and propagates binding failures.
pub fn two_step_bind(
    graph: &Cdfg,
    library: &ModuleLibrary,
    constraints: SynthesisConstraints,
    policy: SelectionPolicy,
) -> Result<BaselineDesign, SynthesisError> {
    let timing = TimingMap::from_policy(graph, library, policy);
    let outcome = two_step_budget(graph, &timing, constraints.latency, &constraints.budget)
        .map_err(|cause| SynthesisError::Infeasible { cause })?;
    let binding = bind_schedule(
        graph,
        library,
        &outcome.schedule,
        &timing,
        &CostWeights::default(),
    )?;
    let design =
        SynthesizedDesign::assemble(outcome.schedule, timing, binding, library, constraints);
    Ok(BaselineDesign {
        design,
        met_power: outcome.met_power,
    })
}

/// The power-oblivious baseline: plain ASAP scheduling plus
/// clique-partitioning binding, ignoring `P<` entirely. Its designs show
/// the power spikes of Figure 1 (top).
///
/// # Errors
///
/// Returns [`SynthesisError::Infeasible`] when the critical path misses
/// the latency bound, and propagates binding failures.
pub fn unconstrained_bind(
    graph: &Cdfg,
    library: &ModuleLibrary,
    latency: u32,
    policy: SelectionPolicy,
) -> Result<SynthesizedDesign, SynthesisError> {
    let timing = TimingMap::from_policy(graph, library, policy);
    let schedule = asap(graph, &timing);
    let achieved = schedule.latency(&timing);
    if achieved > latency {
        return Err(SynthesisError::Infeasible {
            cause: pchls_sched::ScheduleError::LatencyExceeded {
                latency: achieved,
                bound: latency,
            },
        });
    }
    let binding = bind_schedule(graph, library, &schedule, &timing, &CostWeights::default())?;
    let peak = PowerProfile::of(&schedule, &timing).peak();
    Ok(SynthesizedDesign::assemble(
        schedule,
        timing,
        binding,
        library,
        SynthesisConstraints::new(latency, peak.max(1.0)),
    ))
}

/// The allocation-trimming baseline: a classic iterative-refinement flow
/// that fixes module selection up front (`policy`), starts from a
/// dedicated allocation (one unit per operation) and repeatedly removes
/// the largest-area unit whose removal still admits a power- and
/// resource-constrained list schedule within the latency bound. The
/// final schedule is then bound by clique partitioning.
///
/// Unlike the paper's algorithm it cannot trade module types and explores
/// allocations only along a single greedy trajectory.
///
/// # Errors
///
/// Returns [`SynthesisError::Infeasible`] when even the dedicated
/// allocation cannot meet the constraints.
pub fn trimmed_allocation_bind(
    graph: &Cdfg,
    library: &ModuleLibrary,
    constraints: SynthesisConstraints,
    policy: SelectionPolicy,
) -> Result<SynthesizedDesign, SynthesisError> {
    use pchls_sched::{list_schedule_budget, Allocation};

    let modules: Vec<pchls_fulib::ModuleId> = graph
        .nodes()
        .iter()
        .map(|n| {
            library
                .select(n.kind(), policy)
                .unwrap_or_else(|| panic!("library does not cover {}", n.kind()))
        })
        .collect();

    // Dedicated allocation: as many units of each type as operations
    // assigned to it.
    let mut counts: std::collections::BTreeMap<pchls_fulib::ModuleId, usize> =
        std::collections::BTreeMap::new();
    for &m in &modules {
        *counts.entry(m).or_insert(0) += 1;
    }
    // Module selection is fixed for the whole trim loop, so the timing
    // map is too — one build, not one per feasibility probe.
    let timing = TimingMap::from_modules(graph, library, &modules);
    let feasible = |counts: &std::collections::BTreeMap<pchls_fulib::ModuleId, usize>| {
        let alloc = Allocation::from_pairs(counts.iter().map(|(&m, &c)| (m, c)));
        list_schedule_budget(graph, library, &modules, &alloc, &constraints.budget)
            .ok()
            .filter(|s| s.latency(&timing) <= constraints.latency)
    };
    let Some(mut schedule) = feasible(&counts) else {
        return Err(SynthesisError::Infeasible {
            cause: pchls_sched::ScheduleError::Infeasible {
                node: graph.node_ids().next().expect("non-empty graph"),
                horizon: constraints.latency,
                max_power: constraints.max_power(),
            },
        });
    };

    // Trim: drop the most expensive removable unit until stuck.
    loop {
        let mut candidates: Vec<pchls_fulib::ModuleId> = counts
            .iter()
            .filter(|&(_, &c)| c > 1)
            .map(|(&m, _)| m)
            .collect();
        candidates.sort_by_key(|&m| std::cmp::Reverse(library.module(m).area()));
        let mut trimmed = false;
        for m in candidates {
            *counts.get_mut(&m).expect("candidate exists") -= 1;
            if let Some(s) = feasible(&counts) {
                schedule = s;
                trimmed = true;
                break;
            }
            *counts.get_mut(&m).expect("candidate exists") += 1;
        }
        if !trimmed {
            break;
        }
    }

    let binding = bind_schedule(graph, library, &schedule, &timing, &CostWeights::default())?;
    Ok(SynthesizedDesign::assemble(
        schedule,
        timing,
        binding,
        library,
        constraints,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::paper_library;

    #[test]
    fn unconstrained_designs_validate() {
        let lib = paper_library();
        for g in benchmarks::paper_set() {
            let d = unconstrained_bind(&g, &lib, 100, SelectionPolicy::Fastest).unwrap();
            d.validate(&g, &lib)
                .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        }
    }

    #[test]
    fn two_step_meets_power_with_slack() {
        let lib = paper_library();
        let g = benchmarks::hal();
        let c = SynthesisConstraints::new(20, 20.0);
        let b = two_step_bind(&g, &lib, c, SelectionPolicy::Fastest).unwrap();
        assert!(b.met_power);
        b.design.validate(&g, &lib).unwrap();
    }

    #[test]
    fn two_step_fails_power_at_tight_latency() {
        // At the critical path there is no mobility: the reorder phase
        // cannot flatten anything, while the simultaneous algorithm could
        // still trade modules. This is the paper's motivating weakness.
        let lib = paper_library();
        let g = benchmarks::hal();
        let c = SynthesisConstraints::new(8, 12.0);
        let b = two_step_bind(&g, &lib, c, SelectionPolicy::Fastest).unwrap();
        assert!(!b.met_power);
    }

    #[test]
    fn unconstrained_infeasible_latency_reported() {
        let lib = paper_library();
        let g = benchmarks::hal();
        assert!(unconstrained_bind(&g, &lib, 3, SelectionPolicy::Fastest).is_err());
    }

    #[test]
    fn trimming_meets_constraints_and_beats_dedicated() {
        let lib = paper_library();
        for g in benchmarks::paper_set() {
            let c = SynthesisConstraints::new(30, 40.0);
            let d = trimmed_allocation_bind(&g, &lib, c, SelectionPolicy::Fastest)
                .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            d.validate(&g, &lib).unwrap();
            let dedicated: u64 = g
                .nodes()
                .iter()
                .map(|n| {
                    u64::from(
                        lib.module(lib.select(n.kind(), SelectionPolicy::Fastest).unwrap())
                            .area(),
                    )
                })
                .sum();
            assert!(d.area < dedicated, "{}: no trimming happened", g.name());
        }
    }

    #[test]
    fn trimming_reports_infeasible_latency() {
        let lib = paper_library();
        let g = benchmarks::hal();
        let c = SynthesisConstraints::new(4, 1e6);
        assert!(trimmed_allocation_bind(&g, &lib, c, SelectionPolicy::Fastest).is_err());
    }
}
