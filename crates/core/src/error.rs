//! Synthesis error type.

use std::fmt;

use pchls_bind::BindError;
use pchls_cdfg::OpKind;
use pchls_sched::ScheduleError;

/// Errors raised by the synthesis algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// No power-feasible schedule exists within the latency bound — the
    /// `(T, P<)` point lies outside the feasible region of Figure 2.
    Infeasible {
        /// The underlying scheduling failure.
        cause: ScheduleError,
    },
    /// A scheduling step failed for a reason other than plain
    /// infeasibility.
    Schedule(ScheduleError),
    /// The produced binding failed validation (internal invariant).
    Bind(BindError),
    /// The module library has no module implementing an operation kind
    /// present in the graph (raised by `Engine::try_compile`).
    Uncovered {
        /// The operation kind without any implementing module.
        kind: OpKind,
    },
    /// A progress hook requested cancellation
    /// ([`std::ops::ControlFlow::Break`]); no design was produced.
    Cancelled,
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Infeasible { cause } => {
                write!(f, "constraints are infeasible: {cause}")
            }
            SynthesisError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            SynthesisError::Bind(e) => write!(f, "binding failed: {e}"),
            SynthesisError::Uncovered { kind } => {
                write!(f, "library does not cover operation kind {kind}")
            }
            SynthesisError::Cancelled => write!(f, "synthesis cancelled by progress hook"),
        }
    }
}

impl std::error::Error for SynthesisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthesisError::Infeasible { cause } | SynthesisError::Schedule(cause) => Some(cause),
            SynthesisError::Bind(e) => Some(e),
            SynthesisError::Uncovered { .. } | SynthesisError::Cancelled => None,
        }
    }
}

impl From<BindError> for SynthesisError {
    fn from(e: BindError) -> Self {
        SynthesisError::Bind(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::NodeId;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SynthesisError>();
    }

    #[test]
    fn source_chains_to_cause() {
        use std::error::Error as _;
        let e = SynthesisError::Infeasible {
            cause: ScheduleError::Infeasible {
                node: NodeId::new(1),
                horizon: 5,
                max_power: 2.0,
            },
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("infeasible"));
    }
}
