//! Tunable knobs of the synthesis heuristic (including ablation switches).

use pchls_bind::CostWeights;

/// Options controlling the greedy synthesis loop.
///
/// The defaults reproduce the paper's algorithm; the boolean switches
/// exist for the ablation studies in `EXPERIMENTS.md` (what each
/// ingredient of the heuristic buys).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisOptions {
    /// Relative weight of area vs. interconnect in decision scoring.
    pub weights: CostWeights,
    /// Paper's backtracking rule: on infeasibility, undo the last
    /// decision and lock all unscheduled operations to the last valid
    /// `pasap` schedule. With `false`, a failing decision is simply
    /// skipped in favour of the next-best candidate (ablation).
    pub backtracking: bool,
    /// Explore module selection (e.g. serial vs. parallel multiplier) in
    /// the candidate decisions. With `false`, every operation uses the
    /// module of the bootstrap estimate only (ablation).
    pub module_selection: bool,
    /// Also credit shared operand sources / result consumers when scoring
    /// a binding onto an existing instance (the "least interconnect"
    /// tie-break). With `false`, scoring is by area only (ablation).
    pub interconnect_scoring: bool,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            weights: CostWeights::default(),
            backtracking: true,
            module_selection: true,
            interconnect_scoring: true,
        }
    }
}

impl SynthesisOptions {
    /// The paper's configuration (same as `Default`).
    #[must_use]
    pub fn paper() -> SynthesisOptions {
        SynthesisOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let o = SynthesisOptions::default();
        assert!(o.backtracking && o.module_selection && o.interconnect_scoring);
        assert_eq!(o, SynthesisOptions::paper());
    }
}
