//! Tunable knobs of the synthesis heuristic (including ablation switches).

use pchls_bind::CostWeights;

/// Options controlling the greedy synthesis loop.
///
/// The defaults reproduce the paper's algorithm; the boolean switches
/// exist for the ablation studies in `EXPERIMENTS.md` (what each
/// ingredient of the heuristic buys).
///
/// The struct is `#[non_exhaustive]` so future knobs can be added
/// without breaking callers: construct it with
/// [`SynthesisOptions::default`], [`SynthesisOptions::paper`] or the
/// [`builder`](SynthesisOptions::builder):
///
/// ```
/// use pchls_core::SynthesisOptions;
///
/// let opts = SynthesisOptions::builder()
///     .backtracking(false)
///     .interconnect_scoring(false)
///     .build();
/// assert!(!opts.backtracking);
/// assert!(opts.module_selection, "untouched knobs keep their defaults");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct SynthesisOptions {
    /// Relative weight of area vs. interconnect in decision scoring.
    pub weights: CostWeights,
    /// Paper's backtracking rule: on infeasibility, undo the last
    /// decision and lock all unscheduled operations to the last valid
    /// `pasap` schedule. With `false`, a failing decision is simply
    /// skipped in favour of the next-best candidate (ablation).
    pub backtracking: bool,
    /// Explore module selection (e.g. serial vs. parallel multiplier) in
    /// the candidate decisions. With `false`, every operation uses the
    /// module of the bootstrap estimate only (ablation).
    pub module_selection: bool,
    /// Also credit shared operand sources / result consumers when scoring
    /// a binding onto an existing instance (the "least interconnect"
    /// tie-break). With `false`, scoring is by area only (ablation).
    pub interconnect_scoring: bool,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            weights: CostWeights::default(),
            backtracking: true,
            module_selection: true,
            interconnect_scoring: true,
        }
    }
}

impl SynthesisOptions {
    /// The paper's configuration (same as `Default`).
    #[must_use]
    pub fn paper() -> SynthesisOptions {
        SynthesisOptions::default()
    }

    /// A builder starting from the paper defaults.
    pub fn builder() -> SynthesisOptionsBuilder {
        SynthesisOptionsBuilder {
            options: SynthesisOptions::default(),
        }
    }
}

/// Builder for [`SynthesisOptions`] (the only way to construct
/// non-default options outside this crate, since the struct is
/// `#[non_exhaustive]`).
#[derive(Debug, Clone)]
#[must_use = "call .build() to obtain the options"]
pub struct SynthesisOptionsBuilder {
    options: SynthesisOptions,
}

impl SynthesisOptionsBuilder {
    /// Sets the decision-scoring weights.
    pub fn weights(mut self, weights: CostWeights) -> Self {
        self.options.weights = weights;
        self
    }

    /// Enables or disables the paper's backtracking rule.
    pub fn backtracking(mut self, on: bool) -> Self {
        self.options.backtracking = on;
        self
    }

    /// Enables or disables module-selection exploration.
    pub fn module_selection(mut self, on: bool) -> Self {
        self.options.module_selection = on;
        self
    }

    /// Enables or disables interconnect-aware scoring.
    pub fn interconnect_scoring(mut self, on: bool) -> Self {
        self.options.interconnect_scoring = on;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> SynthesisOptions {
        self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let o = SynthesisOptions::default();
        assert!(o.backtracking && o.module_selection && o.interconnect_scoring);
        assert_eq!(o, SynthesisOptions::paper());
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(
            SynthesisOptions::builder().build(),
            SynthesisOptions::default()
        );
    }

    #[test]
    fn builder_flips_only_requested_knobs() {
        let o = SynthesisOptions::builder()
            .backtracking(false)
            .module_selection(false)
            .build();
        assert!(!o.backtracking && !o.module_selection);
        assert!(o.interconnect_scoring);
        assert_eq!(o.weights, CostWeights::default());
    }
}
