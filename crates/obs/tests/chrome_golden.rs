//! The Chrome trace-event exporter's contract, pinned three ways: the
//! exact golden bytes for a hand-built snapshot, a re-parse of those
//! bytes through a real JSON parser, and a live end-to-end trace (real
//! spans through the global tracer) checked for validity and monotone
//! timestamps.

use pchls_obs::trace::TraceEvent;
use pchls_obs::{chrome_trace_json, ArgValue, EventKind, TraceSnapshot};
use serde_json::Value;

/// A deterministic snapshot covering every encoder path: a root span
/// with an integer argument, a child span with no arguments of its
/// own, and an instant with a string argument on another thread.
fn golden_snapshot() -> TraceSnapshot {
    TraceSnapshot {
        events: vec![
            TraceEvent {
                name: 1,
                kind: EventKind::Span,
                tid: 1,
                start_ns: 1_500,
                dur_ns: 2_500,
                id: 1,
                parent: 0,
                args: vec![(3, ArgValue::U64(21))],
            },
            TraceEvent {
                name: 4,
                kind: EventKind::Span,
                tid: 1,
                start_ns: 2_000,
                dur_ns: 400,
                id: 2,
                parent: 1,
                args: vec![],
            },
            TraceEvent {
                name: 2,
                kind: EventKind::Instant,
                tid: 2,
                start_ns: 4_000,
                dur_ns: 0,
                id: 0,
                parent: 0,
                args: vec![(5, ArgValue::Str(6))],
            },
        ],
        dropped: 3,
        names: vec![
            "kernel.synthesize".into(),
            "serve.shed".into(),
            "ops".into(),
            "fds.refit".into(),
            "lane".into(),
            "hit".into(),
        ],
    }
}

const GOLDEN: &str = concat!(
    r#"{"traceEvents":["#,
    r#"{"name":"kernel.synthesize","cat":"pchls","ph":"X","ts":1.5,"dur":2.5,"pid":1,"tid":1,"args":{"span":1,"ops":21}},"#,
    r#"{"name":"fds.refit","cat":"pchls","ph":"X","ts":2,"dur":0.4,"pid":1,"tid":1,"args":{"span":2,"parent":1}},"#,
    r#"{"name":"serve.shed","cat":"pchls","ph":"i","s":"t","ts":4,"pid":1,"tid":2,"args":{"lane":"hit"}}"#,
    r#"],"displayTimeUnit":"ms","otherData":{"droppedEvents":3}}"#,
);

#[test]
fn export_matches_the_golden_bytes() {
    assert_eq!(chrome_trace_json(&golden_snapshot()), GOLDEN);
}

#[test]
fn golden_bytes_reparse_as_the_same_structure() {
    let value = serde_json::parse(GOLDEN).expect("golden trace is valid JSON");
    let top = value.as_object().expect("top level is an object");
    let events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), 3);
    let field = |i: usize, key: &str| -> &Value {
        events[i]
            .as_object()
            .unwrap()
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("event {i} lacks `{key}`"))
    };
    assert_eq!(field(0, "name"), &Value::Str("kernel.synthesize".into()));
    assert_eq!(field(0, "ph"), &Value::Str("X".into()));
    assert_eq!(field(0, "ts"), &Value::Float(1.5));
    assert_eq!(field(1, "dur"), &Value::Float(0.4));
    assert_eq!(field(2, "ph"), &Value::Str("i".into()));
    assert_eq!(field(2, "ts"), &Value::Int(4));
    let dropped = top
        .iter()
        .find(|(k, _)| k == "otherData")
        .and_then(|(_, v)| v.as_object())
        .and_then(|o| o.iter().find(|(k, _)| k == "droppedEvents"))
        .map(|(_, v)| v);
    assert_eq!(dropped, Some(&Value::Int(3)));
}

/// Real spans through the global tracer: the export parses, every
/// event carries the required keys, and timestamps come out monotone
/// (snapshots sort by start time). Only this test in this binary
/// touches the process-wide tracer.
#[test]
fn live_trace_exports_valid_monotone_json() {
    pchls_obs::set_enabled(false);
    pchls_obs::reset();
    pchls_obs::set_enabled(true);
    for i in 0..4u64 {
        let _outer = pchls_obs::span!("work", "iter" => i);
        let _inner = pchls_obs::span!("step");
        pchls_obs::event!("mark");
    }
    pchls_obs::set_enabled(false);
    let snapshot = pchls_obs::snapshot();
    assert_eq!(snapshot.events.len(), 12);
    assert_eq!(snapshot.dropped, 0);

    let json = chrome_trace_json(&snapshot);
    let value = serde_json::parse(&json).expect("live trace is valid JSON");
    let events = value
        .as_object()
        .unwrap()
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), 12);

    let mut last_ts = f64::NEG_INFINITY;
    for ev in events {
        let fields = ev.as_object().expect("event is an object");
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        for required in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(get(required).is_some(), "event lacks `{required}`: {ev:?}");
        }
        let ts = match get("ts").unwrap() {
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            other => panic!("non-numeric ts {other:?}"),
        };
        assert!(ts >= last_ts, "timestamps regressed: {ts} after {last_ts}");
        last_ts = ts;
    }
    pchls_obs::reset();
}
