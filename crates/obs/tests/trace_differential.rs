//! Differential tests for the lock-free [`TraceBuffer`] against a
//! mutex-guarded reference model under real multi-thread
//! interleavings. The buffer's contract: accept exactly
//! `min(total, capacity)` events, count every refusal in `dropped`,
//! never tear a committed event, and preserve each writer thread's
//! submission order in slot order.

use std::sync::{Arc, Barrier, Mutex};

use proptest::prelude::*;

use pchls_obs::trace::{RawEvent, MAX_ARGS};
use pchls_obs::{ArgValue, EventKind, TraceBuffer};

/// A recognizable event: the payload fields are all derived from
/// `(tid, seq)` so a torn write shows up as an internal inconsistency.
fn raw(tid: u64, seq: u64) -> RawEvent {
    let mut args = [None; MAX_ARGS];
    args[0] = Some((1, ArgValue::U64(seq * 3)));
    RawEvent {
        name: tid as u32 + 1,
        kind: EventKind::Span,
        tid,
        start_ns: seq,
        dur_ns: seq + 7,
        id: seq + 1,
        parent: seq / 2,
        args,
    }
}

proptest! {
    /// Concurrent writers: the committed set equals what a mutex-locked
    /// reference accepted, no event is torn, and each thread's events
    /// stay in its own submission order.
    #[test]
    fn concurrent_writers_match_the_locked_reference(
        per_thread in proptest::collection::vec(0usize..48, 1usize..5),
        capacity in 1usize..96,
    ) {
        let buffer = Arc::new(TraceBuffer::new(capacity));
        let reference = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(per_thread.len()));
        let handles: Vec<_> = per_thread
            .iter()
            .enumerate()
            .map(|(t, &count)| {
                let buffer = Arc::clone(&buffer);
                let reference = Arc::clone(&reference);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for seq in 0..count as u64 {
                        let ev = raw(t as u64, seq);
                        if buffer.push(&ev) {
                            reference.lock().unwrap().push((ev.tid, ev.start_ns));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let total: usize = per_thread.iter().sum();
        let events = buffer.events();
        prop_assert_eq!(events.len(), total.min(buffer.capacity()));
        prop_assert_eq!(buffer.dropped() as usize, total - events.len());

        // The committed multiset is exactly the reference's accepted
        // multiset (push returned true ⇔ the event is readable).
        let mut accepted = std::mem::take(&mut *reference.lock().unwrap());
        let mut got: Vec<(u64, u64)> = events.iter().map(|e| (e.tid, e.start_ns)).collect();
        accepted.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, accepted);

        // No tearing: every field of a committed event is consistent
        // with the (tid, seq) it was derived from.
        for e in &events {
            let seq = e.start_ns;
            prop_assert_eq!(u64::from(e.name), e.tid + 1);
            prop_assert_eq!(e.kind, EventKind::Span);
            prop_assert_eq!(e.dur_ns, seq + 7);
            prop_assert_eq!(e.id, seq + 1);
            prop_assert_eq!(e.parent, seq / 2);
            prop_assert_eq!(e.args.as_slice(), &[(1, ArgValue::U64(seq * 3))]);
        }

        // Slot order preserves each thread's submission order: a
        // writer reserves monotonically increasing slots, so its
        // events' sequence numbers must appear ascending.
        let mut last_seq = vec![None; per_thread.len()];
        for e in &events {
            let last = &mut last_seq[e.tid as usize];
            if let Some(prev) = *last {
                prop_assert!(e.start_ns > prev, "thread {} reordered", e.tid);
            }
            *last = Some(e.start_ns);
        }
    }

    /// A full buffer refuses exactly the overflow and a reset restores
    /// the whole capacity.
    #[test]
    fn reset_restores_capacity(capacity in 1usize..64, extra in 0usize..64) {
        let buffer = TraceBuffer::new(capacity);
        for seq in 0..(capacity + extra) as u64 {
            buffer.push(&raw(0, seq));
        }
        assert_eq!(buffer.events().len(), capacity);
        assert_eq!(buffer.dropped() as usize, extra);
        buffer.reset();
        assert_eq!(buffer.events().len(), 0);
        assert_eq!(buffer.dropped(), 0);
        for seq in 0..capacity as u64 {
            assert!(buffer.push(&raw(0, seq)));
        }
        assert_eq!(buffer.events().len(), capacity);
    }
}

/// The global tracer end to end: nested guards record parentage, and
/// the snapshot nests child intervals inside their parents. Serial by
/// construction — this is the only test in this binary touching the
/// process-wide tracer.
#[test]
fn global_tracer_records_nested_parentage() {
    pchls_obs::set_enabled(false);
    pchls_obs::reset();
    pchls_obs::set_enabled(true);
    {
        let _outer = pchls_obs::span!("outer", "ops" => 3u64);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let _inner = pchls_obs::span!("inner");
        pchls_obs::event!("tick");
    }
    pchls_obs::set_enabled(false);
    let snap = pchls_obs::snapshot();

    let find = |name: &str| {
        snap.events
            .iter()
            .find(|e| snap.name(e.name) == name)
            .unwrap_or_else(|| panic!("no `{name}` event"))
    };
    let (outer, inner, tick) = (find("outer"), find("inner"), find("tick"));
    assert_eq!(outer.parent, 0);
    assert_eq!(inner.parent, outer.id);
    assert_eq!(tick.parent, inner.id, "instants attach to the open span");
    assert!(outer.id != 0 && inner.id != 0);
    assert_eq!(tick.id, 0, "instants carry no span id");
    assert!(inner.start_ns >= outer.start_ns);
    assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    let ops = outer.args.first().expect("outer keeps its argument");
    assert_eq!(snap.name(ops.0), "ops");
    assert_eq!(ops.1, ArgValue::U64(3));
    pchls_obs::reset();
}
