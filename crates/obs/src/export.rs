//! Exporters: Chrome trace-event JSON from a [`TraceSnapshot`].
//!
//! The output is the stable subset of the [Trace Event Format] that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly: complete events (`"ph":"X"`) for spans, instant events
//! (`"ph":"i"`) for points, timestamps in microseconds since the trace
//! epoch. The JSON is written by hand — this crate takes no
//! dependencies — and the `chrome_golden` integration test pins the
//! exact bytes and re-parses them with a real JSON parser.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! The Prometheus-style text exposition lives on
//! [`MetricsRegistry::render`](crate::MetricsRegistry::render).

use std::fmt::Write as _;

use crate::trace::{ArgValue, EventKind, TraceSnapshot};

/// Renders a snapshot as Chrome trace-event JSON. Events come out in
/// the snapshot's order (sorted by start time, so timestamps are
/// monotone); dropped-event counts are surfaced as metadata on the
/// trace object.
#[must_use]
pub fn chrome_trace_json(snapshot: &TraceSnapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, event) in snapshot.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_json_string(&mut out, snapshot.name(event.name));
        out.push_str(",\"cat\":\"pchls\"");
        match event.kind {
            EventKind::Span => {
                let _ = write!(
                    out,
                    ",\"ph\":\"X\",\"ts\":{},\"dur\":{}",
                    micros(event.start_ns),
                    micros(event.dur_ns)
                );
            }
            EventKind::Instant => {
                let _ = write!(
                    out,
                    ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{}",
                    micros(event.start_ns)
                );
            }
        }
        let _ = write!(out, ",\"pid\":1,\"tid\":{}", event.tid);
        if event.id != 0 || event.parent != 0 || !event.args.is_empty() {
            out.push_str(",\"args\":{");
            let mut first = true;
            let mut field = |out: &mut String, key: &str| {
                if !first {
                    out.push(',');
                }
                first = false;
                write_json_string(out, key);
                out.push(':');
            };
            if event.id != 0 {
                field(&mut out, "span");
                let _ = write!(out, "{}", event.id);
            }
            if event.parent != 0 {
                field(&mut out, "parent");
                let _ = write!(out, "{}", event.parent);
            }
            for (key, value) in &event.args {
                field(&mut out, snapshot.name(*key));
                match value {
                    ArgValue::U64(v) => {
                        let _ = write!(out, "{v}");
                    }
                    ArgValue::Str(s) => write_json_string(&mut out, snapshot.name(*s)),
                }
            }
            out.push('}');
        }
        out.push('}');
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"droppedEvents\":{}}}}}",
        snapshot.dropped
    );
    out
}

/// Microseconds with nanosecond precision, trailing zeros trimmed so
/// whole values print as integers.
fn micros(ns: u64) -> String {
    if ns.is_multiple_of(1000) {
        format!("{}", ns / 1000)
    } else {
        let s = format!("{}.{:03}", ns / 1000, ns % 1000);
        s.trim_end_matches('0').to_owned()
    }
}

/// Appends `s` as a JSON string literal (quotes, escapes).
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    #[test]
    fn spans_and_instants_render_their_phases() {
        let snapshot = TraceSnapshot {
            events: vec![
                TraceEvent {
                    name: 1,
                    kind: EventKind::Span,
                    tid: 1,
                    start_ns: 1_500,
                    dur_ns: 2_000,
                    id: 1,
                    parent: 0,
                    args: vec![(2, ArgValue::U64(7))],
                },
                TraceEvent {
                    name: 3,
                    kind: EventKind::Instant,
                    tid: 2,
                    start_ns: 4_000,
                    dur_ns: 0,
                    id: 0,
                    parent: 0,
                    args: vec![],
                },
            ],
            dropped: 5,
            names: vec!["kernel.score".into(), "id".into(), "serve.shed".into()],
        };
        let json = chrome_trace_json(&snapshot);
        assert!(json.contains("\"name\":\"kernel.score\""), "{json}");
        assert!(json.contains("\"ph\":\"X\",\"ts\":1.5,\"dur\":2"), "{json}");
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":4"), "{json}");
        assert!(json.contains("\"id\":7"), "{json}");
        assert!(json.contains("\"droppedEvents\":5"), "{json}");
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }
}
