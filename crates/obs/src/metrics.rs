//! The metrics side: wait-free counters, gauges and fixed-bucket
//! histograms behind a named [`MetricsRegistry`], rendered as
//! Prometheus-style text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], `Arc<Histogram>`) are cheap clones
//! of shared atomics — registration takes a lock once, the hot path
//! never does. A registry is a plain value, not a global: a service
//! owns its registry so tests asserting exact counts never see another
//! instance's traffic. A process-wide registry for code without an
//! obvious owner (the persistent store, the kernel) lives at
//! [`global`](crate::global).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets: powers of two of microseconds, so the
/// top bucket starts at 2^47 µs (≈ 4.5 years) — effectively +∞.
const BUCKETS: usize = 48;

/// A fixed-bucket, power-of-two latency histogram.
///
/// Bucket `i` counts observations in `[2^i, 2^(i+1))` microseconds
/// (bucket 0 also absorbs sub-microsecond observations; the last bucket
/// absorbs everything larger). Recording is one relaxed atomic
/// increment plus a `fetch_max` for the running maximum — writers never
/// contend on a lock — and quantiles are read by walking the 48
/// counters.
///
/// Fixed buckets trade resolution for bounded memory and wait-free
/// writes: a quantile is reported as the **upper bound** of the bucket
/// the rank falls in, i.e. within 2× of the true value, which is ample
/// for p50/p99/p99.9 service dashboards. The maximum is exact (to the
/// microsecond), because tail debugging wants the real worst case, not
/// a bucket bound.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    max_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Index of the bucket covering `d`.
    fn bucket_of(d: Duration) -> usize {
        let micros = u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1);
        (63 - micros.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one observation (wait-free).
    pub fn record(&self, d: Duration) {
        self.buckets[Self::bucket_of(d)].fetch_add(1, Ordering::Relaxed);
        let micros = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The largest observation in seconds (exact, not bucketed); `0.0`
    /// while empty.
    pub fn max_seconds(&self) -> f64 {
        self.max_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in seconds, reported as the
    /// upper bound of the bucket the rank lands in; `0.0` while empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        // Rank of the requested quantile, 1-based, clamped into range.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) µs.
                return (1u64 << (i + 1)) as f64 / 1e6;
            }
        }
        unreachable!("rank ≤ total implies some bucket reaches it")
    }

    /// The standard dashboard summary of this histogram.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            p50_secs: self.quantile(0.50),
            p99_secs: self.quantile(0.99),
            p999_secs: self.quantile(0.999),
            max_secs: self.max_seconds(),
        }
    }
}

/// The dashboard view of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Median in seconds, bucketed.
    pub p50_secs: f64,
    /// 99th percentile in seconds, bucketed.
    pub p99_secs: f64,
    /// 99.9th percentile in seconds, bucketed.
    pub p999_secs: f64,
    /// Largest observation in seconds (exact).
    pub max_secs: f64,
}

/// A monotonically increasing counter handle (wait-free increments).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for counters mirrored from an external
    /// snapshot at scrape time rather than incremented in place.
    pub fn store(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable gauge handle holding an `f64` (stored as bits, so reads
/// and writes stay single atomic operations).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// One registered series.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics, rendered as Prometheus-style text.
///
/// Series names may carry labels in the standard spelling —
/// `pchls_lane_latency_seconds{lane="hit"}` — which the exposition
/// renderer keeps, merging histogram `quantile` labels into the
/// existing set. Registration is idempotent: asking twice for the same
/// name returns the same underlying series.
///
/// # Panics
///
/// Registering a name twice with different metric kinds panics — the
/// two call sites disagree about what the series is.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    series: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(&self, name: &str, fresh: Metric) -> Metric {
        let mut series = self.series.lock().expect("metrics registry lock");
        series.entry(name.to_owned()).or_insert(fresh).clone()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("series `{name}` is not a counter: {other:?}"),
        }
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("series `{name}` is not a gauge: {other:?}"),
        }
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.register(name, Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("series `{name}` is not a histogram: {other:?}"),
        }
    }

    /// Renders every registered series as Prometheus-style text
    /// exposition: one `# TYPE` line per family, counters and gauges as
    /// single samples, histograms as summaries (`quantile` labels plus
    /// `_count` and `_max` samples).
    #[must_use]
    pub fn render(&self) -> String {
        let series = self.series.lock().expect("metrics registry lock");
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, metric) in series.iter() {
            let (family, labels) = split_labels(name);
            if family != last_family {
                let kind = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "summary",
                };
                let _ = writeln!(out, "# TYPE {family} {kind}");
                last_family = family.to_owned();
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", format_value(g.get()));
                }
                Metric::Histogram(h) => {
                    for (q, v) in [
                        ("0.5", h.quantile(0.50)),
                        ("0.99", h.quantile(0.99)),
                        ("0.999", h.quantile(0.999)),
                    ] {
                        let merged = merge_label(family, labels, &format!("quantile=\"{q}\""));
                        let _ = writeln!(out, "{merged} {}", format_value(v));
                    }
                    let with = |suffix: &str| match labels {
                        "" => format!("{family}{suffix}"),
                        labels => format!("{family}{suffix}{{{labels}}}"),
                    };
                    let _ = writeln!(out, "{} {}", with("_count"), h.count());
                    let _ = writeln!(out, "{} {}", with("_max"), format_value(h.max_seconds()));
                }
            }
        }
        out
    }
}

/// Splits `name{labels}` into `(name, labels)`; labels are `""` when
/// absent.
fn split_labels(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((family, rest)) => (family, rest.trim_end_matches('}')),
        None => (name, ""),
    }
}

/// `family{labels,extra}` — appends `extra` to an existing label set or
/// starts one.
fn merge_label(family: &str, labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{family}{{{extra}}}")
    } else {
        format!("{family}{{{labels},{extra}}}")
    }
}

/// Prometheus sample values: plain decimal, never scientific notation
/// for the magnitudes this system produces.
fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.max_seconds(), 0.0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = Histogram::new();
        // 99 fast observations (~100 µs) and one slow (~2 s).
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_secs(2));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        let p100 = h.quantile(1.0);
        // 100 µs lands in bucket [64, 128) µs → upper bound 128 µs.
        assert!((p50 - 128e-6).abs() < 1e-12, "p50={p50}");
        assert!((p99 - 128e-6).abs() < 1e-12, "p99={p99}");
        // 2 s lands in bucket [2^21, 2^22) µs → upper bound ≈ 4.19 s.
        assert!(p100 > 2.0 && p100 < 8.5, "p100={p100}");
        assert!(p50 <= p99 && p99 <= p100);
    }

    #[test]
    fn p999_separates_a_one_in_a_thousand_tail() {
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_secs(1));
        h.record(Duration::from_secs(1));
        // p99 is blind to a 2/1002 tail; p99.9 is not (its rank, 1001,
        // lands on the first slow observation).
        assert!(h.quantile(0.99) < 1e-3);
        assert!(h.quantile(0.999) > 0.5, "p999={}", h.quantile(0.999));
    }

    #[test]
    fn max_is_exact_not_bucketed() {
        let h = Histogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(777_777));
        // The bucketed p100 rounds up to 2^20 µs ≈ 1.05 s; max is exact.
        assert!((h.max_seconds() - 0.777_777).abs() < 1e-9);
        let summary = h.summary();
        assert_eq!(summary.count, 2);
        assert!((summary.max_secs - 0.777_777).abs() < 1e-9);
        assert!(summary.p50_secs <= summary.p99_secs && summary.p99_secs <= summary.p999_secs);
    }

    #[test]
    fn extreme_durations_stay_in_range() {
        let h = Histogram::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(60 * 60 * 24 * 365 * 10));
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.0) > 0.0);
        assert!(h.quantile(1.0).is_finite());
        assert!(h.max_seconds().is_finite());
    }

    #[test]
    fn handles_share_the_registered_series() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("pchls_requests_total");
        let b = registry.counter("pchls_requests_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);

        let g = registry.gauge("pchls_queue_depth");
        g.set(4.0);
        assert_eq!(registry.gauge("pchls_queue_depth").get(), 4.0);

        let h = registry.histogram("pchls_latency_seconds");
        h.record(Duration::from_millis(3));
        assert_eq!(registry.histogram("pchls_latency_seconds").count(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("pchls_requests_total");
        let _ = registry.gauge("pchls_requests_total");
    }

    #[test]
    fn exposition_groups_families_and_merges_quantile_labels() {
        let registry = MetricsRegistry::new();
        registry.counter("pchls_requests_total").add(7);
        registry.gauge("pchls_queue_depth").set(2.0);
        registry
            .histogram("pchls_lane_latency_seconds{lane=\"hit\"}")
            .record(Duration::from_micros(100));
        registry
            .histogram("pchls_lane_latency_seconds{lane=\"synth\"}")
            .record(Duration::from_millis(10));
        let text = registry.render();
        assert!(
            text.contains("# TYPE pchls_requests_total counter\n"),
            "{text}"
        );
        assert!(text.contains("pchls_requests_total 7\n"), "{text}");
        assert!(text.contains("# TYPE pchls_queue_depth gauge\n"), "{text}");
        assert!(text.contains("pchls_queue_depth 2\n"), "{text}");
        // One TYPE line covers both labeled histograms of the family.
        assert_eq!(
            text.matches("# TYPE pchls_lane_latency_seconds summary")
                .count(),
            1,
            "{text}"
        );
        assert!(
            text.contains("pchls_lane_latency_seconds{lane=\"hit\",quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(
            text.contains("pchls_lane_latency_seconds_count{lane=\"synth\"} 1\n"),
            "{text}"
        );
    }
}
