//! `pchls-obs` — zero-dependency observability for the whole
//! workspace: metrics from kernel to wire, spans from compile to
//! response, with live Prometheus-style scraping and Chrome-trace
//! export.
//!
//! Two independent primitives, both built from plain atomics (no
//! `unsafe`, no dependencies):
//!
//! * **Metrics** — a [`MetricsRegistry`] of named [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket [`Histogram`]s (the one histogram
//!   type the serve tier, the store and the kernel now share).
//!   Recording is wait-free; [`MetricsRegistry::render`] emits
//!   Prometheus-style text exposition, served live by `pchls serve`'s
//!   `metrics` protocol op.
//! * **Tracing** — per-thread bounded ring buffers of spans and point
//!   events ([`span!`]/[`event!`]), guarded by one process-global
//!   atomic flag. Disabled cost is a single relaxed load, so the
//!   kernel's phase instrumentation stays compiled in; enabled,
//!   memory is bounded with honest drop counting. [`snapshot`] +
//!   [`chrome_trace_json`] turn a run into a file Perfetto loads
//!   directly (`pchls synth --trace-out trace.json`).
//!
//! Registries are values, not singletons — a service owns its own so
//! exact-count tests never see foreign traffic. The [`global`]
//! registry exists for code with no natural owner (store timings,
//! process-wide gauges).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
pub mod trace;

use std::sync::OnceLock;

pub use export::chrome_trace_json;
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, MetricsRegistry};
pub use trace::{
    enabled, instant_ns, now_ns, record_span, reset, set_enabled, snapshot, Arg, ArgValue,
    EventKind, SpanGuard, TraceBuffer, TraceEvent, TraceSnapshot,
};

/// The process-wide registry, for metrics with no natural owning
/// instance (the persistent store's read/append/compact timings, say).
/// Components with an owner — the serve tier — keep their own
/// [`MetricsRegistry`] instead.
#[must_use]
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}
