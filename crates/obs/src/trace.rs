//! The tracing side: a lock-free, bounded, per-thread ring of spans
//! and point events behind one process-global on/off flag.
//!
//! # Disabled path
//!
//! [`span!`](crate::span) and [`event!`](crate::event) cost **one
//! relaxed atomic load** while tracing is off — no interning, no
//! clock read, no allocation. The kernel keeps its instrumentation
//! compiled in at all times; the `scale` bench's `phases` workload
//! holds the <1% overhead budget to that contract.
//!
//! # Memory model
//!
//! Every recording thread owns a [`TraceBuffer`]: a preallocated slab
//! of fixed-width event slots made of plain `AtomicU64` words (no
//! `unsafe` anywhere). A writer reserves a slot with a CAS on the
//! length, fills the slot's payload words with relaxed stores, and
//! *commits* by writing the slot's first word — which is never zero
//! for a committed event — with release ordering. A reader
//! acquire-loads the commit word and skips uncommitted slots, so a
//! snapshot taken mid-write observes only whole events.
//!
//! The buffer is **bounded and drop-new**: once full, further events
//! increment a drop counter instead of overwriting history, so
//! tracing can stay enabled in production with a hard memory ceiling
//! (`capacity × 14 words × 8 bytes` per thread) and an honest record
//! of what was lost.
//!
//! Span names and string argument values are interned process-wide;
//! events carry `u32` ids, and a [`TraceSnapshot`] resolves them back
//! to strings at export time.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// `u64` words per event slot: commit word, tid, start, dur, span id,
/// parent id, then [`MAX_ARGS`] (key, value) pairs.
const WORDS: usize = 6 + 2 * MAX_ARGS;

/// Arguments one event can carry.
pub const MAX_ARGS: usize = 4;

/// Default per-thread capacity in events (≈ 450 KiB per thread).
const DEFAULT_CAPACITY: usize = 4096;

/// What one recorded event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A scoped span with a duration.
    Span,
    /// A zero-duration point event.
    Instant,
}

/// One argument value: a number or an interned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgValue {
    /// A plain integer.
    U64(u64),
    /// An interned string id (resolve via [`TraceSnapshot::name`]).
    Str(u32),
}

/// One decoded event, as a snapshot hands it out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Interned name id.
    pub name: u32,
    /// Span or instant.
    pub kind: EventKind,
    /// Recording thread (small dense ids, assigned at first use).
    pub tid: u64,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (`0` for instants).
    pub dur_ns: u64,
    /// Process-unique span id (`0` for instants).
    pub id: u64,
    /// Enclosing span's id, `0` at top level.
    pub parent: u64,
    /// Up to [`MAX_ARGS`] key → value pairs (keys are interned ids).
    pub args: Vec<(u32, ArgValue)>,
}

/// The raw, pre-interned form a writer records.
#[derive(Debug, Clone, Copy)]
pub struct RawEvent {
    /// Interned name id (must be non-zero).
    pub name: u32,
    /// Span or instant.
    pub kind: EventKind,
    /// Recording thread id.
    pub tid: u64,
    /// Start in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Span id (`0` for instants).
    pub id: u64,
    /// Parent span id (`0` for none).
    pub parent: u64,
    /// `(key id, value)` pairs; unused slots hold `None`.
    pub args: [Option<(u32, ArgValue)>; MAX_ARGS],
}

/// A bounded, lock-free ring of trace events (see the module docs for
/// the commit protocol). Safe for concurrent writers and a concurrent
/// snapshot reader; the global tracer gives each thread its own.
#[derive(Debug)]
pub struct TraceBuffer {
    slots: Box<[AtomicU64]>,
    capacity: usize,
    len: AtomicUsize,
    dropped: AtomicU64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> TraceBuffer {
        let capacity = capacity.max(1);
        TraceBuffer {
            slots: (0..capacity * WORDS).map(|_| AtomicU64::new(0)).collect(),
            capacity,
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Event capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one event; returns `false` (and counts the drop) when
    /// the buffer is full. Never blocks, never allocates.
    pub fn push(&self, ev: &RawEvent) -> bool {
        debug_assert!(ev.name != 0, "name id 0 is the uncommitted marker");
        let reserved = self
            .len
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.capacity).then_some(n + 1)
            });
        let Ok(slot) = reserved else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        let base = slot * WORDS;
        let w = &self.slots[base..base + WORDS];
        w[1].store(ev.tid, Ordering::Relaxed);
        w[2].store(ev.start_ns, Ordering::Relaxed);
        w[3].store(ev.dur_ns, Ordering::Relaxed);
        w[4].store(ev.id, Ordering::Relaxed);
        w[5].store(ev.parent, Ordering::Relaxed);
        for (i, arg) in ev.args.iter().enumerate() {
            let (key, value) = match arg {
                Some((key, ArgValue::U64(v))) => (u64::from(*key) << 32 | 1, *v),
                Some((key, ArgValue::Str(s))) => (u64::from(*key) << 32 | 2, u64::from(*s)),
                None => (0, 0),
            };
            w[6 + 2 * i].store(key, Ordering::Relaxed);
            w[7 + 2 * i].store(value, Ordering::Relaxed);
        }
        // Commit: the first word is zero until the whole slot is
        // written, and non-zero after (name ids start at 1).
        let kind = match ev.kind {
            EventKind::Span => 1,
            EventKind::Instant => 2,
        };
        w[0].store(u64::from(ev.name) << 32 | kind, Ordering::Release);
        true
    }

    /// Decodes every committed event, in reservation order. Slots
    /// reserved but not yet committed by a concurrent writer are
    /// skipped.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let n = self.len.load(Ordering::Acquire).min(self.capacity);
        let mut out = Vec::with_capacity(n);
        for slot in 0..n {
            let base = slot * WORDS;
            let w = &self.slots[base..base + WORDS];
            let head = w[0].load(Ordering::Acquire);
            if head == 0 {
                continue; // reserved, not yet committed
            }
            let kind = match head & 0xffff_ffff {
                1 => EventKind::Span,
                _ => EventKind::Instant,
            };
            let mut args = Vec::new();
            for i in 0..MAX_ARGS {
                let key = w[6 + 2 * i].load(Ordering::Relaxed);
                let value = w[7 + 2 * i].load(Ordering::Relaxed);
                let id = (key >> 32) as u32;
                match key & 0xffff_ffff {
                    1 => args.push((id, ArgValue::U64(value))),
                    2 => args.push((id, ArgValue::Str(value as u32))),
                    _ => {}
                }
            }
            out.push(TraceEvent {
                name: (head >> 32) as u32,
                kind,
                tid: w[1].load(Ordering::Relaxed),
                start_ns: w[2].load(Ordering::Relaxed),
                dur_ns: w[3].load(Ordering::Relaxed),
                id: w[4].load(Ordering::Relaxed),
                parent: w[5].load(Ordering::Relaxed),
                args,
            });
        }
        out
    }

    /// Empties the buffer and its drop counter. Callers must quiesce
    /// writers first (the global tracer resets only while disabled);
    /// the commit words are cleared so a later snapshot can never mix
    /// epochs.
    pub fn reset(&self) {
        for slot in 0..self.capacity {
            self.slots[slot * WORDS].store(0, Ordering::Relaxed);
        }
        self.dropped.store(0, Ordering::Relaxed);
        self.len.store(0, Ordering::Release);
    }
}

/// The string interner: names and string argument values map to dense
/// non-zero `u32` ids; `names[id - 1]` resolves an id back.
#[derive(Default)]
struct Interner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

/// Everything process-global the tracer owns.
struct Tracer {
    interner: Mutex<Interner>,
    /// Every thread's buffer, registered at that thread's first record.
    buffers: Mutex<Vec<Arc<TraceBuffer>>>,
    epoch: Instant,
    next_tid: AtomicU64,
    next_span: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        interner: Mutex::new(Interner::default()),
        buffers: Mutex::new(Vec::new()),
        epoch: Instant::now(),
        next_tid: AtomicU64::new(1),
        next_span: AtomicU64::new(1),
    })
}

thread_local! {
    static THREAD: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
}

/// Per-thread recording state.
struct ThreadState {
    buffer: Arc<TraceBuffer>,
    tid: u64,
    /// The open-span stack: the top is the parent of the next span.
    stack: Vec<u64>,
}

/// Whether tracing is currently on. This is the whole disabled-path
/// cost: one relaxed load.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off, process-wide. Spans already open keep
/// recording their close; new spans observe the flag at entry.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Interns `name`, returning its non-zero id.
pub fn intern(name: &str) -> u32 {
    let t = tracer();
    let mut interner = t.interner.lock().expect("trace interner lock");
    if let Some(&id) = interner.ids.get(name) {
        return id;
    }
    interner.names.push(name.to_owned());
    let id = u32::try_from(interner.names.len()).expect("fewer than 2^32 interned strings");
    interner.ids.insert(name.to_owned(), id);
    id
}

/// Nanoseconds since the trace epoch.
#[must_use]
pub fn now_ns() -> u64 {
    instant_ns(Instant::now())
}

/// Converts an `Instant` to nanoseconds since the trace epoch (clamped
/// to zero for instants predating it).
#[must_use]
pub fn instant_ns(t: Instant) -> u64 {
    u64::try_from(t.saturating_duration_since(tracer().epoch).as_nanos()).unwrap_or(u64::MAX)
}

/// Runs `f` with the current thread's recording state, registering the
/// thread's buffer on first use.
fn with_thread<R>(f: impl FnOnce(&mut ThreadState) -> R) -> R {
    THREAD.with(|cell| {
        let mut state = cell.borrow_mut();
        let state = state.get_or_insert_with(|| {
            let t = tracer();
            let buffer = Arc::new(TraceBuffer::new(DEFAULT_CAPACITY));
            t.buffers
                .lock()
                .expect("trace buffer registry lock")
                .push(Arc::clone(&buffer));
            ThreadState {
                buffer,
                tid: t.next_tid.fetch_add(1, Ordering::Relaxed),
                stack: Vec::new(),
            }
        });
        f(state)
    })
}

/// A scoped span: created by [`span!`](crate::span), records itself on
/// drop. Inert (a no-op shell) while tracing is disabled.
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard {
    /// `None` while tracing is disabled.
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: u32,
    start_ns: u64,
    id: u64,
    parent: u64,
    args: [Option<(u32, ArgValue)>; MAX_ARGS],
}

impl SpanGuard {
    /// Opens a span (called by the [`span!`](crate::span) macro, which
    /// supplies a per-callsite interned-id cache).
    pub fn enter(name: &'static str, cache: &AtomicU32) -> SpanGuard {
        if !enabled() {
            return SpanGuard { active: None };
        }
        let name = cached_id(name, cache);
        let t = tracer();
        let id = t.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = with_thread(|state| {
            let parent = state.stack.last().copied().unwrap_or(0);
            state.stack.push(id);
            parent
        });
        SpanGuard {
            active: Some(ActiveSpan {
                name,
                start_ns: now_ns(),
                id,
                parent,
                args: [None; MAX_ARGS],
            }),
        }
    }

    /// Attaches an argument (first [`MAX_ARGS`] stick; extras are
    /// dropped). A no-op on a disabled span.
    pub fn arg(&mut self, key: &'static str, value: impl Into<Arg>) {
        if let Some(active) = &mut self.active {
            let value = match value.into() {
                Arg::U64(v) => ArgValue::U64(v),
                Arg::Str(s) => ArgValue::Str(intern(s)),
            };
            if let Some(slot) = active.args.iter_mut().find(|a| a.is_none()) {
                *slot = Some((intern(key), value));
            }
        }
    }

    /// This span's process-unique id (`0` while disabled) — the parent
    /// of manual child records.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let end = now_ns();
        with_thread(|state| {
            // Pop our own frame (robust to a mismatched stack if a
            // guard crossed threads — never pop someone else's frame).
            if state.stack.last() == Some(&active.id) {
                state.stack.pop();
            }
            state.buffer.push(&RawEvent {
                name: active.name,
                kind: EventKind::Span,
                tid: state.tid,
                start_ns: active.start_ns,
                dur_ns: end.saturating_sub(active.start_ns),
                id: active.id,
                parent: active.parent,
                args: active.args,
            });
        });
    }
}

/// An argument value at the recording call site.
pub enum Arg {
    /// A plain integer.
    U64(u64),
    /// A string (interned on record).
    Str(&'static str),
}

impl From<u64> for Arg {
    fn from(v: u64) -> Arg {
        Arg::U64(v)
    }
}

impl From<u32> for Arg {
    fn from(v: u32) -> Arg {
        Arg::U64(u64::from(v))
    }
}

impl From<usize> for Arg {
    fn from(v: usize) -> Arg {
        Arg::U64(v as u64)
    }
}

impl From<&'static str> for Arg {
    fn from(v: &'static str) -> Arg {
        Arg::Str(v)
    }
}

/// Resolves a per-callsite cached interned id.
fn cached_id(name: &'static str, cache: &AtomicU32) -> u32 {
    match cache.load(Ordering::Relaxed) {
        0 => {
            let id = intern(name);
            cache.store(id, Ordering::Relaxed);
            id
        }
        id => id,
    }
}

/// Records a point event (called by [`event!`](crate::event)).
pub fn record_event(name: &'static str, cache: &AtomicU32, args: &[(&'static str, Arg)]) {
    if !enabled() {
        return;
    }
    let name = cached_id(name, cache);
    let mut packed = [None; MAX_ARGS];
    for (slot, (key, value)) in packed.iter_mut().zip(args) {
        let value = match value {
            Arg::U64(v) => ArgValue::U64(*v),
            Arg::Str(s) => ArgValue::Str(intern(s)),
        };
        *slot = Some((intern(key), value));
    }
    let start_ns = now_ns();
    with_thread(|state| {
        state.buffer.push(&RawEvent {
            name,
            kind: EventKind::Instant,
            tid: state.tid,
            start_ns,
            dur_ns: 0,
            id: 0,
            parent: state.stack.last().copied().unwrap_or(0),
            args: packed,
        });
    });
}

/// Records a span retroactively, from explicit timestamps — for work
/// whose start and end live on different threads (a served request is
/// accepted on the reactor and finished on a worker). No-op while
/// disabled.
pub fn record_span(name: &str, start: Instant, end: Instant, args: &[(&'static str, Arg)]) {
    if !enabled() {
        return;
    }
    let name = intern(name);
    let mut packed = [None; MAX_ARGS];
    for (slot, (key, value)) in packed.iter_mut().zip(args) {
        let value = match value {
            Arg::U64(v) => ArgValue::U64(*v),
            Arg::Str(s) => ArgValue::Str(intern(s)),
        };
        *slot = Some((intern(key), value));
    }
    let start_ns = instant_ns(start);
    let id = tracer().next_span.fetch_add(1, Ordering::Relaxed);
    with_thread(|state| {
        state.buffer.push(&RawEvent {
            name,
            kind: EventKind::Span,
            tid: state.tid,
            start_ns,
            dur_ns: instant_ns(end).saturating_sub(start_ns),
            id,
            parent: 0,
            args: packed,
        });
    });
}

/// A consistent copy of everything recorded so far, with the interner
/// table needed to resolve names.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Every committed event across all threads, sorted by start time.
    pub events: Vec<TraceEvent>,
    /// Events lost to full buffers.
    pub dropped: u64,
    /// Interned strings; id `n` resolves to `names[n - 1]`.
    pub names: Vec<String>,
}

impl TraceSnapshot {
    /// Resolves an interned id (`"?"` for an id this snapshot has never
    /// seen).
    #[must_use]
    pub fn name(&self, id: u32) -> &str {
        (id > 0)
            .then(|| self.names.get(id as usize - 1))
            .flatten()
            .map_or("?", String::as_str)
    }

    /// Total recorded duration of every span named `name` (children
    /// count toward their parents too — this sums raw span durations).
    #[must_use]
    pub fn total_named(&self, name: &str) -> Duration {
        let Some(id) = self.names.iter().position(|n| n == name) else {
            return Duration::ZERO;
        };
        let id = id as u32 + 1;
        Duration::from_nanos(
            self.events
                .iter()
                .filter(|e| e.name == id && e.kind == EventKind::Span)
                .map(|e| e.dur_ns)
                .sum(),
        )
    }

    /// Number of events named `name`.
    #[must_use]
    pub fn count_named(&self, name: &str) -> usize {
        let Some(id) = self.names.iter().position(|n| n == name) else {
            return 0;
        };
        let id = id as u32 + 1;
        self.events.iter().filter(|e| e.name == id).count()
    }
}

/// Snapshots every thread's buffer (committed events only, merged and
/// sorted by start time) plus the interner table. Safe to call while
/// tracing runs; concurrent half-written events are simply absent.
#[must_use]
pub fn snapshot() -> TraceSnapshot {
    let t = tracer();
    let buffers = t.buffers.lock().expect("trace buffer registry lock");
    let mut events = Vec::new();
    let mut dropped = 0;
    for buffer in buffers.iter() {
        events.extend(buffer.events());
        dropped += buffer.dropped();
    }
    drop(buffers);
    events.sort_by_key(|e| (e.start_ns, e.id));
    let names = t
        .interner
        .lock()
        .expect("trace interner lock")
        .names
        .clone();
    TraceSnapshot {
        events,
        dropped,
        names,
    }
}

/// Clears every thread's buffer and drop counter. Call only while
/// tracing is disabled and recording threads are quiescent — events
/// being recorded concurrently with the reset may be lost (never
/// torn).
pub fn reset() {
    let t = tracer();
    for buffer in t.buffers.lock().expect("trace buffer registry lock").iter() {
        buffer.reset();
    }
}

/// Opens a scoped span recording into the calling thread's buffer:
/// `span!("fds.refit")`, optionally with arguments —
/// `span!("serve.request", "id" => 7u64, "lane" => "hit")`. Returns a
/// [`SpanGuard`] measuring until end of scope. One relaxed atomic load
/// when tracing is off.
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:literal => $value:expr)* $(,)?) => {{
        static __PCHLS_OBS_ID: ::std::sync::atomic::AtomicU32 =
            ::std::sync::atomic::AtomicU32::new(0);
        #[allow(unused_mut)]
        let mut __pchls_obs_guard = $crate::SpanGuard::enter($name, &__PCHLS_OBS_ID);
        $( __pchls_obs_guard.arg($key, $value); )*
        __pchls_obs_guard
    }};
}

/// Records a zero-duration point event: `event!("serve.shed", "id" =>
/// 7u64)`. One relaxed atomic load when tracing is off.
#[macro_export]
macro_rules! event {
    ($name:literal $(, $key:literal => $value:expr)* $(,)?) => {{
        static __PCHLS_OBS_ID: ::std::sync::atomic::AtomicU32 =
            ::std::sync::atomic::AtomicU32::new(0);
        $crate::trace::record_event(
            $name,
            &__PCHLS_OBS_ID,
            &[$( ($key, $crate::trace::Arg::from($value)) ),*],
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_round_trips_events() {
        let buf = TraceBuffer::new(8);
        let ev = RawEvent {
            name: 3,
            kind: EventKind::Span,
            tid: 1,
            start_ns: 100,
            dur_ns: 50,
            id: 9,
            parent: 4,
            args: [
                Some((5, ArgValue::U64(42))),
                Some((6, ArgValue::Str(7))),
                None,
                None,
            ],
        };
        assert!(buf.push(&ev));
        let events = buf.events();
        assert_eq!(events.len(), 1);
        let got = &events[0];
        assert_eq!((got.name, got.kind), (3, EventKind::Span));
        assert_eq!(
            (got.start_ns, got.dur_ns, got.id, got.parent),
            (100, 50, 9, 4)
        );
        assert_eq!(
            got.args,
            vec![(5, ArgValue::U64(42)), (6, ArgValue::Str(7))]
        );
    }

    #[test]
    fn full_buffer_drops_new_events_and_counts_them() {
        let buf = TraceBuffer::new(2);
        let ev = RawEvent {
            name: 1,
            kind: EventKind::Instant,
            tid: 0,
            start_ns: 0,
            dur_ns: 0,
            id: 0,
            parent: 0,
            args: [None; MAX_ARGS],
        };
        assert!(buf.push(&ev));
        assert!(buf.push(&ev));
        assert!(!buf.push(&ev));
        assert!(!buf.push(&ev));
        assert_eq!(buf.events().len(), 2);
        assert_eq!(buf.dropped(), 2);
        buf.reset();
        assert_eq!(buf.events().len(), 0);
        assert_eq!(buf.dropped(), 0);
        assert!(buf.push(&ev));
    }

    #[test]
    fn disabled_spans_record_nothing() {
        assert!(!enabled());
        let before = snapshot().events.len();
        {
            let _span = span!("test.disabled", "k" => 1u64);
            event!("test.disabled.event");
        }
        assert_eq!(snapshot().events.len(), before);
    }
}
