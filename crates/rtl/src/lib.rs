//! Register-transfer-level realization of synthesized designs.
//!
//! A [`Datapath`] materializes a [`SynthesizedDesign`] into RT-level
//! structure: functional-unit instances (from the binding), registers
//! (left-edge allocation over value lifetimes), the operand/result
//! steering implied by the schedule, and a cycle-by-cycle control table.
//!
//! Two consumers build on it:
//!
//! * [`simulate`] — a cycle-accurate simulator that executes the control
//!   table against concrete inputs. Equivalence with the CDFG reference
//!   interpreter on random stimuli is the end-to-end correctness check
//!   for the whole synthesis flow, and the simulator's measured per-cycle
//!   power trace cross-checks the analytic [`PowerProfile`].
//! * [`to_structural_hdl`] — a structural Verilog-style netlist emitter
//!   for inspection and downstream tooling.
//!
//! [`PowerProfile`]: pchls_sched::PowerProfile
//! [`SynthesizedDesign`]: pchls_core::SynthesizedDesign
//!
//! # Example
//!
//! ```
//! use pchls_cdfg::benchmarks::hal;
//! use pchls_core::{synthesize, SynthesisConstraints, SynthesisOptions};
//! use pchls_fulib::paper_library;
//! use pchls_rtl::{simulate, Datapath};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = hal();
//! let lib = paper_library();
//! let design = synthesize(&g, &lib, SynthesisConstraints::new(17, 25.0),
//!                         &SynthesisOptions::default())?;
//! let dp = Datapath::build(&g, &design, &lib);
//!
//! let mut stim = pchls_cdfg::Stimulus::new();
//! for (name, v) in [("x", 1), ("y", 2), ("u", 3), ("dx", 4), ("a", 99), ("three", 3)] {
//!     stim.insert(name.into(), v);
//! }
//! let run = simulate(&g, &dp, &stim)?;
//! let reference = pchls_cdfg::Interpreter::new(&g).run(&stim)?;
//! assert_eq!(run.outputs, reference);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hdl;
mod netlist;
mod sim;
mod vcd;

pub use hdl::to_structural_hdl;
pub use netlist::{ControlStep, Datapath};
pub use sim::{simulate, SimulationRun};
pub use vcd::{to_vcd, trace, Waveform};
