//! Cycle-accurate simulation of a datapath.

use std::collections::BTreeMap;

use pchls_cdfg::{Cdfg, CdfgError, NodeId, OpKind, Stimulus, Value};

use crate::netlist::Datapath;

/// The result of one datapath simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationRun {
    /// Value of every primary output, by name.
    pub outputs: BTreeMap<String, Value>,
    /// Power measured in each cycle by summing the per-cycle power of the
    /// operations executing on their instances — must agree with the
    /// analytic profile of the design.
    pub power_trace: Vec<f64>,
    /// Final register-file contents (for debugging).
    pub registers: Vec<Value>,
}

/// Executes the datapath's control table on concrete inputs, cycle by
/// cycle: results are written into their destination register when an
/// operation finishes, and operands are read from registers when an
/// operation starts. Register sharing is exercised exactly as the
/// left-edge allocation decided.
///
/// # Errors
///
/// Returns an error if `stimulus` lacks a value for some primary input.
///
/// # Panics
///
/// Panics if the datapath reads a register before anything wrote it —
/// impossible for datapaths built from validated designs.
pub fn simulate(
    graph: &Cdfg,
    datapath: &Datapath,
    stimulus: &Stimulus,
) -> Result<SimulationRun, CdfgError> {
    let mut registers: Vec<Option<Value>> = vec![None; datapath.register_count()];
    let mut outputs = BTreeMap::new();
    let mut power_trace = vec![0.0f64; datapath.latency() as usize];
    // Results computed at start, committed at finish.
    let mut in_flight: Vec<(u32, Option<usize>, NodeId, Value)> = Vec::new();

    for cycle in 0..=datapath.latency() {
        // Commit results finishing at this boundary.
        for (finish, dest, op, value) in &in_flight {
            if *finish == cycle {
                if let Some(r) = dest {
                    registers[*r] = Some(*value);
                }
                let node = graph.node(*op);
                if node.kind() == OpKind::Output {
                    outputs.insert(node.label().to_owned(), *value);
                }
            }
        }
        in_flight.retain(|(finish, ..)| *finish > cycle);
        if cycle == datapath.latency() {
            break;
        }
        // Launch operations starting this cycle.
        for step in datapath.steps_at(cycle) {
            let node = graph.node(step.op);
            let read = |port: usize| -> Value {
                let reg = step.sources[port].expect("validated datapaths register all operands");
                registers[reg].expect("register read before write")
            };
            let value = match node.kind() {
                OpKind::Input => *stimulus.get(node.label()).ok_or_else(|| {
                    CdfgError::UnknownOp(format!("missing input {}", node.label()))
                })?,
                OpKind::Add => read(0).wrapping_add(read(1)),
                OpKind::Sub => read(0).wrapping_sub(read(1)),
                OpKind::Mul => read(0).wrapping_mul(read(1)),
                OpKind::Comp => Value::from(read(0) > read(1)),
                OpKind::Output => read(0),
            };
            in_flight.push((cycle + step.delay, step.dest, step.op, value));
        }
    }

    // Power trace from the step table.
    for step in datapath.steps() {
        for c in step.start..step.start + step.delay {
            power_trace[c as usize] += step.power;
        }
    }

    Ok(SimulationRun {
        outputs,
        power_trace,
        registers: registers.into_iter().map(|v| v.unwrap_or(0)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::{benchmarks, Interpreter};
    use pchls_core::{Engine, SynthesisConstraints, SynthesisOptions};
    use pchls_fulib::paper_library;
    use pchls_sched::PowerProfile;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_stimulus(graph: &Cdfg, rng: &mut StdRng) -> Stimulus {
        graph
            .inputs()
            .map(|n| (n.label().to_owned(), rng.gen_range(-1000..1000)))
            .collect()
    }

    fn check_equivalence(graph: &Cdfg, latency: u32, power: f64) {
        let engine = Engine::new(paper_library());
        let compiled = engine.compile(graph);
        let design = engine
            .session(&compiled)
            .synthesize(
                SynthesisConstraints::new(latency, power),
                &SynthesisOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", graph.name()));
        let dp = Datapath::build(graph, &design, engine.library());
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let stim = random_stimulus(graph, &mut rng);
            let run = simulate(graph, &dp, &stim).unwrap();
            let reference = Interpreter::new(graph).run(&stim).unwrap();
            assert_eq!(run.outputs, reference, "{} diverged", graph.name());
        }
        // The measured power trace equals the analytic profile.
        let profile = PowerProfile::of(&design.schedule, &design.timing);
        let stim = random_stimulus(graph, &mut rng);
        let run = simulate(graph, &dp, &stim).unwrap();
        assert_eq!(run.power_trace.len(), profile.per_cycle().len());
        for (a, b) in run.power_trace.iter().zip(profile.per_cycle()) {
            assert!((a - b).abs() < 1e-9, "power trace mismatch");
        }
    }

    #[test]
    fn hal_datapath_matches_interpreter() {
        check_equivalence(&benchmarks::hal(), 17, 25.0);
    }

    #[test]
    fn cosine_datapath_matches_interpreter() {
        check_equivalence(&benchmarks::cosine(), 19, 40.0);
    }

    #[test]
    fn elliptic_datapath_matches_interpreter() {
        check_equivalence(&benchmarks::elliptic(), 22, 60.0);
    }

    #[test]
    fn tight_power_designs_stay_correct() {
        check_equivalence(&benchmarks::hal(), 30, 9.0);
    }

    #[test]
    fn missing_input_is_reported() {
        let g = benchmarks::hal();
        let engine = Engine::new(paper_library());
        let compiled = engine.compile(&g);
        let d = engine
            .session(&compiled)
            .synthesize(
                SynthesisConstraints::new(17, 25.0),
                &SynthesisOptions::default(),
            )
            .unwrap();
        let dp = Datapath::build(&g, &d, engine.library());
        assert!(simulate(&g, &dp, &Stimulus::new()).is_err());
    }
}
