//! Datapath structure and control table.

use pchls_bind::{InstanceId, RegisterAllocation};
use pchls_cdfg::{Cdfg, NodeId};
use pchls_core::SynthesizedDesign;
use pchls_fulib::ModuleLibrary;

/// One micro-operation of the control table: at `start`, instance
/// `instance` begins executing CDFG operation `op`, reading its operands
/// from `sources` (registers, or primary inputs for `None`) and — once
/// finished `delay` cycles later — writing its result to `dest`
/// (`None` for operations whose value is unused or exported).
#[derive(Debug, Clone, PartialEq)]
pub struct ControlStep {
    /// Start cycle.
    pub start: u32,
    /// Execution delay in cycles.
    pub delay: u32,
    /// Power drawn in each executing cycle (from the bound module).
    pub power: f64,
    /// The CDFG operation performed.
    pub op: NodeId,
    /// The functional unit executing it.
    pub instance: InstanceId,
    /// Source register per operand port (`None` = the operand is read
    /// from outside the datapath, which never happens for valid designs —
    /// inputs are operations too — but keeps the table total).
    pub sources: Vec<Option<usize>>,
    /// Destination register for the result.
    pub dest: Option<usize>,
}

/// The RT-level structure of a synthesized design.
#[derive(Debug, Clone)]
pub struct Datapath {
    registers: RegisterAllocation,
    steps: Vec<ControlStep>,
    latency: u32,
    fu_count: usize,
}

impl Datapath {
    /// Materializes `design` into a datapath.
    ///
    /// # Panics
    ///
    /// Panics if the design's binding is incomplete (synthesis results
    /// never are).
    #[must_use]
    pub fn build(graph: &Cdfg, design: &SynthesizedDesign, library: &ModuleLibrary) -> Datapath {
        let _ = library; // structure is independent of module metrics
        let registers = design.registers(graph);
        let mut steps: Vec<ControlStep> = graph
            .node_ids()
            .map(|op| {
                let instance = design
                    .binding
                    .instance_of(op)
                    .expect("synthesized designs are completely bound");
                ControlStep {
                    start: design.schedule.start(op),
                    delay: design.timing.delay(op),
                    power: design.timing.power(op),
                    op,
                    instance,
                    sources: graph
                        .operands(op)
                        .iter()
                        .map(|&p| registers.register_of(p))
                        .collect(),
                    dest: registers.register_of(op),
                }
            })
            .collect();
        steps.sort_by_key(|s| (s.start, s.op));
        Datapath {
            registers,
            steps,
            latency: design.latency,
            fu_count: design.binding.instances().len(),
        }
    }

    /// The control table, ordered by start cycle.
    #[must_use]
    pub fn steps(&self) -> &[ControlStep] {
        &self.steps
    }

    /// Register allocation backing the datapath.
    #[must_use]
    pub fn registers(&self) -> &RegisterAllocation {
        &self.registers
    }

    /// Number of registers.
    #[must_use]
    pub fn register_count(&self) -> usize {
        self.registers.count()
    }

    /// Number of functional-unit instances.
    #[must_use]
    pub fn fu_count(&self) -> usize {
        self.fu_count
    }

    /// Schedule length in cycles.
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Steps starting at `cycle`.
    pub fn steps_at(&self, cycle: u32) -> impl Iterator<Item = &ControlStep> + '_ {
        self.steps.iter().filter(move |s| s.start == cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_core::{Engine, SynthesisConstraints, SynthesisOptions};
    use pchls_fulib::paper_library;

    fn build_hal() -> (Cdfg, Datapath) {
        let g = pchls_cdfg::benchmarks::hal();
        let engine = Engine::new(paper_library());
        let compiled = engine.compile(&g);
        let d = engine
            .session(&compiled)
            .synthesize(
                SynthesisConstraints::new(17, 25.0),
                &SynthesisOptions::default(),
            )
            .unwrap();
        let dp = Datapath::build(&g, &d, engine.library());
        (g, dp)
    }

    #[test]
    fn one_step_per_operation() {
        let (g, dp) = build_hal();
        assert_eq!(dp.steps().len(), g.len());
    }

    #[test]
    fn steps_are_sorted_and_within_latency() {
        let (_, dp) = build_hal();
        let mut last = 0;
        for s in dp.steps() {
            assert!(s.start >= last);
            last = s.start;
            assert!(s.start + s.delay <= dp.latency());
        }
    }

    #[test]
    fn consumed_values_have_registers() {
        let (g, dp) = build_hal();
        for s in dp.steps() {
            for (port, src) in s.sources.iter().enumerate() {
                assert!(
                    src.is_some(),
                    "{} port {port} reads an unregistered value",
                    s.op
                );
            }
            let has_consumers = !g.successors(s.op).is_empty();
            assert_eq!(
                s.dest.is_some(),
                has_consumers && g.node(s.op).kind().produces_value()
            );
        }
    }

    #[test]
    fn no_instance_executes_two_steps_at_once() {
        let (_, dp) = build_hal();
        for (i, a) in dp.steps().iter().enumerate() {
            for b in &dp.steps()[i + 1..] {
                if a.instance == b.instance {
                    assert!(
                        a.start + a.delay <= b.start || b.start + b.delay <= a.start,
                        "{} and {} overlap on {}",
                        a.op,
                        b.op,
                        a.instance
                    );
                }
            }
        }
    }
}
