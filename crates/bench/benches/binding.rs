//! Scaling of compatibility-graph construction and clique partitioning
//! on random DAGs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pchls_bind::{bind_schedule, CompatibilityGraph, CostWeights};
use pchls_cdfg::{random_dag, RandomDagConfig, Reachability};
use pchls_fulib::{paper_library, SelectionPolicy};
use pchls_sched::{asap, TimingMap};

fn bench_binding(c: &mut Criterion) {
    let lib = paper_library();
    let mut group = c.benchmark_group("binding");
    for ops in [20usize, 50, 100] {
        let g = random_dag(&RandomDagConfig {
            ops,
            inputs: 4,
            outputs: 2,
            seed: 7,
            ..Default::default()
        });
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        let r = Reachability::new(&g);
        group.bench_with_input(BenchmarkId::new("compat_build", ops), &g, |b, g| {
            b.iter(|| CompatibilityGraph::build(g, &lib, &s, &s, &t, &r, &CostWeights::default()));
        });
        group.bench_with_input(BenchmarkId::new("bind_schedule", ops), &g, |b, g| {
            b.iter(|| bind_schedule(g, &lib, &s, &t, &CostWeights::default()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_binding);
criterion_main!(benches);
