//! Ablation: what each ingredient of the synthesis heuristic buys
//! (measured as wall time here; the area impact is reported by the
//! `ablation` rows of EXPERIMENTS.md via `cargo test -p pchls-bench`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pchls_cdfg::benchmarks;
use pchls_core::{Engine, SynthesisConstraints, SynthesisOptions};
use pchls_fulib::paper_library;

fn bench_ablation(c: &mut Criterion) {
    let engine = Engine::new(paper_library());
    let g = benchmarks::elliptic();
    let compiled = engine.compile(&g);
    let session = engine.session(&compiled);
    let constraints = SynthesisConstraints::new(26, 30.0);
    let variants = [
        ("full", SynthesisOptions::default()),
        (
            "no_module_selection",
            SynthesisOptions::builder().module_selection(false).build(),
        ),
        (
            "no_interconnect",
            SynthesisOptions::builder()
                .interconnect_scoring(false)
                .build(),
        ),
        (
            "no_backtracking",
            SynthesisOptions::builder().backtracking(false).build(),
        ),
    ];
    let mut group = c.benchmark_group("ablation");
    group.sample_size(20);
    for (name, opts) in variants {
        group.bench_with_input(BenchmarkId::new("elliptic-T26", name), &session, |b, s| {
            b.iter(|| {
                let _ = s.synthesize(constraints.clone(), &opts);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
