//! End-to-end synthesis cost for every Figure 2 curve (one representative
//! power bound per curve), plus the baselines for comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pchls_bench::figure2_curves;
use pchls_core::{Engine, SynthesisConstraints, SynthesisOptions};
use pchls_fulib::{paper_library, SelectionPolicy};

fn bench_synthesis(c: &mut Criterion) {
    let engine = Engine::new(paper_library());
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(20);
    for (g, t) in figure2_curves() {
        let id = format!("{}-T{t}", g.name());
        let compiled = engine.compile(&g);
        let session = engine.session(&compiled);
        let constraints = SynthesisConstraints::new(t, 40.0);
        group.bench_with_input(BenchmarkId::new("combined", &id), &session, |b, s| {
            b.iter(|| {
                s.synthesize(constraints.clone(), &SynthesisOptions::default())
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("two_step", &id), &session, |b, s| {
            b.iter(|| {
                // The baseline may fail power at tight latencies; timing
                // cost is what is measured.
                let _ = s.two_step(constraints.clone(), SelectionPolicy::Fastest);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
