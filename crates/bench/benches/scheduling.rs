//! Throughput of the scheduling algorithms on the paper benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pchls_cdfg::benchmarks;
use pchls_fulib::{paper_library, SelectionPolicy};
use pchls_sched::{alap, asap, force_directed, palap, pasap, two_step, TimingMap};

fn bench_scheduling(c: &mut Criterion) {
    let lib = paper_library();
    let mut group = c.benchmark_group("scheduling");
    for g in benchmarks::paper_set() {
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let cp = asap(&g, &t).latency(&t);
        let bound = 30.0;
        group.bench_with_input(BenchmarkId::new("asap", g.name()), &g, |b, g| {
            b.iter(|| asap(g, &t));
        });
        group.bench_with_input(BenchmarkId::new("alap", g.name()), &g, |b, g| {
            b.iter(|| alap(g, &t, cp + 4).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("pasap", g.name()), &g, |b, g| {
            b.iter(|| pasap(g, &t, bound, 200).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("palap", g.name()), &g, |b, g| {
            b.iter(|| palap(g, &t, bound, cp + 10).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("two_step", g.name()), &g, |b, g| {
            b.iter(|| two_step(g, &t, cp + 6, bound).unwrap());
        });
        let modules: Vec<_> = g
            .nodes()
            .iter()
            .map(|n| lib.select(n.kind(), SelectionPolicy::Fastest).unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::new("force_directed", g.name()), &g, |b, g| {
            b.iter(|| force_directed(g, &lib, &modules, cp + 2).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
