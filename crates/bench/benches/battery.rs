//! Evaluation cost of the battery models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pchls_battery::{BatteryModel, IdealBattery, PeukertBattery, RateCapacityBattery};

fn bench_battery(c: &mut Criterion) {
    let profile: Vec<f64> = (0..64)
        .map(|i| if i % 3 == 0 { 30.0 } else { 5.0 })
        .collect();
    let capacity = 1_000_000.0;
    let models: Vec<Box<dyn BatteryModel>> = vec![
        Box::new(IdealBattery::new(capacity)),
        Box::new(PeukertBattery::low_quality(capacity)),
        Box::new(RateCapacityBattery::low_quality(capacity)),
    ];
    let mut group = c.benchmark_group("battery");
    for m in &models {
        group.bench_with_input(BenchmarkId::new("lifetime", m.name()), &profile, |b, p| {
            b.iter(|| m.lifetime(p));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_battery);
criterion_main!(benches);
