//! Byte-diffs the rand200 decision trace against a committed golden.
//!
//! The synthesis kernel promises that every optimization — parallel
//! candidate scoring, the segment-tree ledger, the word-parallel
//! enumeration pipeline — leaves the *decision trace* bit-identical to
//! the naive reference. Within one build, differential tests enforce
//! that promise; **across** builds (and PRs), this test does: the full
//! rand200 design — schedule, timing, binding, effort counters — is
//! serialized to JSON and compared byte-for-byte against
//! `tests/golden/rand200.json`, which is committed. Any word-order
//! divergence, comparator drift, or enumeration reshuffle introduced by
//! a future kernel change shows up as a diff here, not as a silently
//! different Figure 2.
//!
//! To regenerate the golden after an *intentional* trace change (none
//! are expected — the trace has been stable since PR 2), run:
//!
//! ```sh
//! PCHLS_BLESS_GOLDEN=1 cargo test -p pchls-bench --test golden_trace
//! ```

use std::path::PathBuf;

use pchls_bench::rand200_case;
use pchls_core::{Engine, SynthesisOptions};
use pchls_fulib::paper_library;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("rand200.json")
}

#[test]
fn rand200_decision_trace_matches_committed_golden() {
    let (name, graph, constraints) = rand200_case();
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(&graph);
    let session = engine.session(&compiled);
    let opts = SynthesisOptions::default();

    // The serial kernel is the reference; the parallel path is asserted
    // equal to it elsewhere (BENCH_2's `outputs_identical`).
    let design = pchls_par::with_serial(|| session.synthesize(constraints.clone(), &opts))
        .unwrap_or_else(|e| panic!("{name} must be feasible: {e}"));
    let mut trace = serde_json::to_string_pretty(&design).expect("design serializes");
    trace.push('\n');

    let path = golden_path();
    if std::env::var_os("PCHLS_BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, &trace).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed golden {}: {e}", path.display()));
    assert_eq!(
        trace, golden,
        "rand200 decision trace diverged from the committed golden; \
         if (and only if) the change is intentional, re-bless with \
         PCHLS_BLESS_GOLDEN=1"
    );
}
