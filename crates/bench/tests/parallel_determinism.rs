//! The tentpole guarantee of the parallel exploration layer: fanning
//! grid points across cores must not change a single byte of the output.
//! Every Figure 2 curve is swept both ways (whole-figure
//! `Engine::sweep_batch` fan-out vs. the serial reference) over a
//! thinned power grid and compared for exact equality.

use pchls_bench::{figure2_curves, figure2_power_grid};
use pchls_core::{power_sweep_serial, Engine, SweepJob, SweepSpec, SynthesisOptions};
use pchls_fulib::paper_library;

/// Every 5th point of the Figure 2 grid: spans the whole axis (including
/// the infeasible low-power edge and the flat high-power tail) at a cost
/// debug-mode CI can afford.
fn thinned_grid() -> Vec<f64> {
    figure2_power_grid().into_iter().step_by(5).collect()
}

#[test]
fn sweep_batch_equals_serial_on_all_figure2_curves() {
    let lib = paper_library();
    let engine = Engine::new(lib.clone());
    let curves = figure2_curves();
    let grid = thinned_grid();
    let compiled: Vec<_> = curves.iter().map(|(g, _)| engine.compile(g)).collect();
    let jobs: Vec<SweepJob<'_>> = curves
        .iter()
        .zip(&compiled)
        .map(|((_, latency), c)| SweepJob {
            compiled: c,
            spec: SweepSpec::power(*latency, grid.clone()),
        })
        .collect();
    let parallel = engine.sweep_batch(&jobs, &SynthesisOptions::default());
    assert_eq!(parallel.len(), curves.len());
    for ((graph, latency), curve) in curves.iter().zip(&parallel) {
        let serial = power_sweep_serial(graph, &lib, *latency, &grid, &SynthesisOptions::default());
        assert_eq!(
            curve.points,
            serial,
            "{} T={latency} diverged",
            graph.name()
        );
    }
}

#[test]
fn per_curve_parallel_sweep_equals_serial_on_all_figure2_curves() {
    let lib = paper_library();
    let engine = Engine::new(lib.clone());
    let grid = thinned_grid();
    for (graph, latency) in figure2_curves() {
        let compiled = engine.compile(&graph);
        let parallel = engine.session(&compiled).sweep(
            &SweepSpec::power(latency, grid.clone()),
            &SynthesisOptions::default(),
        );
        let serial = power_sweep_serial(&graph, &lib, latency, &grid, &SynthesisOptions::default());
        assert_eq!(
            parallel.points,
            serial,
            "{} T={latency} diverged",
            graph.name()
        );
    }
}

#[test]
fn parallel_sweeps_are_reproducible_across_runs() {
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(&pchls_cdfg::benchmarks::elliptic());
    let spec = SweepSpec::power(22, thinned_grid());
    let a = engine
        .session(&compiled)
        .sweep(&spec, &SynthesisOptions::default());
    let b = engine
        .session(&compiled)
        .sweep(&spec, &SynthesisOptions::default());
    assert_eq!(a, b);
}

/// The kernel-level guarantee: parallel candidate scoring inside
/// `synthesize` must reproduce the serial decision trace — designs *and*
/// effort counters — on every Figure 2 curve, across the whole power
/// axis (feasible and infeasible points alike).
#[test]
fn kernel_parallel_scoring_reproduces_serial_trace_on_figure2_curves() {
    let engine = Engine::new(paper_library());
    let opts = SynthesisOptions::default();
    for (graph, latency) in figure2_curves() {
        let compiled = engine.compile(&graph);
        let session = engine.session(&compiled);
        for power in thinned_grid() {
            let constraints = pchls_core::SynthesisConstraints::new(latency, power);
            let serial = pchls_par::with_serial(|| session.synthesize(constraints.clone(), &opts));
            let parallel = session.synthesize(constraints, &opts);
            match (serial, parallel) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "{} T={latency} P={power} design", graph.name());
                    assert_eq!(
                        a.stats,
                        b.stats,
                        "{} T={latency} P={power} trace",
                        graph.name()
                    );
                }
                (Err(_), Err(_)) => {}
                (s, p) => panic!(
                    "{} T={latency} P={power}: feasibility diverged (serial ok: {}, parallel ok: {})",
                    graph.name(),
                    s.is_ok(),
                    p.is_ok()
                ),
            }
        }
    }
}

/// Larger-than-paper graphs cross the kernel's parallel threshold from
/// the first iteration; the serial trace must still be reproduced.
#[test]
fn kernel_parallel_scoring_reproduces_serial_trace_on_large_random_graphs() {
    let lib = paper_library();
    let engine = Engine::new(lib.clone());
    let opts = SynthesisOptions::default();
    for seed in [11, 12] {
        let graph = pchls_cdfg::random_dag(&pchls_cdfg::RandomDagConfig {
            ops: 60,
            inputs: 6,
            outputs: 3,
            mul_permille: 300,
            depth_bias: 2,
            seed,
        });
        let timing = pchls_sched::TimingMap::from_policy(
            &graph,
            &lib,
            pchls_fulib::SelectionPolicy::Fastest,
        );
        let latency = pchls_sched::asap(&graph, &timing).latency(&timing) * 2;
        let constraints = pchls_core::SynthesisConstraints::new(latency, 60.0);
        let compiled = engine.compile(&graph);
        let session = engine.session(&compiled);
        let serial = pchls_par::with_serial(|| session.synthesize(constraints.clone(), &opts))
            .expect("feasible");
        let parallel = session.synthesize(constraints, &opts).expect("feasible");
        assert_eq!(serial, parallel, "seed {seed} design");
        assert_eq!(serial.stats, parallel.stats, "seed {seed} trace");
    }
}
