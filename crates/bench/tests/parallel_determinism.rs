//! The tentpole guarantee of the parallel exploration layer: fanning
//! grid points across cores must not change a single byte of the output.
//! Every Figure 2 curve is swept both ways (whole-figure `sweep_many`
//! fan-out vs. the serial reference) over a thinned power grid and
//! compared for exact equality.

use pchls_bench::{figure2_curves, figure2_power_grid};
use pchls_core::{power_sweep, power_sweep_serial, sweep_many, SweepRequest, SynthesisOptions};
use pchls_fulib::paper_library;

/// Every 5th point of the Figure 2 grid: spans the whole axis (including
/// the infeasible low-power edge and the flat high-power tail) at a cost
/// debug-mode CI can afford.
fn thinned_grid() -> Vec<f64> {
    figure2_power_grid().into_iter().step_by(5).collect()
}

#[test]
fn sweep_many_equals_serial_on_all_figure2_curves() {
    let lib = paper_library();
    let curves = figure2_curves();
    let grid = thinned_grid();
    let requests: Vec<SweepRequest<'_>> = curves
        .iter()
        .map(|(graph, latency)| SweepRequest {
            graph,
            latency: *latency,
            powers: &grid,
        })
        .collect();
    let parallel = sweep_many(&requests, &lib, &SynthesisOptions::default());
    assert_eq!(parallel.len(), curves.len());
    for ((graph, latency), curve) in curves.iter().zip(&parallel) {
        let serial = power_sweep_serial(graph, &lib, *latency, &grid, &SynthesisOptions::default());
        assert_eq!(curve, &serial, "{} T={latency} diverged", graph.name());
    }
}

#[test]
fn per_curve_parallel_sweep_equals_serial_on_all_figure2_curves() {
    let lib = paper_library();
    let grid = thinned_grid();
    for (graph, latency) in figure2_curves() {
        let parallel = power_sweep(&graph, &lib, latency, &grid, &SynthesisOptions::default());
        let serial = power_sweep_serial(&graph, &lib, latency, &grid, &SynthesisOptions::default());
        assert_eq!(parallel, serial, "{} T={latency} diverged", graph.name());
    }
}

#[test]
fn parallel_sweeps_are_reproducible_across_runs() {
    let lib = paper_library();
    let g = pchls_cdfg::benchmarks::elliptic();
    let grid = thinned_grid();
    let a = power_sweep(&g, &lib, 22, &grid, &SynthesisOptions::default());
    let b = power_sweep(&g, &lib, 22, &grid, &SynthesisOptions::default());
    assert_eq!(a, b);
}
