//! Regression dashboard: every benchmark through the paper algorithm,
//! the refined variant and the portfolio at standard constraints, with
//! the extended (registers + muxes) area breakdown — followed by the
//! Figure 2 regeneration perf measurement (serial vs. parallel), which
//! is dumped to `BENCH_1.json` as the tracked performance trajectory.

use std::time::Instant;

use serde::Serialize;

use pchls_bench::{figure2_curves, figure2_power_grid, run_curve_serial, run_figure2};
use pchls_cdfg::benchmarks;
use pchls_core::{area_breakdown, AreaModel, Engine, SynthesisConstraints, SynthesisOptions};
use pchls_fulib::paper_library;

/// The perf-trajectory record (`BENCH_*.json`): one file per PR, so the
/// wall-clock history of the Figure 2 regeneration is tracked in-repo.
#[derive(Debug, Serialize)]
struct BenchRecord {
    /// Trajectory schema marker.
    schema: String,
    /// What is being timed.
    workload: String,
    /// Synthesis points per full regeneration (curves × grid).
    points: usize,
    /// Worker threads the parallel run used.
    threads: usize,
    /// Host cores (`available_parallelism`); speedup is bounded by this.
    host_cores: usize,
    /// Wall-clock seconds for the curve-at-a-time serial reference.
    serial_secs: f64,
    /// Wall-clock seconds for the `sweep_many` whole-figure fan-out.
    parallel_secs: f64,
    /// `serial_secs / parallel_secs`.
    speedup: f64,
    /// Whether parallel output was byte-identical to serial.
    outputs_identical: bool,
}

fn figure2_perf() -> BenchRecord {
    let lib = paper_library();
    let curves = figure2_curves();
    let points = curves.len() * figure2_power_grid().len();

    // `with_serial` keeps the reference fully serial: without it the
    // kernel's own candidate-scoring fan-out (PR 2) would run inside
    // the "serial" timing loop on multi-core hosts and silently change
    // what this trajectory number means.
    let start = Instant::now();
    let serial: Vec<_> = pchls_par::with_serial(|| {
        curves
            .iter()
            .map(|(g, t)| run_curve_serial(g, &lib, *t))
            .collect()
    });
    let serial_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = run_figure2(&lib);
    let parallel_secs = start.elapsed().as_secs_f64();

    BenchRecord {
        schema: "pchls-bench-v1".into(),
        workload: "figure2-regeneration".into(),
        points,
        threads: pchls_par::thread_count(),
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        serial_secs,
        parallel_secs,
        speedup: serial_secs / parallel_secs,
        outputs_identical: serial == parallel,
    }
}

fn main() {
    let engine = Engine::new(paper_library());
    let opts = SynthesisOptions::default();
    println!(
        "{:<10} {:>4} {:>6} | {:>6} {:>7} {:>7} | {:>5} {:>5} {:>6}",
        "benchmark", "T", "P<", "paper", "refined", "portf.", "regs", "muxes", "full"
    );
    println!("{}", "-".repeat(76));
    for g in benchmarks::all() {
        let compiled = engine.compile(&g);
        let session = engine.session(&compiled);
        // Standard constraints: 1.5x the fastest critical path (the
        // compiled graph's minimum latency), a power budget of 40.
        let t = compiled.min_latency() * 3 / 2;
        let c = SynthesisConstraints::new(t, 40.0);
        let paper = session.synthesize(c.clone(), &opts);
        let refined = session.synthesize_refined(c.clone(), &opts);
        let portfolio = session.synthesize_portfolio(c, &opts);
        let fmt = |r: &Result<pchls_core::SynthesizedDesign, _>| match r {
            Ok(d) => d.area.to_string(),
            Err(_) => "-".into(),
        };
        let (regs, muxes, full) = match &portfolio {
            Ok(d) => {
                let b = area_breakdown(d, &g, AreaModel::with_storage());
                (
                    (b.registers / u64::from(AreaModel::with_storage().register)).to_string(),
                    (b.interconnect / u64::from(AreaModel::with_storage().mux_input)).to_string(),
                    b.total().to_string(),
                )
            }
            Err(_) => ("-".into(), "-".into(), "-".into()),
        };
        println!(
            "{:<10} {:>4} {:>6} | {:>6} {:>7} {:>7} | {:>5} {:>5} {:>6}",
            g.name(),
            t,
            40.0,
            fmt(&paper),
            fmt(&refined),
            fmt(&portfolio),
            regs,
            muxes,
            full
        );
    }

    println!("\nFigure 2 regeneration (serial vs. parallel sweep_many)…");
    let record = figure2_perf();
    println!(
        "{} points | {} thread(s) on {} core(s) | serial {:.2}s | parallel {:.2}s | speedup {:.2}x | identical: {}",
        record.points,
        record.threads,
        record.host_cores,
        record.serial_secs,
        record.parallel_secs,
        record.speedup,
        record.outputs_identical,
    );
    let json = serde_json::to_string_pretty(&record).expect("serializable");
    std::fs::write("BENCH_1.json", json).expect("write BENCH_1.json");
    eprintln!("wrote BENCH_1.json");
}
