//! Regression dashboard: every benchmark through the paper algorithm,
//! the refined variant and the portfolio at standard constraints, with
//! the extended (registers + muxes) area breakdown.

use pchls_cdfg::benchmarks;
use pchls_core::{
    area_breakdown, synthesize, synthesize_portfolio, synthesize_refined, AreaModel,
    SynthesisConstraints, SynthesisOptions,
};
use pchls_fulib::paper_library;

fn main() {
    let lib = paper_library();
    let opts = SynthesisOptions::default();
    println!(
        "{:<10} {:>4} {:>6} | {:>6} {:>7} {:>7} | {:>5} {:>5} {:>6}",
        "benchmark", "T", "P<", "paper", "refined", "portf.", "regs", "muxes", "full"
    );
    println!("{}", "-".repeat(76));
    for g in benchmarks::all() {
        // Standard constraints: 1.5x the fastest critical path, a power
        // budget of 40.
        let t = {
            let timing = pchls_sched::TimingMap::from_policy(
                &g,
                &lib,
                pchls_fulib::SelectionPolicy::Fastest,
            );
            pchls_sched::asap(&g, &timing).latency(&timing) * 3 / 2
        };
        let c = SynthesisConstraints::new(t, 40.0);
        let paper = synthesize(&g, &lib, c, &opts);
        let refined = synthesize_refined(&g, &lib, c, &opts);
        let portfolio = synthesize_portfolio(&g, &lib, c, &opts);
        let fmt = |r: &Result<pchls_core::SynthesizedDesign, _>| match r {
            Ok(d) => d.area.to_string(),
            Err(_) => "-".into(),
        };
        let (regs, muxes, full) = match &portfolio {
            Ok(d) => {
                let b = area_breakdown(d, &g, AreaModel::with_storage());
                (
                    (b.registers / u64::from(AreaModel::with_storage().register)).to_string(),
                    (b.interconnect / u64::from(AreaModel::with_storage().mux_input)).to_string(),
                    b.total().to_string(),
                )
            }
            Err(_) => ("-".into(), "-".into(), "-".into()),
        };
        println!(
            "{:<10} {:>4} {:>6} | {:>6} {:>7} {:>7} | {:>5} {:>5} {:>6}",
            g.name(),
            t,
            40.0,
            fmt(&paper),
            fmt(&refined),
            fmt(&portfolio),
            regs,
            muxes,
            full
        );
    }
}
