//! Regenerates Figure 2 of the paper: functional-unit area as a function
//! of the power constraint, for hal (T = 10, 17), cosine (T = 12, 15,
//! 19) and elliptic (T = 22). Results are printed per curve and dumped to
//! `results/figure2.json`.

use pchls_bench::{dump_json, figure2_curves, format_points, run_curve};
use pchls_fulib::paper_library;

fn main() {
    let lib = paper_library();
    let mut all = Vec::new();
    println!("Figure 2. Power vs. area under different time constraints.");
    for (graph, latency) in figure2_curves() {
        println!("\n=== {} (T={latency}) ===", graph.name());
        let points = run_curve(&graph, &lib, latency);
        print!("{}", format_points(&points));
        all.extend(points);
    }
    dump_json("figure2", &all);
}
