//! Kernel-focused scaling benchmark: times the synthesis kernel itself
//! (not the sweep layer) on the paper's benchmarks and on progressively
//! larger random CDFGs, serial vs. parallel candidate scoring, and
//! writes the measurement to `BENCH_2.json` (`pchls-bench-v1`, workload
//! `synthesis-kernel`).
//!
//! `--smoke` runs a seconds-scale subset (small graphs, one repetition)
//! so CI can keep the workload from rotting.
//!
//! Serial timings run under [`pchls_par::with_serial`], which forces
//! every `par_map` inside the kernel onto the calling thread — the
//! in-process A/B switch — and both sides are compared for exact
//! equality (`outputs_identical`): parallel scoring must reproduce the
//! serial decision trace bit for bit.

use std::time::Instant;

use serde::Serialize;

use pchls_cdfg::{benchmarks, random_dag, Cdfg, RandomDagConfig};
use pchls_core::{synthesize, SynthesisConstraints, SynthesisOptions};
use pchls_fulib::{paper_library, SelectionPolicy};
use pchls_sched::TimingMap;

/// One timed case of the workload.
struct Case {
    name: String,
    graph: Cdfg,
    constraints: SynthesisConstraints,
}

/// Per-case record in `BENCH_2.json`.
#[derive(Debug, Serialize)]
struct CaseRecord {
    /// Case label (benchmark name or random-graph descriptor).
    name: String,
    /// Node count of the CDFG.
    nodes: usize,
    /// Latency constraint `T`.
    latency_bound: u32,
    /// Power constraint `P<`.
    power_bound: f64,
    /// Synthesis repetitions per side.
    reps: usize,
    /// Wall-clock seconds for the serial-kernel side.
    serial_secs: f64,
    /// Wall-clock seconds for the parallel-kernel side.
    parallel_secs: f64,
    /// Whether synthesis succeeded (both sides must agree).
    feasible: bool,
}

/// The perf-trajectory record (`BENCH_*.json`), same top-level fields as
/// `suite`'s `BENCH_1.json` so the trajectory stays comparable.
#[derive(Debug, Serialize)]
struct BenchRecord {
    /// Trajectory schema marker.
    schema: String,
    /// What is being timed.
    workload: String,
    /// Synthesis runs per side (cases × reps).
    points: usize,
    /// Worker threads the parallel side may use.
    threads: usize,
    /// Host cores (`available_parallelism`); speedup is bounded by this.
    host_cores: usize,
    /// Wall-clock seconds for the serial-kernel side.
    serial_secs: f64,
    /// Wall-clock seconds for the parallel-kernel side.
    parallel_secs: f64,
    /// `serial_secs / parallel_secs`.
    speedup: f64,
    /// Whether parallel scoring reproduced the serial designs exactly.
    outputs_identical: bool,
    /// Per-case breakdown.
    cases: Vec<CaseRecord>,
}

/// Latency bound for a graph: twice the fastest-module critical path —
/// generous enough that pasap can stretch under the power cap, tight
/// enough that module selection and pair merging stay non-trivial.
fn latency_for(graph: &Cdfg) -> u32 {
    let lib = paper_library();
    let timing = TimingMap::from_policy(graph, &lib, SelectionPolicy::Fastest);
    pchls_sched::asap(graph, &timing).latency(&timing) * 2
}

fn random_case(ops: usize, seed: u64, power: f64) -> Case {
    let graph = random_dag(&RandomDagConfig {
        ops,
        inputs: 6,
        outputs: 3,
        mul_permille: 300,
        depth_bias: 2,
        seed,
    });
    let constraints = SynthesisConstraints::new(latency_for(&graph), power);
    Case {
        name: format!("rand{ops}/{seed}"),
        graph,
        constraints,
    }
}

fn paper_case(graph: Cdfg, latency: u32, power: f64) -> Case {
    Case {
        name: graph.name().to_owned(),
        constraints: SynthesisConstraints::new(latency, power),
        graph,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let lib = paper_library();
    let opts = SynthesisOptions::default();

    let (cases, reps) = if smoke {
        (
            vec![
                paper_case(benchmarks::hal(), 17, 25.0),
                random_case(30, 11, 60.0),
            ],
            1,
        )
    } else {
        (
            vec![
                paper_case(benchmarks::hal(), 17, 25.0),
                paper_case(benchmarks::cosine(), 15, 40.0),
                paper_case(benchmarks::elliptic(), 22, 30.0),
                random_case(60, 11, 60.0),
                random_case(120, 12, 60.0),
                random_case(200, 13, 60.0),
            ],
            3,
        )
    };

    let mut records = Vec::new();
    let mut outputs_identical = true;
    println!(
        "{:<12} {:>5} {:>4} {:>6} | {:>10} {:>10} {:>7} {:>9}",
        "case", "nodes", "T", "P<", "serial_s", "par_s", "speedup", "identical"
    );
    println!("{}", "-".repeat(72));
    for case in &cases {
        // Warm-up (untimed) run so allocator state is comparable.
        let _ = synthesize(&case.graph, &lib, case.constraints, &opts);

        let start = Instant::now();
        let mut serial = Vec::new();
        for _ in 0..reps {
            serial.push(pchls_par::with_serial(|| {
                synthesize(&case.graph, &lib, case.constraints, &opts)
            }));
        }
        let serial_secs = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let mut parallel = Vec::new();
        for _ in 0..reps {
            parallel.push(synthesize(&case.graph, &lib, case.constraints, &opts));
        }
        let parallel_secs = start.elapsed().as_secs_f64();

        let identical = serial.iter().zip(&parallel).all(|(s, p)| match (s, p) {
            (Ok(a), Ok(b)) => a == b && a.stats == b.stats,
            (Err(_), Err(_)) => true,
            _ => false,
        });
        outputs_identical &= identical;
        let feasible = serial[0].is_ok();
        println!(
            "{:<12} {:>5} {:>4} {:>6} | {:>10.4} {:>10.4} {:>6.2}x {:>9}",
            case.name,
            case.graph.len(),
            case.constraints.latency,
            case.constraints.max_power,
            serial_secs,
            parallel_secs,
            serial_secs / parallel_secs,
            identical,
        );
        records.push(CaseRecord {
            name: case.name.clone(),
            nodes: case.graph.len(),
            latency_bound: case.constraints.latency,
            power_bound: case.constraints.max_power,
            reps,
            serial_secs,
            parallel_secs,
            feasible,
        });
    }

    let serial_secs: f64 = records.iter().map(|r| r.serial_secs).sum();
    let parallel_secs: f64 = records.iter().map(|r| r.parallel_secs).sum();
    let record = BenchRecord {
        schema: "pchls-bench-v1".into(),
        workload: "synthesis-kernel".into(),
        points: cases.len() * reps,
        threads: pchls_par::thread_count(),
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        serial_secs,
        parallel_secs,
        speedup: serial_secs / parallel_secs,
        outputs_identical,
        cases: records,
    };
    println!(
        "\ntotal: serial {:.3}s | parallel {:.3}s | speedup {:.2}x | identical: {}",
        record.serial_secs, record.parallel_secs, record.speedup, record.outputs_identical
    );
    assert!(
        record.outputs_identical,
        "parallel candidate scoring diverged from the serial decision trace"
    );
    let json = serde_json::to_string_pretty(&record).expect("serializable");
    std::fs::write("BENCH_2.json", json).expect("write BENCH_2.json");
    eprintln!("wrote BENCH_2.json");
}
