//! Kernel-focused scaling benchmark: times the synthesis kernel itself
//! (not the sweep layer) on the paper's benchmarks and on progressively
//! larger random CDFGs, serial vs. parallel candidate scoring, and
//! writes the measurement to `BENCH_2.json` (`pchls-bench-v1`, workload
//! `synthesis-kernel`). A second workload, `engine-amortized`, times a
//! whole constraint sweep through one compile-once [`Session`] against
//! the per-point-recompute free-function path and writes `BENCH_3.json`.
//! A third workload, `service-throughput`, drives M concurrent clients
//! × K requests each through the `pchls-serve` [`Service`] (bounded
//! queue, worker pool, content-addressed compile cache) over a
//! repeated-graph mix, asserts every response is **byte-identical** to
//! direct [`Session::synthesize`] output, and writes `BENCH_4.json`.
//!
//! A fourth workload, `envelope-kernel`, measures the [`PowerBudget`]
//! generalization (`BENCH_5.json`): the scalar path vs. an equal-bound
//! constant envelope (which must collapse to the scalar fast path —
//! byte-identical designs, parity wall clock) and a genuinely stepwise
//! envelope driving the slack-min ledger mode.
//!
//! A fifth workload, `scaling`, records honest per-thread-count
//! wall-clock curves (`BENCH_6.json`): the sweep fan-out (one
//! Figure 2 curve through [`Session::sweep`]) and the candidate-scoring
//! fan-out (one large random-graph synthesis) are each timed under
//! [`pchls_par::with_thread_count`] at 1/2/4/8 workers capped at the
//! pool width. On a single-core host the curve degrades gracefully to
//! an explicit one-point record (`single_point: true`); on multi-core
//! hosts the sweep curve must hit parallel efficiency ≥ 0.6 at two
//! threads and never degrade by more than 10% when threads are added.
//! Outputs must be identical across every thread count, always.
//! `PCHLS_THREADS` widens or pins the pool, making curves reproducible.
//!
//! A sixth workload, `store`, measures the persistent result store
//! (`BENCH_7.json`): a rand200-class constraint grid synthesized cold
//! vs. read warm from a `pchls-store` file — full records and
//! area-column-only partial reads — with every store-served point
//! byte-diffed against the fresh session output.
//!
//! A seventh workload, `overload`, drives the reactor TCP front end
//! (`BENCH_8.json`): a warm phase (concurrent clients over a
//! result-tier-hot mix, byte-diffed and throughput-compared against the
//! committed `service-throughput` number), an overload phase (a burst
//! of heavy synthesis jobs into one deliberately tiny shard, asserting
//! every request is answered — shed ones with a well-formed
//! `overloaded` error, zero malformed or dropped — while warm probes
//! keep flowing on the hit lane), and a rate-limit phase (a pipelined
//! flood through a per-connection token bucket). Every phase shuts its
//! serve loop down cleanly through a [`ShutdownHandle`].
//!
//! An eighth workload, `phases`, measures the `pchls-obs` tracing layer
//! on the synthesis kernel (`BENCH_9.json`): the rand200 case timed
//! with tracing disabled vs. enabled (outputs byte-diffed — spans must
//! never perturb the decision trace), per-phase wall-clock totals from
//! the recorded spans (compile, candidate scoring, ledger fits, FDS
//! refits, TopK, commit), and a disabled-path microbenchmark (ns per
//! span site with the tracer off) that bounds the overhead the
//! instrumentation adds when nobody is tracing.
//!
//! A ninth workload, `edits`, replays random single-op graph edits
//! through the incremental re-synthesis path (`BENCH_10.json`): each
//! edit is synthesized cold (full compile + full kernel run) and
//! incrementally ([`Engine::recompile`] +
//! [`Session::resynthesize`](pchls_core::Session) seeded from a
//! recorded base run), the two designs are byte-diffed — decision
//! traces and effort counters included — and the per-edit wall-clock
//! ratio is recorded with its median asserted on multi-core hosts.
//!
//! `--smoke` runs a seconds-scale subset (small graphs, one repetition)
//! so CI can keep the workloads from rotting.
//!
//! Serial timings run under [`pchls_par::with_serial`], which forces
//! every `par_map` inside the kernel onto the calling thread — the
//! in-process A/B switch — and both sides are compared for exact
//! equality (`outputs_identical`): parallel scoring must reproduce the
//! serial decision trace bit for bit, and the amortized session must
//! reproduce the free-function designs bit for bit.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Instant;

use serde::Serialize;

use pchls_bench::{figure2_power_grid, scale_random_case};
use pchls_cdfg::{benchmarks, write_cdfg, Cdfg};
use pchls_core::{
    Engine, PowerBudget, Session, SweepSpec, SynthesisConstraints, SynthesisOptions,
    SynthesisRequest, SynthesizedDesign,
};
use pchls_fulib::{paper_library, ModuleLibrary};
use pchls_serve::{
    serve_tcp_with, Service, ServiceConfig, ShutdownHandle, SubmitRequest, SubmitResponse,
};

/// One timed case of the kernel workload.
struct Case {
    name: String,
    graph: Cdfg,
    constraints: SynthesisConstraints,
}

/// Per-case record in `BENCH_2.json`.
#[derive(Debug, Serialize)]
struct CaseRecord {
    /// Case label (benchmark name or random-graph descriptor).
    name: String,
    /// Node count of the CDFG.
    nodes: usize,
    /// Latency constraint `T`.
    latency_bound: u32,
    /// Power constraint `P<`.
    power_bound: f64,
    /// Synthesis repetitions per side.
    reps: usize,
    /// Wall-clock seconds for the serial-kernel side.
    serial_secs: f64,
    /// Wall-clock seconds for the parallel-kernel side.
    parallel_secs: f64,
    /// Whether synthesis succeeded (both sides must agree).
    feasible: bool,
}

/// The perf-trajectory record (`BENCH_*.json`), same top-level fields as
/// `suite`'s `BENCH_1.json` so the trajectory stays comparable.
#[derive(Debug, Serialize)]
struct BenchRecord {
    /// Trajectory schema marker.
    schema: String,
    /// What is being timed.
    workload: String,
    /// Synthesis runs per side (cases × reps).
    points: usize,
    /// Worker threads the parallel side may use.
    threads: usize,
    /// Host cores (`available_parallelism`); speedup is bounded by this.
    host_cores: usize,
    /// Wall-clock seconds for the serial-kernel side.
    serial_secs: f64,
    /// Wall-clock seconds for the parallel-kernel side.
    parallel_secs: f64,
    /// `serial_secs / parallel_secs`.
    speedup: f64,
    /// Whether parallel scoring reproduced the serial designs exactly.
    outputs_identical: bool,
    /// Per-case breakdown.
    cases: Vec<CaseRecord>,
}

/// Per-case record of the `engine-amortized` workload (`BENCH_3.json`).
#[derive(Debug, Serialize)]
struct AmortizedCaseRecord {
    /// Benchmark name.
    name: String,
    /// Node count of the CDFG.
    nodes: usize,
    /// Latency constraint `T` of the sweep.
    latency_bound: u32,
    /// Grid points in the sweep.
    points: usize,
    /// Timing repetitions (minimum taken per side).
    reps: usize,
    /// Best wall-clock seconds for the per-point-recompute path (one
    /// throwaway engine + compile per grid point — the deprecated
    /// free-function behaviour).
    per_point_secs: f64,
    /// Best wall-clock seconds for the compile-once session path.
    amortized_secs: f64,
    /// `per_point_secs / amortized_secs`.
    speedup: f64,
}

/// The `engine-amortized` trajectory record (`BENCH_3.json`).
#[derive(Debug, Serialize)]
struct AmortizedRecord {
    /// Trajectory schema marker.
    schema: String,
    /// What is being timed.
    workload: String,
    /// Total synthesis points per side (sum over cases).
    points: usize,
    /// Both sides run serially (the comparison isolates compile
    /// amortization, not parallel fan-out).
    threads: usize,
    /// Host cores.
    host_cores: usize,
    /// Sum of the per-case best per-point-path seconds.
    per_point_secs: f64,
    /// Sum of the per-case best amortized-path seconds.
    amortized_secs: f64,
    /// `per_point_secs / amortized_secs`.
    speedup: f64,
    /// Whether the session designs equal the free-function designs
    /// bit for bit on every point.
    outputs_identical: bool,
    /// Per-case breakdown.
    cases: Vec<AmortizedCaseRecord>,
}

/// A random-graph case, delegated to [`scale_random_case`] so the bench
/// bins and the committed golden trace are pinned to the same graphs.
fn random_case(ops: usize, seed: u64, power: f64) -> Case {
    let (name, graph, constraints) = scale_random_case(ops, seed, power);
    Case {
        name,
        graph,
        constraints,
    }
}

fn paper_case(graph: Cdfg, latency: u32, power: f64) -> Case {
    Case {
        name: graph.name().to_owned(),
        constraints: SynthesisConstraints::new(latency, power),
        graph,
    }
}

/// The `synthesis-kernel` workload: serial vs. parallel candidate
/// scoring through one shared session per case (BENCH_2.json).
fn kernel_workload(smoke: bool, engine: &Engine, opts: &SynthesisOptions) {
    let (cases, reps) = if smoke {
        (
            vec![
                paper_case(benchmarks::hal(), 17, 25.0),
                random_case(30, 11, 60.0),
            ],
            1,
        )
    } else {
        (
            vec![
                paper_case(benchmarks::hal(), 17, 25.0),
                paper_case(benchmarks::cosine(), 15, 40.0),
                paper_case(benchmarks::elliptic(), 22, 30.0),
                random_case(60, 11, 60.0),
                random_case(120, 12, 60.0),
                random_case(200, 13, 60.0),
            ],
            3,
        )
    };

    let mut records = Vec::new();
    let mut outputs_identical = true;
    println!(
        "{:<12} {:>5} {:>4} {:>6} | {:>10} {:>10} {:>7} {:>9}",
        "case", "nodes", "T", "P<", "serial_s", "par_s", "speedup", "identical"
    );
    println!("{}", "-".repeat(72));
    for case in &cases {
        let compiled = engine.compile(&case.graph);
        let session = engine.session(&compiled);
        // Warm-up (untimed) run so allocator state is comparable.
        let _ = session.synthesize(case.constraints.clone(), opts);

        let start = Instant::now();
        let mut serial = Vec::new();
        for _ in 0..reps {
            serial.push(pchls_par::with_serial(|| {
                session.synthesize(case.constraints.clone(), opts)
            }));
        }
        let serial_secs = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let mut parallel = Vec::new();
        for _ in 0..reps {
            parallel.push(session.synthesize(case.constraints.clone(), opts));
        }
        let parallel_secs = start.elapsed().as_secs_f64();

        let identical = serial.iter().zip(&parallel).all(|(s, p)| match (s, p) {
            (Ok(a), Ok(b)) => a == b && a.stats == b.stats,
            (Err(_), Err(_)) => true,
            _ => false,
        });
        outputs_identical &= identical;
        let feasible = serial[0].is_ok();
        println!(
            "{:<12} {:>5} {:>4} {:>6} | {:>10.4} {:>10.4} {:>6.2}x {:>9}",
            case.name,
            case.graph.len(),
            case.constraints.latency,
            case.constraints.max_power(),
            serial_secs,
            parallel_secs,
            serial_secs / parallel_secs,
            identical,
        );
        records.push(CaseRecord {
            name: case.name.clone(),
            nodes: case.graph.len(),
            latency_bound: case.constraints.latency,
            power_bound: case.constraints.max_power(),
            reps,
            serial_secs,
            parallel_secs,
            feasible,
        });
    }

    let serial_secs: f64 = records.iter().map(|r| r.serial_secs).sum();
    let parallel_secs: f64 = records.iter().map(|r| r.parallel_secs).sum();
    let record = BenchRecord {
        schema: "pchls-bench-v1".into(),
        workload: "synthesis-kernel".into(),
        points: records.len() * reps,
        threads: pchls_par::thread_count(),
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        serial_secs,
        parallel_secs,
        speedup: serial_secs / parallel_secs,
        outputs_identical,
        cases: records,
    };
    println!(
        "\ntotal: serial {:.3}s | parallel {:.3}s | speedup {:.2}x | identical: {}",
        record.serial_secs, record.parallel_secs, record.speedup, record.outputs_identical
    );
    assert!(
        record.outputs_identical,
        "parallel candidate scoring diverged from the serial decision trace"
    );
    let json = serde_json::to_string_pretty(&record).expect("serializable");
    std::fs::write("BENCH_2.json", json).expect("write BENCH_2.json");
    eprintln!("wrote BENCH_2.json");
}

/// One serial pass over `grid` through the per-point-recompute path:
/// a throwaway engine + compile for every point, exactly what the
/// deprecated free `synthesize` does.
fn sweep_per_point(
    graph: &Cdfg,
    library: &ModuleLibrary,
    latency: u32,
    grid: &[f64],
    opts: &SynthesisOptions,
) -> Vec<Result<SynthesizedDesign, pchls_core::SynthesisError>> {
    grid.iter()
        .map(|&p| {
            let engine = Engine::new(library.clone());
            let compiled = engine.compile(graph);
            engine
                .session(&compiled)
                .synthesize(SynthesisConstraints::new(latency, p), opts)
        })
        .collect()
}

/// One serial pass over `grid` through the compile-once session.
fn sweep_amortized(
    session: &Session<'_>,
    latency: u32,
    grid: &[f64],
    opts: &SynthesisOptions,
) -> Vec<Result<SynthesizedDesign, pchls_core::SynthesisError>> {
    grid.iter()
        .map(|&p| session.synthesize(SynthesisConstraints::new(latency, p), opts))
        .collect()
}

/// The `engine-amortized` workload: a whole power sweep per benchmark,
/// compile-once session vs. per-point recompute, both fully serial
/// (BENCH_3.json). Best-of-`reps` per side filters scheduler noise.
fn amortized_workload(smoke: bool, opts: &SynthesisOptions) {
    let library = paper_library();
    let engine = Engine::new(library.clone());
    let full_grid = figure2_power_grid();
    let thin_grid: Vec<f64> = full_grid.iter().copied().step_by(5).collect();
    // (graph, T, grid): the Figure 2 hal/cosine/elliptic curves.
    let (cases, reps): (Vec<(Cdfg, u32, Vec<f64>)>, usize) = if smoke {
        (vec![(benchmarks::hal(), 17, thin_grid)], 2)
    } else {
        (
            vec![
                (benchmarks::hal(), 17, full_grid.clone()),
                (benchmarks::cosine(), 15, full_grid.clone()),
                (benchmarks::elliptic(), 22, full_grid),
            ],
            5,
        )
    };

    println!(
        "\n{:<12} {:>5} {:>4} {:>6} | {:>12} {:>12} {:>7}",
        "sweep", "nodes", "T", "points", "per_point_s", "amortized_s", "speedup"
    );
    println!("{}", "-".repeat(72));
    let mut records = Vec::new();
    let mut outputs_identical = true;
    for (graph, latency, grid) in &cases {
        let compiled = engine.compile(graph);
        let session = engine.session(&compiled);
        // Warm-up + equality check (untimed).
        let reference =
            pchls_par::with_serial(|| sweep_per_point(graph, &library, *latency, grid, opts));
        let amortized_designs =
            pchls_par::with_serial(|| sweep_amortized(&session, *latency, grid, opts));
        let identical = reference
            .iter()
            .zip(&amortized_designs)
            .all(|(a, b)| match (a, b) {
                (Ok(x), Ok(y)) => x == y && x.stats == y.stats,
                (Err(_), Err(_)) => true,
                _ => false,
            });
        outputs_identical &= identical;

        let mut per_point_secs = f64::INFINITY;
        let mut amortized_secs = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            let out =
                pchls_par::with_serial(|| sweep_per_point(graph, &library, *latency, grid, opts));
            per_point_secs = per_point_secs.min(start.elapsed().as_secs_f64());
            drop(out);

            let start = Instant::now();
            let out = pchls_par::with_serial(|| sweep_amortized(&session, *latency, grid, opts));
            amortized_secs = amortized_secs.min(start.elapsed().as_secs_f64());
            drop(out);
        }
        println!(
            "{:<12} {:>5} {:>4} {:>6} | {:>12.4} {:>12.4} {:>6.2}x",
            graph.name(),
            graph.len(),
            latency,
            grid.len(),
            per_point_secs,
            amortized_secs,
            per_point_secs / amortized_secs,
        );
        records.push(AmortizedCaseRecord {
            name: graph.name().to_owned(),
            nodes: graph.len(),
            latency_bound: *latency,
            points: grid.len(),
            reps,
            per_point_secs,
            amortized_secs,
            speedup: per_point_secs / amortized_secs,
        });
    }

    let per_point_secs: f64 = records.iter().map(|r| r.per_point_secs).sum();
    let amortized_secs: f64 = records.iter().map(|r| r.amortized_secs).sum();
    let record = AmortizedRecord {
        schema: "pchls-bench-v1".into(),
        workload: "engine-amortized".into(),
        points: records.iter().map(|r| r.points).sum(),
        threads: 1,
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        per_point_secs,
        amortized_secs,
        speedup: per_point_secs / amortized_secs,
        outputs_identical,
        cases: records,
    };
    println!(
        "\ntotal: per-point {:.3}s | amortized {:.3}s | speedup {:.2}x | identical: {}",
        record.per_point_secs, record.amortized_secs, record.speedup, record.outputs_identical
    );
    assert!(
        record.outputs_identical,
        "compile-once session diverged from the per-point free-function path"
    );
    let json = serde_json::to_string_pretty(&record).expect("serializable");
    std::fs::write("BENCH_3.json", json).expect("write BENCH_3.json");
    eprintln!("wrote BENCH_3.json");
}

/// The `service-throughput` trajectory record (`BENCH_4.json`).
#[derive(Debug, Serialize)]
struct ServiceRecord {
    /// Trajectory schema marker.
    schema: String,
    /// What is being timed.
    workload: String,
    /// Total requests served (clients × requests-per-client).
    points: usize,
    /// Worker threads the service ran.
    threads: usize,
    /// Host cores.
    host_cores: usize,
    /// Concurrent client threads.
    clients: usize,
    /// Requests each client submitted.
    requests_per_client: usize,
    /// Wall-clock seconds from first submission to last reply.
    wall_secs: f64,
    /// `points / wall_secs`.
    throughput_rps: f64,
    /// Compile-cache lookups served from a completed compile.
    cache_hits: u64,
    /// Compile-cache lookups that compiled a new entry.
    cache_misses: u64,
    /// Compile-cache lookups that joined an in-flight compile.
    cache_coalesced: u64,
    /// `cache_hits / lookups` — the repeated-graph mix must keep this
    /// above zero.
    cache_hit_rate: f64,
    /// Median accept→reply latency in seconds (bucketed).
    p50_latency_secs: f64,
    /// 99th-percentile accept→reply latency in seconds (bucketed).
    p99_latency_secs: f64,
    /// Whether every served point was byte-identical to a direct
    /// `Session::synthesize` call.
    outputs_identical: bool,
}

/// The request of client `c`, position `r`, over `mix`: graphs cycle
/// per client offset, power bounds cycle over a fixed grid. Pure, so
/// the reference side enumerates the identical set.
fn service_request(
    mix: &[(&str, u32)],
    c: usize,
    r: usize,
    per_client: usize,
) -> (String, u32, f64) {
    const POWERS: [f64; 4] = [15.0, 25.0, 40.0, 60.0];
    let (graph, latency) = mix[(c + r) % mix.len()];
    let power = POWERS[(c * per_client + r) % POWERS.len()];
    (graph.to_owned(), latency, power)
}

/// The `service-throughput` workload: M concurrent clients × K requests
/// through a running [`Service`], byte-diffed against the direct
/// session path (BENCH_4.json).
fn service_workload(smoke: bool, opts: &SynthesisOptions) {
    let (clients, per_client, mix): (usize, usize, Vec<(&str, u32)>) = if smoke {
        (4, 12, vec![("hal", 17), ("cosine", 15)])
    } else {
        (8, 50, vec![("hal", 17), ("cosine", 15), ("elliptic", 22)])
    };

    // Direct-engine reference for every distinct request, serialized
    // the same way the service serializes its `point` field. Computed
    // up front so the timed section is pure service traffic.
    let engine = Engine::new(paper_library());
    let mut reference: std::collections::BTreeMap<String, String> =
        std::collections::BTreeMap::new();
    for c in 0..clients {
        for r in 0..per_client {
            let (graph, latency, power) = service_request(&mix, c, r, per_client);
            let key = format!("{graph}/{latency}/{power}");
            if reference.contains_key(&key) {
                continue;
            }
            let g = benchmarks::all()
                .into_iter()
                .find(|g| g.name() == graph)
                .unwrap();
            let compiled = engine.compile(&g);
            let constraints = SynthesisConstraints::new(latency, power);
            let point = pchls_core::SynthesisResult {
                request: pchls_core::SynthesisRequest::new(constraints.clone()).with_options(*opts),
                outcome: engine.session(&compiled).synthesize(constraints, opts),
            }
            .to_point(compiled.name());
            reference.insert(
                key,
                serde_json::to_string(&point).expect("point serializes"),
            );
        }
    }

    let service = Service::start(
        Engine::new(paper_library()),
        ServiceConfig {
            options: *opts,
            ..ServiceConfig::default()
        },
    );

    // M clients, each pipelining K requests and collecting K replies.
    let start = Instant::now();
    let mismatches: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (service, mix, reference) = (&service, &mix, &reference);
                scope.spawn(move || {
                    let (tx, rx) = std::sync::mpsc::channel();
                    for r in 0..per_client {
                        let (graph, latency, power) = service_request(mix, c, r, per_client);
                        let id = (c * per_client + r) as u64;
                        service
                            .submit(SubmitRequest::synth(id, &graph, latency, power), tx.clone())
                            .expect("service accepts while running");
                    }
                    drop(tx);
                    let mut bad = 0usize;
                    for resp in rx {
                        let r = (resp.id as usize) % per_client;
                        let (graph, latency, power) = service_request(mix, c, r, per_client);
                        let served = resp
                            .point
                            .as_ref()
                            .map(|p| serde_json::to_string(p).expect("point serializes"));
                        let expected = &reference[&format!("{graph}/{latency}/{power}")];
                        if !resp.ok || served.as_deref() != Some(expected.as_str()) {
                            bad += 1;
                        }
                    }
                    bad
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let stats = service.stats();
    let points = clients * per_client;
    let record = ServiceRecord {
        schema: "pchls-bench-v1".into(),
        workload: "service-throughput".into(),
        points,
        threads: stats.workers,
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        clients,
        requests_per_client: per_client,
        wall_secs,
        throughput_rps: points as f64 / wall_secs,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_coalesced: stats.cache_coalesced,
        cache_hit_rate: stats.cache_hit_rate,
        p50_latency_secs: stats.p50_latency_secs,
        p99_latency_secs: stats.p99_latency_secs,
        outputs_identical: mismatches == 0,
    };
    println!(
        "\nservice: {} clients x {} requests | {:.3}s wall | {:.0} req/s | \
         cache {}h/{}m/{}c (hit rate {:.2}) | p50 {:.4}s p99 {:.4}s | identical: {}",
        clients,
        per_client,
        record.wall_secs,
        record.throughput_rps,
        record.cache_hits,
        record.cache_misses,
        record.cache_coalesced,
        record.cache_hit_rate,
        record.p50_latency_secs,
        record.p99_latency_secs,
        record.outputs_identical,
    );
    assert!(
        record.outputs_identical,
        "{mismatches} service response(s) diverged from direct Session::synthesize output"
    );
    assert!(
        record.cache_hit_rate > 0.0,
        "a repeated-graph mix must produce compile-cache hits"
    );
    service.shutdown();
    let json = serde_json::to_string_pretty(&record).expect("serializable");
    std::fs::write("BENCH_4.json", json).expect("write BENCH_4.json");
    eprintln!("wrote BENCH_4.json");
}

/// Per-case record of the `envelope-kernel` workload (`BENCH_5.json`).
#[derive(Debug, Serialize)]
struct EnvelopeCaseRecord {
    /// Case label.
    name: String,
    /// Node count of the CDFG.
    nodes: usize,
    /// Latency constraint `T`.
    latency_bound: u32,
    /// The scalar bound the envelopes derive from.
    power_bound: f64,
    /// Timing repetitions (minimum taken per side).
    reps: usize,
    /// Best wall-clock seconds under the scalar `f64` bound (the
    /// pre-envelope fast path).
    scalar_secs: f64,
    /// Best wall-clock seconds under an equal-bound `per_cycle`
    /// envelope — must collapse to the same constant-mode ledger.
    constant_budget_secs: f64,
    /// Best wall-clock seconds under a stepwise envelope (loose first
    /// half, the scalar bound after), driving the slack-min tree.
    stepwise_secs: f64,
    /// Whether the constant-envelope design is byte-identical to the
    /// scalar one (it must be).
    constant_identical: bool,
    /// Whether the stepwise envelope was feasible.
    stepwise_feasible: bool,
    /// Whether the stepwise design differs from the scalar one (the
    /// early headroom is allowed to change the schedule).
    stepwise_differs: bool,
}

/// The `envelope-kernel` trajectory record (`BENCH_5.json`).
#[derive(Debug, Serialize)]
struct EnvelopeRecord {
    /// Trajectory schema marker.
    schema: String,
    /// What is being timed.
    workload: String,
    /// Synthesis runs per side (cases × reps).
    points: usize,
    /// All sides run serially.
    threads: usize,
    /// Host cores.
    host_cores: usize,
    /// Sum of per-case best scalar seconds.
    scalar_secs: f64,
    /// Sum of per-case best constant-envelope seconds.
    constant_budget_secs: f64,
    /// `constant_budget_secs / scalar_secs` — the envelope plumbing's
    /// overhead on the scalar path (must stay ≈ 1.0).
    constant_overhead: f64,
    /// Sum of per-case best stepwise-envelope seconds.
    stepwise_secs: f64,
    /// Whether every constant-envelope design matched its scalar twin
    /// byte for byte.
    outputs_identical: bool,
    /// Per-case breakdown.
    cases: Vec<EnvelopeCaseRecord>,
}

/// The `envelope-kernel` workload: scalar vs. constant-envelope parity
/// plus a stepwise-envelope run through the slack-min ledger
/// (BENCH_5.json).
fn envelope_workload(smoke: bool, engine: &Engine, opts: &SynthesisOptions) {
    let (cases, reps) = if smoke {
        (
            vec![
                paper_case(benchmarks::hal(), 17, 25.0),
                random_case(30, 11, 60.0),
            ],
            2,
        )
    } else {
        (
            vec![
                paper_case(benchmarks::hal(), 17, 25.0),
                paper_case(benchmarks::cosine(), 15, 40.0),
                paper_case(benchmarks::elliptic(), 22, 30.0),
                random_case(120, 12, 60.0),
                random_case(200, 13, 60.0),
            ],
            3,
        )
    };

    println!(
        "\n{:<12} {:>5} {:>4} {:>6} | {:>9} {:>9} {:>9} {:>5} {:>7}",
        "envelope", "nodes", "T", "P<", "scalar_s", "const_s", "steps_s", "ident", "differs"
    );
    println!("{}", "-".repeat(78));
    let mut records = Vec::new();
    let mut outputs_identical = true;
    for case in &cases {
        let compiled = engine.compile(&case.graph);
        let session = engine.session(&compiled);
        let t = case.constraints.latency;
        let p = case.constraints.max_power();
        let scalar_c = SynthesisConstraints::new(t, p);
        // Equal bound in every cycle, spelled as an envelope: must be
        // detected and run on the constant-mode (scalar) ledger.
        let constant_c = SynthesisConstraints::new(t, PowerBudget::per_cycle(vec![p; t as usize]));
        // Loose first half, the scalar bound after — a genuine
        // envelope, feasible whenever the scalar point is.
        let stepwise_c =
            SynthesisConstraints::new(t, PowerBudget::steps(vec![(0, p * 1.5), (t / 2, p)]));

        let scalar_d = pchls_par::with_serial(|| session.synthesize(scalar_c.clone(), opts));
        let constant_d = pchls_par::with_serial(|| session.synthesize(constant_c.clone(), opts));
        let stepwise_d = pchls_par::with_serial(|| session.synthesize(stepwise_c.clone(), opts));
        // Everything but the `constraints` field (which rightly records
        // the request's own budget spelling) must match bit for bit.
        let constant_identical = match (&scalar_d, &constant_d) {
            (Ok(a), Ok(b)) => {
                a.schedule == b.schedule
                    && a.timing == b.timing
                    && a.binding == b.binding
                    && a.area == b.area
                    && a.latency == b.latency
                    && a.peak_power.to_bits() == b.peak_power.to_bits()
                    && a.stats == b.stats
            }
            (Err(_), Err(_)) => true,
            _ => false,
        };
        outputs_identical &= constant_identical;
        let stepwise_feasible = stepwise_d.is_ok();
        let stepwise_differs = match (&scalar_d, &stepwise_d) {
            (Ok(a), Ok(b)) => a.schedule != b.schedule || a.binding != b.binding,
            _ => true,
        };

        let mut best = [f64::INFINITY; 3];
        for _ in 0..reps {
            for (i, c) in [&scalar_c, &constant_c, &stepwise_c]
                .into_iter()
                .enumerate()
            {
                let start = Instant::now();
                let out = pchls_par::with_serial(|| session.synthesize(c.clone(), opts));
                best[i] = best[i].min(start.elapsed().as_secs_f64());
                drop(out);
            }
        }
        println!(
            "{:<12} {:>5} {:>4} {:>6} | {:>9.4} {:>9.4} {:>9.4} {:>5} {:>7}",
            case.name,
            case.graph.len(),
            t,
            p,
            best[0],
            best[1],
            best[2],
            constant_identical,
            stepwise_differs,
        );
        records.push(EnvelopeCaseRecord {
            name: case.name.clone(),
            nodes: case.graph.len(),
            latency_bound: t,
            power_bound: p,
            reps,
            scalar_secs: best[0],
            constant_budget_secs: best[1],
            stepwise_secs: best[2],
            constant_identical,
            stepwise_feasible,
            stepwise_differs,
        });
    }

    let scalar_secs: f64 = records.iter().map(|r| r.scalar_secs).sum();
    let constant_budget_secs: f64 = records.iter().map(|r| r.constant_budget_secs).sum();
    let stepwise_secs: f64 = records.iter().map(|r| r.stepwise_secs).sum();
    let record = EnvelopeRecord {
        schema: "pchls-bench-v1".into(),
        workload: "envelope-kernel".into(),
        points: records.len() * reps,
        threads: 1,
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        scalar_secs,
        constant_budget_secs,
        constant_overhead: constant_budget_secs / scalar_secs,
        stepwise_secs,
        outputs_identical,
        cases: records,
    };
    println!(
        "\ntotal: scalar {:.3}s | constant envelope {:.3}s (overhead {:.2}x) | stepwise {:.3}s | identical: {}",
        record.scalar_secs,
        record.constant_budget_secs,
        record.constant_overhead,
        record.stepwise_secs,
        record.outputs_identical
    );
    assert!(
        record.outputs_identical,
        "a constant envelope diverged from the scalar fast path"
    );
    assert!(
        record.cases.iter().all(|c| c.stepwise_feasible),
        "a stepwise envelope that dominates the scalar bound must stay feasible"
    );
    let json = serde_json::to_string_pretty(&record).expect("serializable");
    std::fs::write("BENCH_5.json", json).expect("write BENCH_5.json");
    eprintln!("wrote BENCH_5.json");
}

/// One per-thread-count curve of the `scaling` workload.
#[derive(Debug, Serialize)]
struct ScalingCurve {
    /// Curve label (`sweep/...` or `kernel/...`).
    name: String,
    /// Synthesis points per repetition (grid points for the sweep
    /// fan-out, 1 for the single-synthesis kernel fan-out).
    points: usize,
    /// Timing repetitions (minimum taken per thread count).
    reps: usize,
    /// Best wall-clock seconds, parallel to the record's
    /// `thread_counts`.
    wall_secs: Vec<f64>,
    /// `wall_secs[0] / wall_secs[i]` — speedup over the 1-thread run.
    speedup: Vec<f64>,
    /// `speedup[i] / thread_counts[i]` — parallel efficiency.
    efficiency: Vec<f64>,
    /// Whether every thread count reproduced the 1-thread output
    /// exactly.
    outputs_identical: bool,
}

/// The `scaling` trajectory record (`BENCH_6.json`).
#[derive(Debug, Serialize)]
struct ScalingRecord {
    /// Trajectory schema marker.
    schema: String,
    /// What is being timed.
    workload: String,
    /// Host cores (`available_parallelism`).
    host_cores: usize,
    /// Worker-pool width the curve is capped at ([`pchls_par::thread_count`],
    /// so `PCHLS_THREADS` can widen or pin it).
    threads: usize,
    /// The measured thread counts: 1/2/4/8 capped at the pool width and
    /// deduplicated.
    thread_counts: Vec<usize>,
    /// `true` when only one thread count was measurable (1-core host
    /// without a `PCHLS_THREADS` override) — the curve is a single
    /// point and no efficiency claim is made.
    single_point: bool,
    /// Whether every curve reproduced its 1-thread output at every
    /// thread count.
    outputs_identical: bool,
    /// The measured curves.
    curves: Vec<ScalingCurve>,
}

/// Times `run` best-of-`reps` at every thread count and checks each
/// output against the first (1-thread) one under `eq`. Returns the
/// wall-clock vector and the identity verdict.
fn time_scaling_curve<T>(
    thread_counts: &[usize],
    reps: usize,
    mut run: impl FnMut() -> T,
    mut eq: impl FnMut(&T, &T) -> bool,
) -> (Vec<f64>, bool) {
    // Warm-up (untimed) so allocator state is comparable across counts.
    drop(run());
    let mut wall = Vec::with_capacity(thread_counts.len());
    let mut identical = true;
    let mut reference: Option<T> = None;
    for &t in thread_counts {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..reps {
            let start = Instant::now();
            let o = pchls_par::with_thread_count(t, &mut run);
            best = best.min(start.elapsed().as_secs_f64());
            out = Some(o);
        }
        let out = out.expect("reps >= 1");
        match &reference {
            None => reference = Some(out),
            Some(r) => identical &= eq(r, &out),
        }
        wall.push(best);
    }
    (wall, identical)
}

fn scaling_curve_record(
    name: &str,
    points: usize,
    reps: usize,
    thread_counts: &[usize],
    wall_secs: Vec<f64>,
    outputs_identical: bool,
) -> ScalingCurve {
    let speedup: Vec<f64> = wall_secs.iter().map(|&w| wall_secs[0] / w).collect();
    let efficiency: Vec<f64> = speedup
        .iter()
        .zip(thread_counts)
        .map(|(&s, &t)| s / t as f64)
        .collect();
    ScalingCurve {
        name: name.to_owned(),
        points,
        reps,
        wall_secs,
        speedup,
        efficiency,
        outputs_identical,
    }
}

/// The `scaling` workload: per-thread-count wall-clock curves for the
/// sweep fan-out and the kernel's candidate-scoring fan-out
/// (BENCH_6.json). Efficiency and monotonicity are asserted on the
/// sweep curve (coarse-grained, one synthesis per work item) whenever
/// more than one thread count is measurable; the kernel curve is
/// recorded for honesty but its fine-grained fan-out makes no
/// efficiency promise. Output identity is asserted on both, always.
fn scaling_workload(smoke: bool, engine: &Engine, opts: &SynthesisOptions) {
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let pool = pchls_par::thread_count();
    let mut thread_counts: Vec<usize> = [1usize, 2, 4, 8].iter().map(|&t| t.min(pool)).collect();
    thread_counts.dedup();
    let single_point = thread_counts.len() == 1;
    let reps = if smoke { 2 } else { 3 };

    let full_grid = figure2_power_grid();
    let grid: Vec<f64> = if smoke {
        full_grid.iter().copied().step_by(5).collect()
    } else {
        full_grid
    };
    let sweep_graph = benchmarks::hal();
    let sweep_latency = 17u32;
    let kernel_case = if smoke {
        random_case(60, 11, 60.0)
    } else {
        random_case(120, 12, 60.0)
    };

    let sweep_compiled = engine.compile(&sweep_graph);
    let sweep_session = engine.session(&sweep_compiled);
    let (sweep_wall, sweep_identical) = time_scaling_curve(
        &thread_counts,
        reps,
        || {
            sweep_session
                .sweep(&SweepSpec::power(sweep_latency, grid.clone()), opts)
                .into_points()
        },
        |a, b| a == b,
    );
    let sweep_curve = scaling_curve_record(
        &format!("sweep/{}-T{sweep_latency}", sweep_graph.name()),
        grid.len(),
        reps,
        &thread_counts,
        sweep_wall,
        sweep_identical,
    );

    let kernel_compiled = engine.compile(&kernel_case.graph);
    let kernel_session = engine.session(&kernel_compiled);
    let (kernel_wall, kernel_identical) = time_scaling_curve(
        &thread_counts,
        reps,
        || kernel_session.synthesize(kernel_case.constraints.clone(), opts),
        |a, b| match (a, b) {
            (Ok(x), Ok(y)) => x == y && x.stats == y.stats,
            (Err(_), Err(_)) => true,
            _ => false,
        },
    );
    let kernel_curve = scaling_curve_record(
        &format!("kernel/{}", kernel_case.name),
        1,
        reps,
        &thread_counts,
        kernel_wall,
        kernel_identical,
    );

    println!(
        "\nscaling: pool {} of {} host core(s) | thread counts {:?}{}",
        pool,
        host_cores,
        thread_counts,
        if single_point {
            " | single-point (1-core host)"
        } else {
            ""
        }
    );
    println!(
        "{:<18} {:>7} | {}",
        "curve",
        "points",
        thread_counts
            .iter()
            .map(|t| format!("{:>9}", format!("t={t}")))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("{}", "-".repeat(30 + 10 * thread_counts.len()));
    for curve in [&sweep_curve, &kernel_curve] {
        println!(
            "{:<18} {:>7} | {}",
            curve.name,
            curve.points,
            curve
                .wall_secs
                .iter()
                .map(|w| format!("{w:>8.4}s"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        println!(
            "{:<18} {:>7} | {}",
            "",
            "eff",
            curve
                .efficiency
                .iter()
                .map(|e| format!("{e:>8.2}x"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }

    let record = ScalingRecord {
        schema: "pchls-bench-v1".into(),
        workload: "scaling".into(),
        host_cores,
        threads: pool,
        thread_counts: thread_counts.clone(),
        single_point,
        outputs_identical: sweep_curve.outputs_identical && kernel_curve.outputs_identical,
        curves: vec![sweep_curve, kernel_curve],
    };
    println!(
        "identical across thread counts: {}",
        record.outputs_identical
    );
    assert!(
        record.outputs_identical,
        "a thread count changed the synthesized output"
    );
    // Efficiency claims need real cores: a PCHLS_THREADS override on a
    // 1-core host still records the curve (reproducibility) but merely
    // oversubscribes, so only genuinely multi-core hosts are asserted.
    if !single_point && host_cores > 1 {
        let sweep = &record.curves[0];
        if let Some(i2) = thread_counts.iter().position(|&t| t == 2) {
            assert!(
                sweep.efficiency[i2] >= 0.6,
                "sweep parallel efficiency at 2 threads fell below 0.6: {:.2}",
                sweep.efficiency[i2]
            );
        }
        for w in sweep.wall_secs.windows(2) {
            assert!(
                w[1] <= w[0] * 1.10,
                "adding sweep threads degraded wall clock beyond 10%: {:?}",
                sweep.wall_secs
            );
        }
    }
    let json = serde_json::to_string_pretty(&record).expect("serializable");
    std::fs::write("BENCH_6.json", json).expect("write BENCH_6.json");
    eprintln!("wrote BENCH_6.json");
}

/// The `store` trajectory record (`BENCH_7.json`).
#[derive(Debug, Serialize)]
struct StoreBenchRecord {
    /// Trajectory schema marker.
    schema: String,
    /// What is being timed.
    workload: String,
    /// Constraint points in the grid.
    points: usize,
    /// Worker threads the cold (recompute) side may use.
    threads: usize,
    /// Host cores.
    host_cores: usize,
    /// Case label (rand200-class random CDFG).
    case: String,
    /// Node count of the CDFG.
    nodes: usize,
    /// Warm-read timing repetitions (minimum taken per side).
    reps: usize,
    /// Wall-clock seconds to synthesize the whole grid from scratch —
    /// what a second process pays without a store.
    cold_secs: f64,
    /// Best wall-clock seconds to open a cold store handle and read
    /// every record back in full.
    warm_full_secs: f64,
    /// Best wall-clock seconds to open a cold store handle and read
    /// only the key + feasibility + area columns.
    warm_partial_secs: f64,
    /// `cold_secs / warm_full_secs` — what the store tier saves.
    cold_over_warm_full: f64,
    /// `warm_full_secs / warm_partial_secs` — what columnar partial
    /// reads save over full records.
    warm_full_over_partial: f64,
    /// Store file size in bytes.
    file_bytes: u64,
    /// Records in the store.
    store_records: u64,
    /// Uncompressed over compressed column bytes.
    compression_ratio: f64,
    /// Whether every store-served point serialized byte-identically to
    /// the fresh `Session` output.
    outputs_identical: bool,
}

/// The `store` workload: cold grid recompute vs. warm reads from a
/// persistent result store, full-record and area-column-only
/// (BENCH_7.json). Every store-served point must be byte-identical to
/// the fresh [`Session::batch`] output it was materialized from.
fn store_workload(smoke: bool, engine: &Engine, opts: &SynthesisOptions) {
    use pchls_store::{Store, StoreKey, StoreRecord};

    let (case, grid_steps, reps) = if smoke {
        (random_case(60, 11, 60.0), 8, 10)
    } else {
        (random_case(200, 13, 60.0), 24, 30)
    };
    let compiled = engine.compile(&case.graph);
    let session = engine.session(&compiled);
    let latency = case.constraints.latency;
    let grid = session.auto_power_grid(grid_steps);
    let constraints: Vec<SynthesisConstraints> = grid
        .iter()
        .map(|&p| SynthesisConstraints::new(latency, p))
        .collect();
    let keys: Vec<StoreKey> = constraints
        .iter()
        .map(|c| StoreKey::for_graph(compiled.graph(), c))
        .collect();

    // Cold side: the whole grid synthesized from scratch (parallel over
    // the pool, exactly like a storeless `pchls batch`).
    let start = Instant::now();
    let results = session.batch(
        constraints
            .iter()
            .map(|c| SynthesisRequest::new(c.clone()).with_options(*opts)),
    );
    let cold_secs = start.elapsed().as_secs_f64();
    let fresh_json: Vec<String> = results
        .iter()
        .map(|r| serde_json::to_string(&r.to_point(compiled.name())).expect("point serializes"))
        .collect();

    // Materialize the store the way the CLI/service tier does: full
    // records including the schedule trace.
    let dir = std::env::temp_dir().join("pchls-bench-store");
    let _ = std::fs::remove_dir_all(&dir);
    let records: Vec<StoreRecord> = keys
        .iter()
        .zip(&results)
        .map(|(&key, r)| {
            let trace = r
                .outcome
                .as_ref()
                .map(|d| pchls_store::trace_bytes(&d.schedule))
                .unwrap_or_default();
            StoreRecord::from_point(key, &r.to_point(compiled.name()), trace)
        })
        .collect();
    let stat = {
        let mut store = Store::open(&dir).expect("open bench store");
        store.append(&records).expect("append");
        store.flush().expect("flush");
        store.stat().expect("stat")
    };

    // Warm full reads: a cold handle per rep (open = footer + index),
    // then every record in full — the restarted-service path.
    let mut warm_full_secs = f64::INFINITY;
    let mut warm_records: Vec<StoreRecord> = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        let mut store = Store::open(&dir).expect("reopen");
        let out: Vec<StoreRecord> = keys
            .iter()
            .map(|k| store.get(k).expect("read").expect("materialized point"))
            .collect();
        warm_full_secs = warm_full_secs.min(start.elapsed().as_secs_f64());
        warm_records = out;
    }
    let warm_json: Vec<String> = warm_records
        .iter()
        .map(|r| serde_json::to_string(&r.to_point(compiled.name())).expect("point serializes"))
        .collect();
    let outputs_identical = warm_json == fresh_json;

    // Warm partial reads: the same cold handle, but only the key,
    // feasibility and area columns are touched — the area-curve query.
    let mut warm_partial_secs = f64::INFINITY;
    let mut partial_ok = true;
    for _ in 0..reps {
        let start = Instant::now();
        let mut store = Store::open(&dir).expect("reopen");
        let areas = store.scan_areas().expect("scan areas");
        warm_partial_secs = warm_partial_secs.min(start.elapsed().as_secs_f64());
        let by_key: std::collections::HashMap<StoreKey, Option<u64>> = areas.into_iter().collect();
        partial_ok &= keys
            .iter()
            .zip(&results)
            .all(|(k, r)| by_key.get(k).copied() == Some(r.to_point(compiled.name()).area));
    }

    let record = StoreBenchRecord {
        schema: "pchls-bench-v1".into(),
        workload: "store".into(),
        points: grid.len(),
        threads: pchls_par::thread_count(),
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        case: case.name.clone(),
        nodes: case.graph.len(),
        reps,
        cold_secs,
        warm_full_secs,
        warm_partial_secs,
        cold_over_warm_full: cold_secs / warm_full_secs,
        warm_full_over_partial: warm_full_secs / warm_partial_secs,
        file_bytes: stat.file_bytes,
        store_records: stat.records,
        compression_ratio: stat.compression_ratio(),
        outputs_identical,
    };
    println!(
        "\nstore: {} x {} point(s) | cold {:.4}s | warm full {:.6}s ({:.0}x) | \
         warm partial {:.6}s ({:.2}x over full) | {} bytes, {:.2}x compression | identical: {}",
        record.case,
        record.points,
        record.cold_secs,
        record.warm_full_secs,
        record.cold_over_warm_full,
        record.warm_partial_secs,
        record.warm_full_over_partial,
        record.file_bytes,
        record.compression_ratio,
        record.outputs_identical,
    );
    assert!(
        record.outputs_identical,
        "store-served points diverged from fresh Session output"
    );
    assert!(partial_ok, "partial area reads diverged from full records");
    assert!(
        record.cold_over_warm_full >= 10.0,
        "warm full-record reads must beat cold recompute by >= 10x, got {:.1}x",
        record.cold_over_warm_full
    );
    assert!(
        record.warm_full_over_partial > 1.0,
        "partial column reads must beat full-record reads, got {:.2}x",
        record.warm_full_over_partial
    );
    let json = serde_json::to_string_pretty(&record).expect("serializable");
    std::fs::write("BENCH_7.json", json).expect("write BENCH_7.json");
    eprintln!("wrote BENCH_7.json");
}

/// The warm-path phase of the `overload` workload (`BENCH_8.json`).
#[derive(Debug, Serialize)]
struct WarmPhaseRecord {
    /// Concurrent client connections.
    clients: usize,
    /// Requests each client pipelined.
    requests_per_client: usize,
    /// Wall-clock seconds from first write to last reply.
    wall_secs: f64,
    /// `clients * requests_per_client / wall_secs` over TCP.
    throughput_rps: f64,
    /// The committed `service-throughput` number (`BENCH_4.json`) on
    /// this host, when present — the warm path must not fall below it.
    bench4_throughput_rps: Option<f64>,
    /// Hit-lane latency snapshot after the phase (all warm requests
    /// ride the hit lane).
    hit_lane_p50_secs: f64,
    /// Hit-lane 99.9th percentile in seconds (bucketed).
    hit_lane_p999_secs: f64,
    /// Largest hit-lane latency in seconds (exact).
    hit_lane_max_secs: f64,
    /// Whether every reply was byte-identical to direct `Session`
    /// output.
    outputs_identical: bool,
}

/// The past-capacity phase of the `overload` workload.
#[derive(Debug, Serialize)]
struct OverloadPhaseRecord {
    /// Shards the service ran (deliberately 1).
    shards: usize,
    /// Synthesis workers (deliberately 1).
    workers: usize,
    /// Queue bound — the admission threshold the burst must overflow.
    queue_cap: usize,
    /// Heavy synthesis requests fired past capacity.
    burst_requests: usize,
    /// Warm request/response probes interleaved with the storm.
    warm_probes: usize,
    /// Burst requests served with a synthesis point.
    served: u64,
    /// Burst requests refused with a well-formed `overloaded` error.
    shed: u64,
    /// `shed / burst_requests`.
    shed_rate: f64,
    /// Response lines that failed to parse (must be 0).
    malformed: usize,
    /// Requests that never got a response line (must be 0).
    dropped: usize,
    /// Hit-lane p99.9 during the storm in seconds — the priority lane's
    /// bound while the synth lane is saturated.
    hit_lane_p999_secs: f64,
    /// Largest hit-lane latency in seconds (exact).
    hit_lane_max_secs: f64,
    /// Synth-lane p99.9 in seconds, for contrast.
    synth_lane_p999_secs: f64,
    /// Whether every *served* burst reply was byte-identical to direct
    /// `Session` output.
    outputs_identical: bool,
}

/// The rate-limit phase of the `overload` workload.
#[derive(Debug, Serialize)]
struct RateLimitPhaseRecord {
    /// Token-bucket refill rate (requests/second/connection).
    rate_per_sec: f64,
    /// Token-bucket burst capacity.
    burst: f64,
    /// Requests pipelined down one connection.
    requests: usize,
    /// Requests admitted and answered with a point.
    admitted: u64,
    /// Requests refused with a well-formed `rate_limited` error.
    rate_limited: u64,
}

/// The `overload` trajectory record (`BENCH_8.json`).
#[derive(Debug, Serialize)]
struct OverloadRecord {
    /// Trajectory schema marker.
    schema: String,
    /// What is being timed.
    workload: String,
    /// Total requests across all three phases.
    points: usize,
    /// Worker threads of the warm-phase service.
    threads: usize,
    /// Host cores.
    host_cores: usize,
    /// Serve loops started and stopped cleanly via [`ShutdownHandle`].
    clean_shutdowns: usize,
    /// Warm-path throughput phase.
    warm: WarmPhaseRecord,
    /// Past-capacity shedding phase.
    overload: OverloadPhaseRecord,
    /// Per-connection token-bucket phase.
    rate_limit: RateLimitPhaseRecord,
}

/// Pipelines `reqs` down one TCP connection, then reads one line per
/// request. Returns the parsed responses plus the counts of malformed
/// lines and missing (connection closed early) responses.
fn tcp_exchange(addr: SocketAddr, reqs: &[SubmitRequest]) -> (Vec<SubmitResponse>, usize, usize) {
    let stream = TcpStream::connect(addr).expect("dial the service");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    for req in reqs {
        writeln!(
            writer,
            "{}",
            serde_json::to_string(req).expect("request serializes")
        )
        .expect("write request");
    }
    writer.flush().expect("flush requests");
    let mut responses = Vec::new();
    let mut malformed = 0usize;
    let mut dropped = 0usize;
    for _ in 0..reqs.len() {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read response") == 0 {
            dropped += 1;
            continue;
        }
        match serde_json::from_str::<SubmitResponse>(&line) {
            Ok(resp) => responses.push(resp),
            Err(_) => malformed += 1,
        }
    }
    (responses, malformed, dropped)
}

/// A reactor serve loop on an ephemeral port; `f` runs with the dialed
/// address, then the loop is stopped and its clean exit asserted.
fn with_tcp_service<T>(service: &Service, f: impl FnOnce(SocketAddr) -> T) -> T {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = ShutdownHandle::new();
    std::thread::scope(|scope| {
        let loop_thread = scope.spawn(|| serve_tcp_with(service, &listener, &shutdown));
        let out = f(addr);
        shutdown.request_stop();
        loop_thread
            .join()
            .expect("serve loop must not panic")
            .expect("serve loop must exit cleanly");
        out
    })
}

/// The `overload` workload: the reactor TCP front end under a warm
/// concurrent mix, past-capacity shedding, and per-connection rate
/// limits (BENCH_8.json). See the module docs for the three phases.
fn overload_workload(smoke: bool, opts: &SynthesisOptions) {
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let engine = Engine::new(paper_library());

    // ---- Phase 1: warm-path throughput --------------------------------
    // Twelve distinct points over the paper benchmarks; pre-warmed into
    // the result tier so the timed traffic rides the hit lane.
    let (clients, per_client) = if smoke { (2, 25) } else { (4, 100) };
    let warm_mix: Vec<(&str, u32, f64)> = ["hal", "cosine", "elliptic"]
        .iter()
        .flat_map(|&g| {
            let t = match g {
                "hal" => 17,
                "cosine" => 15,
                _ => 22,
            };
            [15.0, 25.0, 40.0, 60.0].map(move |p| (g, t, p))
        })
        .collect();
    let reference: Vec<String> = warm_mix
        .iter()
        .map(|&(graph, latency, power)| {
            let g = benchmarks::all()
                .into_iter()
                .find(|g| g.name() == graph)
                .unwrap();
            let compiled = engine.compile(&g);
            let constraints = SynthesisConstraints::new(latency, power);
            let point = pchls_core::SynthesisResult {
                request: pchls_core::SynthesisRequest::new(constraints.clone()).with_options(*opts),
                outcome: engine.session(&compiled).synthesize(constraints, opts),
            }
            .to_point(compiled.name());
            serde_json::to_string(&point).expect("point serializes")
        })
        .collect();

    let warm_service = Service::start(
        Engine::new(paper_library()),
        ServiceConfig {
            shards: 4,
            queue_cap: 4096,
            options: *opts,
            ..ServiceConfig::default()
        },
    );
    for (id, &(graph, latency, power)) in warm_mix.iter().enumerate() {
        let resp = warm_service.call(SubmitRequest::synth(id as u64, graph, latency, power));
        assert!(resp.ok, "pre-warm {graph} T={latency} P={power} failed");
    }
    let threads = warm_service.stats().workers;
    let (wall_secs, warm_identical) = with_tcp_service(&warm_service, |addr| {
        let start = Instant::now();
        let mismatches: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let (warm_mix, reference) = (&warm_mix, &reference);
                    scope.spawn(move || {
                        let reqs: Vec<SubmitRequest> = (0..per_client)
                            .map(|r| {
                                let (graph, latency, power) = warm_mix[(c + r) % warm_mix.len()];
                                SubmitRequest::synth(
                                    (c * per_client + r) as u64,
                                    graph,
                                    latency,
                                    power,
                                )
                            })
                            .collect();
                        let (responses, malformed, dropped) = tcp_exchange(addr, &reqs);
                        assert_eq!((malformed, dropped), (0, 0), "warm phase lost replies");
                        responses
                            .iter()
                            .filter(|resp| {
                                let r = (resp.id as usize) % per_client;
                                let expected = &reference[(c + r) % warm_mix.len()];
                                let served = resp
                                    .point
                                    .as_ref()
                                    .map(|p| serde_json::to_string(p).expect("point serializes"));
                                !resp.ok || served.as_deref() != Some(expected.as_str())
                            })
                            .count()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client")).sum()
        });
        (start.elapsed().as_secs_f64(), mismatches == 0)
    });
    let warm_stats = warm_service.stats();
    warm_service.shutdown();
    let warm_points = clients * per_client;
    let bench4_throughput_rps = std::fs::read_to_string("BENCH_4.json")
        .ok()
        .and_then(|s| serde_json::parse(&s).ok())
        .and_then(|v| match v {
            serde_json::Value::Object(fields) => {
                fields.into_iter().find_map(|(k, v)| match (k.as_str(), v) {
                    ("throughput_rps", serde_json::Value::Float(f)) => Some(f),
                    ("throughput_rps", serde_json::Value::Int(i)) => Some(i as f64),
                    _ => None,
                })
            }
            _ => None,
        });
    let warm = WarmPhaseRecord {
        clients,
        requests_per_client: per_client,
        wall_secs,
        throughput_rps: warm_points as f64 / wall_secs,
        bench4_throughput_rps,
        hit_lane_p50_secs: warm_stats.hit_lane.p50_secs,
        hit_lane_p999_secs: warm_stats.hit_lane.p999_secs,
        hit_lane_max_secs: warm_stats.hit_lane.max_secs,
        outputs_identical: warm_identical,
    };
    println!(
        "\noverload/warm: {} clients x {} | {:.3}s wall | {:.0} req/s (BENCH_4: {}) | \
         hit lane p50 {:.5}s p99.9 {:.5}s max {:.5}s | identical: {}",
        clients,
        per_client,
        warm.wall_secs,
        warm.throughput_rps,
        warm.bench4_throughput_rps
            .map_or("n/a".to_owned(), |r| format!("{r:.0} req/s")),
        warm.hit_lane_p50_secs,
        warm.hit_lane_p999_secs,
        warm.hit_lane_max_secs,
        warm.outputs_identical,
    );

    // ---- Phase 2: past capacity ---------------------------------------
    // One shard, one worker, a four-deep lane; a concurrent burst of
    // heavy distinct synthesis jobs must overflow admission while warm
    // probes keep answering on the hit lane.
    let (burst_clients, per_burst, probes, heavy_ops) = if smoke {
        (2, 6, 5, 60)
    } else {
        (3, 8, 20, 120)
    };
    let queue_cap = 4;
    let heavy = {
        let (_, graph, constraints) = scale_random_case(heavy_ops, 21, 60.0);
        (write_cdfg(&graph), constraints.latency)
    };
    let (heavy_text, heavy_latency) = (&heavy.0, heavy.1);
    let heavy_compiled = engine.compile(&pchls_cdfg::parse_cdfg(heavy_text).unwrap());
    let heavy_session = engine.session(&heavy_compiled);
    let heavy_power = |id: u64| 60.0 + (id - 1) as f64;

    let storm_service = Service::start(
        Engine::new(paper_library()),
        ServiceConfig {
            workers: 1,
            shards: 1,
            queue_cap,
            options: *opts,
            ..ServiceConfig::default()
        },
    );
    assert!(
        storm_service
            .call(SubmitRequest::synth(0, "hal", 17, 25.0))
            .ok
    );
    let burst_requests = burst_clients * per_burst;
    let (all_responses, probe_failures, malformed, dropped) =
        with_tcp_service(&storm_service, |addr| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..burst_clients)
                    .map(|c| {
                        scope.spawn(move || {
                            let reqs: Vec<SubmitRequest> = (0..per_burst)
                                .map(|r| {
                                    let id = (c * per_burst + r) as u64 + 1;
                                    SubmitRequest::synth_text(
                                        id,
                                        heavy_text,
                                        heavy_latency,
                                        heavy_power(id),
                                    )
                                })
                                .collect();
                            tcp_exchange(addr, &reqs)
                        })
                    })
                    .collect();
                // Sequential warm probes while the storm grinds: each
                // must answer before the next is sent.
                let mut probe_failures = 0usize;
                for p in 0..probes {
                    let req = SubmitRequest::synth(1000 + p as u64, "hal", 17, 25.0);
                    let (resp, bad, lost) = tcp_exchange(addr, std::slice::from_ref(&req));
                    if bad + lost > 0 || !resp[0].ok {
                        probe_failures += 1;
                    }
                }
                let mut all = Vec::new();
                let (mut malformed, mut dropped) = (0, 0);
                for h in handles {
                    let (responses, bad, lost) = h.join().expect("burst client");
                    all.extend(responses);
                    malformed += bad;
                    dropped += lost;
                }
                (all, probe_failures, malformed, dropped)
            })
        });
    let served: Vec<&SubmitResponse> = all_responses.iter().filter(|r| r.ok).collect();
    let shed = all_responses
        .iter()
        .filter(|r| r.error.as_deref() == Some("overloaded"))
        .count();
    let storm_identical = served.iter().all(|resp| {
        let constraints = SynthesisConstraints::new(heavy_latency, heavy_power(resp.id));
        let point = pchls_core::SynthesisResult {
            request: pchls_core::SynthesisRequest::new(constraints.clone()).with_options(*opts),
            outcome: heavy_session.synthesize(constraints, opts),
        }
        .to_point(heavy_compiled.name());
        serde_json::to_string(resp.point.as_ref().unwrap()).expect("point serializes")
            == serde_json::to_string(&point).expect("point serializes")
    });
    let storm_stats = storm_service.stats();
    storm_service.shutdown();
    let overload = OverloadPhaseRecord {
        shards: 1,
        workers: 1,
        queue_cap,
        burst_requests,
        warm_probes: probes,
        served: served.len() as u64,
        shed: shed as u64,
        shed_rate: shed as f64 / burst_requests as f64,
        malformed,
        dropped,
        hit_lane_p999_secs: storm_stats.hit_lane.p999_secs,
        hit_lane_max_secs: storm_stats.hit_lane.max_secs,
        synth_lane_p999_secs: storm_stats.synth_lane.p999_secs,
        outputs_identical: storm_identical,
    };
    println!(
        "overload/storm: {} heavy into 1x1 shard (cap {}) | served {} shed {} ({:.0}%) | \
         malformed {} dropped {} | hit lane p99.9 {:.5}s (synth {:.3}s) | identical: {}",
        burst_requests,
        queue_cap,
        overload.served,
        overload.shed,
        overload.shed_rate * 100.0,
        overload.malformed,
        overload.dropped,
        overload.hit_lane_p999_secs,
        overload.synth_lane_p999_secs,
        overload.outputs_identical,
    );

    // ---- Phase 3: per-connection rate limit ---------------------------
    let (rate_per_sec, bucket_burst, rate_requests) = (2.0, 4.0, 20usize);
    let rate_service = Service::start(
        Engine::new(paper_library()),
        ServiceConfig {
            shards: 1,
            rate_per_sec,
            burst: bucket_burst,
            options: *opts,
            ..ServiceConfig::default()
        },
    );
    assert!(
        rate_service
            .call(SubmitRequest::synth(0, "hal", 17, 25.0))
            .ok
    );
    let (responses, rate_malformed, rate_dropped) = with_tcp_service(&rate_service, |addr| {
        let reqs: Vec<SubmitRequest> = (0..rate_requests)
            .map(|r| SubmitRequest::synth(r as u64 + 1, "hal", 17, 25.0))
            .collect();
        tcp_exchange(addr, &reqs)
    });
    let rate_stats = rate_service.stats();
    rate_service.shutdown();
    let admitted = responses.iter().filter(|r| r.ok).count() as u64;
    let rate_limited = responses
        .iter()
        .filter(|r| r.error.as_deref() == Some("rate_limited"))
        .count() as u64;
    let rate_limit = RateLimitPhaseRecord {
        rate_per_sec,
        burst: bucket_burst,
        requests: rate_requests,
        admitted,
        rate_limited,
    };
    println!(
        "overload/rate: {} pipelined at {}/s burst {} | admitted {} rate-limited {}",
        rate_requests, rate_per_sec, bucket_burst, admitted, rate_limited,
    );

    let record = OverloadRecord {
        schema: "pchls-bench-v1".into(),
        workload: "overload".into(),
        points: warm_points + burst_requests + probes + rate_requests,
        threads,
        host_cores,
        clean_shutdowns: 3,
        warm,
        overload,
        rate_limit,
    };

    // The admission contract, asserted on the measurement itself.
    assert!(record.warm.outputs_identical, "warm replies diverged");
    if let Some(baseline) = record.warm.bench4_throughput_rps {
        assert!(
            record.warm.throughput_rps >= baseline,
            "warm hit-lane TCP throughput {:.0} req/s fell below the \
             synthesis-bound service-throughput baseline {:.0} req/s",
            record.warm.throughput_rps,
            baseline
        );
    }
    assert_eq!(
        (record.overload.malformed, record.overload.dropped),
        (0, 0),
        "overload must answer every request with a well-formed line"
    );
    assert_eq!(
        record.overload.served + record.overload.shed,
        burst_requests as u64,
        "burst replies must be served or shed, nothing else"
    );
    assert!(
        record.overload.shed > 0,
        "the burst must overflow admission"
    );
    assert!(
        record.overload.served > 0,
        "the worker must serve something"
    );
    assert_eq!(probe_failures, 0, "warm probes starved during the storm");
    assert!(
        record.overload.outputs_identical,
        "served storm replies diverged"
    );
    assert_eq!(
        storm_stats.shed, record.overload.shed,
        "stats disagree with the wire"
    );
    assert!(
        record.overload.hit_lane_p999_secs < 2.0,
        "hit lane p99.9 unbounded under storm: {:.3}s",
        record.overload.hit_lane_p999_secs
    );
    assert_eq!((rate_malformed, rate_dropped), (0, 0));
    assert_eq!(admitted + rate_limited, rate_requests as u64);
    assert!(
        rate_limited > 0,
        "a 20-deep pipeline must trip a burst-4 bucket"
    );
    assert!(admitted >= 4, "the burst allowance must be admitted");
    assert_eq!(
        rate_stats.rate_limited, rate_limited,
        "stats disagree with the wire"
    );

    let json = serde_json::to_string_pretty(&record).expect("serializable");
    std::fs::write("BENCH_8.json", json).expect("write BENCH_8.json");
    eprintln!("wrote BENCH_8.json");
}

/// One kernel phase's share of the recorded trace (`BENCH_9.json`).
#[derive(Debug, Serialize)]
struct PhaseTotal {
    /// Span name (`engine.compile`, `kernel.score`, …).
    name: String,
    /// Summed wall-clock seconds across the enabled reps.
    total_secs: f64,
    /// Share of the `kernel.synthesize` root spans, in percent.
    share_pct: f64,
}

/// The `phases` trajectory record (`BENCH_9.json`).
#[derive(Debug, Serialize)]
struct PhasesRecord {
    /// Trajectory schema marker.
    schema: String,
    /// What is being timed.
    workload: String,
    /// Case label.
    case: String,
    /// Node count of the CDFG.
    nodes: usize,
    /// Latency constraint `T`.
    latency_bound: u32,
    /// Power constraint `P<`.
    power_bound: f64,
    /// Synthesis repetitions per side.
    reps: usize,
    /// Worker threads the kernel may use.
    threads: usize,
    /// Host cores.
    host_cores: usize,
    /// Wall-clock seconds for the reps with tracing disabled.
    disabled_secs: f64,
    /// Wall-clock seconds for the same reps with tracing enabled.
    enabled_secs: f64,
    /// `(enabled - disabled) / disabled`, in percent: the cost of
    /// actually recording spans.
    tracing_on_overhead_pct: f64,
    /// Committed trace events per synthesize run.
    spans_per_run: f64,
    /// Microbenchmark: nanoseconds one `span!` site costs with the
    /// tracer off (a relaxed atomic load and a branch).
    disabled_span_ns: f64,
    /// The disabled-path tax on one synthesize run:
    /// `spans_per_run * disabled_span_ns / per-run seconds`, in
    /// percent. This is the number the "near-zero when off" claim
    /// rests on.
    disabled_overhead_pct: f64,
    /// Whether the traced runs reproduced the untraced designs
    /// bit for bit.
    outputs_identical: bool,
    /// Events lost to full ring buffers (must be 0 at this volume).
    dropped: u64,
    /// Per-phase totals over the enabled reps.
    phases: Vec<PhaseTotal>,
}

/// The `phases` workload: per-phase span totals for the synthesis
/// kernel plus the tracing overhead guard (BENCH_9.json).
fn phases_workload(smoke: bool, engine: &Engine, opts: &SynthesisOptions) {
    let (case, reps, spin) = if smoke {
        (random_case(30, 11, 60.0), 2, 200_000u64)
    } else {
        (random_case(200, 13, 60.0), 5, 10_000_000u64)
    };
    {
        // Warm-up (untimed) so allocator state is comparable across
        // sides.
        let compiled = engine.compile(&case.graph);
        let _ = engine
            .session(&compiled)
            .synthesize(case.constraints.clone(), opts);
    }

    let phase_names = [
        "engine.compile",
        "kernel.bootstrap",
        "fds.refit",
        "fds.palap",
        "kernel.score",
        "kernel.topk",
        "kernel.commit",
    ];

    // Each timed side compiles once and synthesizes `reps` times, so
    // the enabled trace also covers the `engine.compile` phase.
    pchls_obs::set_enabled(false);
    let start = Instant::now();
    let compiled = engine.compile(&case.graph);
    let session = engine.session(&compiled);
    let mut untraced = Vec::new();
    for _ in 0..reps {
        untraced.push(session.synthesize(case.constraints.clone(), opts));
    }
    let disabled_secs = start.elapsed().as_secs_f64();

    pchls_obs::reset();
    pchls_obs::set_enabled(true);
    let mut enabled_secs = 0.0;
    let mut events = 0usize;
    let mut dropped = 0u64;
    let mut root_secs = 0.0;
    let mut phase_secs = vec![0.0f64; phase_names.len()];
    let mut drain = |elapsed_secs: f64| {
        enabled_secs += elapsed_secs;
        // Drain between reps so the per-thread ring buffers never wrap
        // on the big case. The tracer must be off and the kernel
        // quiescent across a reset, and the drain itself stays outside
        // the timed region either way.
        pchls_obs::set_enabled(false);
        let snap = pchls_obs::snapshot();
        events += snap.events.len();
        dropped += snap.dropped;
        root_secs += snap.total_named("kernel.synthesize").as_secs_f64();
        for (total, name) in phase_secs.iter_mut().zip(phase_names) {
            *total += snap.total_named(name).as_secs_f64();
        }
        pchls_obs::reset();
        pchls_obs::set_enabled(true);
    };
    let start = Instant::now();
    let compiled = engine.compile(&case.graph);
    let session = engine.session(&compiled);
    drain(start.elapsed().as_secs_f64());
    let mut traced = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        traced.push(session.synthesize(case.constraints.clone(), opts));
        drain(start.elapsed().as_secs_f64());
    }
    pchls_obs::set_enabled(false);

    // The disabled path is one relaxed atomic load per site; measure it
    // directly rather than hoping two noisy kernel timings subtract to
    // something meaningful.
    let start = Instant::now();
    for _ in 0..spin {
        let guard = pchls_obs::span!("bench.noop");
        std::hint::black_box(&guard);
    }
    let disabled_span_ns = start.elapsed().as_secs_f64() * 1e9 / spin as f64;

    let outputs_identical = untraced.iter().zip(&traced).all(|(a, b)| match (a, b) {
        (Ok(a), Ok(b)) => a == b && a.stats == b.stats,
        (Err(_), Err(_)) => true,
        _ => false,
    });
    let phases: Vec<PhaseTotal> = phase_names
        .iter()
        .zip(&phase_secs)
        .map(|(&name, &total_secs)| PhaseTotal {
            name: name.to_owned(),
            total_secs,
            share_pct: if root_secs > 0.0 {
                total_secs / root_secs * 100.0
            } else {
                0.0
            },
        })
        .collect();

    let spans_per_run = events as f64 / reps as f64;
    let per_run_secs = disabled_secs / reps as f64;
    let disabled_overhead_pct = spans_per_run * disabled_span_ns / (per_run_secs * 1e9) * 100.0;
    let record = PhasesRecord {
        schema: "pchls-bench-v1".into(),
        workload: "phase-spans".into(),
        case: case.name.clone(),
        nodes: case.graph.len(),
        latency_bound: case.constraints.latency,
        power_bound: case.constraints.max_power(),
        reps,
        threads: pchls_par::thread_count(),
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        disabled_secs,
        enabled_secs,
        tracing_on_overhead_pct: (enabled_secs - disabled_secs) / disabled_secs * 100.0,
        spans_per_run,
        disabled_span_ns,
        disabled_overhead_pct,
        outputs_identical,
        dropped,
        phases,
    };
    println!(
        "{}: disabled {:.4}s | enabled {:.4}s ({:+.2}%) | {:.1} span(s)/run | off-path {:.2}ns/site = {:.4}% of a run | identical: {}",
        record.case,
        record.disabled_secs,
        record.enabled_secs,
        record.tracing_on_overhead_pct,
        record.spans_per_run,
        record.disabled_span_ns,
        record.disabled_overhead_pct,
        record.outputs_identical,
    );
    println!("{:<18} {:>12} {:>8}", "phase", "total_s", "share");
    println!("{}", "-".repeat(40));
    for p in &record.phases {
        println!(
            "{:<18} {:>12.5} {:>7.1}%",
            p.name, p.total_secs, p.share_pct
        );
    }
    assert!(
        record.outputs_identical,
        "tracing perturbed the synthesis decision trace"
    );
    assert_eq!(record.dropped, 0, "trace ring buffers overflowed");
    // Timing assertions only on hosts with real parallelism — shared
    // single-core CI boxes jitter far past any honest bound (same
    // policy as the scaling workload).
    if record.host_cores > 1 {
        assert!(
            record.disabled_overhead_pct < 1.0,
            "disabled-path tracing overhead {:.3}% >= 1%",
            record.disabled_overhead_pct
        );
    }
    let json = serde_json::to_string_pretty(&record).expect("serializable");
    std::fs::write("BENCH_9.json", json).expect("write BENCH_9.json");
    eprintln!("wrote BENCH_9.json");
}

/// Per-edit record of the `edits` workload (`BENCH_10.json`).
#[derive(Debug, Serialize)]
struct EditRecord {
    /// Edit index (also the edit RNG seed offset).
    edit: usize,
    /// Edit flavour applied (`rewire`, `add` or `remove`).
    kind: String,
    /// Edit-cone size reported by the structural delta.
    cone: usize,
    /// Whether the incremental replay path ran (vs. the full-recompute
    /// fallback for oversized cones).
    incremental: bool,
    /// Kernel iterations gated against the recorded memo.
    gated: usize,
    /// Gated iterations that outran the recorded trust bound and
    /// re-enumerated cold.
    extensions: usize,
    /// Whether the replay abandoned the memo mid-run after the edited
    /// run's commit order diverged from the recording.
    bailed: bool,
    /// Best wall-clock seconds for a full compile of the edited graph.
    compile_secs: f64,
    /// Best wall-clock seconds for the delta recompile (structural diff
    /// included).
    recompile_secs: f64,
    /// `compile_secs / recompile_secs` — the delta-compile stage win.
    compile_speedup: f64,
    /// Best wall-clock seconds for the cold path (full compile + full
    /// kernel run on the edited graph).
    full_secs: f64,
    /// Best wall-clock seconds for the incremental path (diff + delta
    /// recompile + memo-seeded replay).
    incremental_secs: f64,
    /// `full_secs / incremental_secs` — the end-to-end win.
    speedup: f64,
    /// Whether both paths produced byte-identical designs (decision
    /// traces and effort counters included).
    identical: bool,
}

/// The `edits` trajectory record (`BENCH_10.json`).
#[derive(Debug, Serialize)]
struct EditsRecord {
    /// Trajectory schema marker.
    schema: String,
    /// What is being timed.
    workload: String,
    /// Case label of the base graph.
    case: String,
    /// Node count of the base CDFG.
    nodes: usize,
    /// Latency constraint `T` (shared by the base run and every edit).
    latency_bound: u32,
    /// Power constraint `P<`.
    power_bound: f64,
    /// Edits replayed.
    edits: usize,
    /// Timing repetitions per side per edit (minimum taken).
    reps: usize,
    /// Worker threads the kernel may use.
    threads: usize,
    /// Host cores.
    host_cores: usize,
    /// Seconds to record the base run (compile + recorded synthesis).
    record_secs: f64,
    /// Sum of the per-edit best cold-path seconds.
    full_secs: f64,
    /// Sum of the per-edit best incremental-path seconds.
    incremental_secs: f64,
    /// Median per-edit `compile/recompile` ratio — the delta-compile
    /// stage, where reuse is structural and the ≥5x bound is asserted.
    median_compile_speedup: f64,
    /// Median per-edit `full/incremental` end-to-end ratio over every
    /// edit. The replay must reproduce the cold kernel's attempt
    /// sequence bit-exactly, so its win depends on how local the edit's
    /// effect on the binding order is (up to ~6x when the memo tracks,
    /// bounded near 1x for divergent runs by the bail-out).
    median_speedup: f64,
    /// Edits whose replay followed the memo to the end of the run
    /// (incremental and not bailed).
    tracked_edits: usize,
    /// Median end-to-end ratio over tracked replays only (0 when none).
    tracked_median_speedup: f64,
    /// Best per-edit end-to-end ratio.
    max_speedup: f64,
    /// Fraction of edits the incremental replay path handled (the rest
    /// fell back to a full recompute on an oversized cone).
    incremental_share: f64,
    /// Whether every edit's two paths were byte-identical.
    outputs_identical: bool,
    /// Whether the speedup bounds (tracked median ≥ 3x, best ≥ 5x,
    /// overall median ≥ 0.9x) were asserted — multi-core hosts only;
    /// single-core CI boxes jitter past any honest bound, so they
    /// record instead (same policy as the `scaling` workload).
    speedup_asserted: bool,
    /// Per-edit breakdown.
    cases: Vec<EditRecord>,
}

/// A deterministic xorshift for the edit driver, so `BENCH_10.json` is
/// reproducible without pulling an RNG dependency into the bench.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Applies one random structural edit (rewire an operand, add an op, or
/// remove an unconsumed node) and returns the edited graph plus the
/// flavour applied.
fn random_edit(graph: &Cdfg, seed: u64) -> (Cdfg, &'static str) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut edit = pchls_cdfg::GraphEdit::new(graph);
    let n = graph.len() as u64;
    let producers: Vec<pchls_cdfg::NodeId> = graph
        .node_ids()
        .filter(|&id| graph.node(id).kind().produces_value())
        .collect();
    let pick = |state: &mut u64| producers[(xorshift(state) % producers.len() as u64) as usize];
    loop {
        let applied: Option<&'static str> = match xorshift(&mut state) % 3 {
            0 => {
                let id = pchls_cdfg::NodeId::new((xorshift(&mut state) % n) as u32);
                let ports = graph.operands(id).len();
                (ports > 0 && {
                    let port = (xorshift(&mut state) % ports as u64) as usize;
                    let src = pick(&mut state);
                    edit.rewire_edge(id, port, src).is_ok()
                })
                .then_some("rewire")
            }
            1 => {
                let kind = if xorshift(&mut state).is_multiple_of(2) {
                    pchls_cdfg::OpKind::Add
                } else {
                    pchls_cdfg::OpKind::Mul
                };
                let (a, b) = (pick(&mut state), pick(&mut state));
                edit.add_op(kind, &[a, b]).is_ok().then_some("add")
            }
            _ => {
                let start = xorshift(&mut state) % n;
                (0..n)
                    .any(|off| {
                        let id = pchls_cdfg::NodeId::new(((start + off) % n) as u32);
                        edit.remove_op(id).is_ok()
                    })
                    .then_some("remove")
            }
        };
        if let Some(kind) = applied {
            return (edit.finish().expect("validated edits re-finish"), kind);
        }
    }
}

/// The `edits` workload: random single-op edit replays on the rand200
/// case, incremental re-synthesis vs. full recompile, byte-diffed
/// (BENCH_10.json).
fn edits_workload(smoke: bool, engine: &Engine, opts: &SynthesisOptions) {
    let (case, edits, reps) = if smoke {
        (random_case(30, 11, 60.0), 4, 1)
    } else {
        (random_case(200, 13, 60.0), 24, 3)
    };
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Record the base run once; every edit replays against this memo.
    let start = Instant::now();
    let compiled = engine.compile(&case.graph);
    let (_, memo) = pchls_par::with_thread_count(1, || {
        engine
            .session(&compiled)
            .synthesize_recorded(case.constraints.clone(), opts)
            .expect("the scale cases are feasible")
    });
    let record_secs = start.elapsed().as_secs_f64();

    // Warm-up (untimed) so allocator state is comparable across sides.
    {
        let (edited, _) = random_edit(&case.graph, 999);
        let _ = engine.try_compile(&edited).map(|c| {
            engine
                .session(&c)
                .synthesize(case.constraints.clone(), opts)
        });
        let _ = engine.recompile(&compiled, &edited).map(|(c, delta)| {
            engine
                .session(&c)
                .resynthesize(&memo, &delta)
                .map(|r| r.incremental)
        });
    }

    println!(
        "{:<4} {:>7} {:>5} {:>5} {:>6} {:>4} {:>5} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7} {:>5}",
        "edit",
        "kind",
        "cone",
        "inc",
        "gated",
        "ext",
        "bail",
        "comp_s",
        "rcomp_s",
        "cx",
        "full_s",
        "inc_s",
        "e2e",
        "ident"
    );
    println!("{}", "-".repeat(110));
    let mut records = Vec::new();
    let mut outputs_identical = true;
    for e in 0..edits {
        let (edited, kind) = random_edit(&case.graph, 1 + e as u64);

        // Cold side, stage-timed: a full compile of the edited graph,
        // then a full kernel run. Both sides run the serial kernel
        // (`with_thread_count(1)`) so the replay's algorithmic win is
        // measured independently of host cores — BENCH_6 owns the
        // thread-scaling story.
        let mut compile_secs = f64::INFINITY;
        let mut synth_secs = f64::INFINITY;
        let mut cold = None;
        pchls_par::with_thread_count(1, || {
            for _ in 0..reps {
                let start = Instant::now();
                let c = engine.try_compile(&edited);
                compile_secs = compile_secs.min(start.elapsed().as_secs_f64());
                let start = Instant::now();
                let outcome = c.and_then(|c| {
                    engine
                        .session(&c)
                        .synthesize(case.constraints.clone(), opts)
                });
                synth_secs = synth_secs.min(start.elapsed().as_secs_f64());
                cold = Some(outcome);
            }
        });

        // Incremental side: diff + delta recompile, then memo-seeded
        // replay.
        let mut recompile_secs = f64::INFINITY;
        let mut resynth_secs = f64::INFINITY;
        let mut replayed = None;
        pchls_par::with_thread_count(1, || {
            for _ in 0..reps {
                let start = Instant::now();
                let rc = engine.recompile(&compiled, &edited);
                recompile_secs = recompile_secs.min(start.elapsed().as_secs_f64());
                let start = Instant::now();
                let outcome =
                    rc.and_then(|(c, delta)| engine.session(&c).resynthesize(&memo, &delta));
                resynth_secs = resynth_secs.min(start.elapsed().as_secs_f64());
                replayed = Some(outcome);
            }
        });

        let cold = cold.expect("reps >= 1");
        let replayed = replayed.expect("reps >= 1");
        let (cone, incremental, gated, extensions, bailed) = replayed
            .as_ref()
            .map(|r| {
                (
                    r.cone_size,
                    r.incremental,
                    r.gated_iterations,
                    r.extensions,
                    r.bailed,
                )
            })
            .unwrap_or((0, false, 0, 0, false));
        let identical = match (&cold, &replayed) {
            (Ok(a), Ok(r)) => *a == r.design && a.stats == r.design.stats,
            (Err(_), Err(_)) => true,
            _ => false,
        };
        outputs_identical &= identical;
        let full_secs = compile_secs + synth_secs;
        let incremental_secs = recompile_secs + resynth_secs;
        let compile_speedup = compile_secs / recompile_secs;
        let speedup = full_secs / incremental_secs;
        println!(
            "{:<4} {:>7} {:>5} {:>5} {:>6} {:>4} {:>5} | {:>9.4} {:>9.4} {:>6.1}x | {:>9.4} \
             {:>9.4} {:>6.2}x {:>5}",
            e,
            kind,
            cone,
            incremental,
            gated,
            extensions,
            bailed,
            compile_secs,
            recompile_secs,
            compile_speedup,
            full_secs,
            incremental_secs,
            speedup,
            identical,
        );
        records.push(EditRecord {
            edit: e,
            kind: kind.to_owned(),
            cone,
            incremental,
            gated,
            extensions,
            bailed,
            compile_secs,
            recompile_secs,
            compile_speedup,
            full_secs,
            incremental_secs,
            speedup,
            identical,
        });
    }

    let median = |mut xs: Vec<f64>| {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        xs[xs.len() / 2]
    };
    let median_compile_speedup = median(records.iter().map(|r| r.compile_speedup).collect());
    let median_speedup = median(records.iter().map(|r| r.speedup).collect());
    // "Tracked" replays followed the memo to the end of the run; bailed
    // ones abandoned it mid-run after the commit order diverged.
    let tracked: Vec<f64> = records
        .iter()
        .filter(|r| r.incremental && !r.bailed)
        .map(|r| r.speedup)
        .collect();
    let tracked_edits = tracked.len();
    let tracked_median_speedup = if tracked.is_empty() {
        0.0
    } else {
        median(tracked)
    };
    let max_speedup = records.iter().map(|r| r.speedup).fold(0.0, f64::max);
    let incremental_share =
        records.iter().filter(|r| r.incremental).count() as f64 / records.len() as f64;
    let speedup_asserted = !smoke && host_cores > 1;
    let record = EditsRecord {
        schema: "pchls-bench-v1".into(),
        workload: "edit-replay".into(),
        case: case.name.clone(),
        nodes: case.graph.len(),
        latency_bound: case.constraints.latency,
        power_bound: case.constraints.max_power(),
        edits,
        reps,
        // Both sides are pinned to the serial kernel (see the timing
        // loops); BENCH_6 owns the thread-scaling story.
        threads: 1,
        host_cores,
        record_secs,
        full_secs: records.iter().map(|r| r.full_secs).sum(),
        incremental_secs: records.iter().map(|r| r.incremental_secs).sum(),
        median_compile_speedup,
        median_speedup,
        tracked_edits,
        tracked_median_speedup,
        max_speedup,
        incremental_share,
        outputs_identical,
        speedup_asserted,
        cases: records,
    };
    println!(
        "\n{}: {} edits | full {:.3}s | incremental {:.3}s | median speedup {:.2}x | tracked \
         {}/{} median {:.2}x | best {:.2}x | incremental share {:.0}% | identical: {}",
        record.case,
        record.edits,
        record.full_secs,
        record.incremental_secs,
        record.median_speedup,
        record.tracked_edits,
        record.edits,
        record.tracked_median_speedup,
        record.max_speedup,
        record.incremental_share * 100.0,
        record.outputs_identical,
    );
    // The identity contract holds unconditionally; the speedup bounds
    // are only asserted where the measurement is honest (multi-core
    // hosts, full-size case — single-core CI boxes jitter past any
    // honest bound, so they record instead; same policy as `scaling`).
    assert!(
        record.outputs_identical,
        "incremental re-synthesis diverged from the cold path"
    );
    assert!(
        record.incremental_share > 0.0,
        "no edit exercised the incremental path"
    );
    if record.speedup_asserted {
        assert!(
            record.tracked_edits > 0,
            "no replay tracked its memo to the end of the run"
        );
        assert!(
            record.tracked_median_speedup >= 3.0,
            "tracked-replay median speedup {:.2}x below the 3x bound",
            record.tracked_median_speedup
        );
        assert!(
            record.max_speedup >= 5.0,
            "best replay speedup {:.2}x below the 5x bound",
            record.max_speedup
        );
        assert!(
            record.median_speedup >= 0.9,
            "incremental path slower than cold at the median ({:.2}x): the bail-out failed to \
             bound divergent replays",
            record.median_speedup
        );
    }
    let json = serde_json::to_string_pretty(&record).expect("serializable");
    std::fs::write("BENCH_10.json", json).expect("write BENCH_10.json");
    eprintln!("wrote BENCH_10.json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // Positional names select a subset of workloads (all by default):
    // `scale store` regenerates only BENCH_7.json.
    let only: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let known = [
        "kernel",
        "amortized",
        "service",
        "envelope",
        "scaling",
        "store",
        "overload",
        "phases",
        "edits",
    ];
    if let Some(bad) = only.iter().find(|w| !known.contains(w)) {
        eprintln!("unknown workload `{bad}` (expected one of {known:?})");
        std::process::exit(2);
    }
    let want = |name: &str| only.is_empty() || only.contains(&name);
    let engine = Engine::new(paper_library());
    let opts = SynthesisOptions::default();
    if want("kernel") {
        kernel_workload(smoke, &engine, &opts);
    }
    if want("amortized") {
        amortized_workload(smoke, &opts);
    }
    if want("service") {
        service_workload(smoke, &opts);
    }
    if want("envelope") {
        envelope_workload(smoke, &engine, &opts);
    }
    if want("scaling") {
        scaling_workload(smoke, &engine, &opts);
    }
    if want("store") {
        store_workload(smoke, &engine, &opts);
    }
    if want("overload") {
        overload_workload(smoke, &opts);
    }
    if want("phases") {
        phases_workload(smoke, &engine, &opts);
    }
    if want("edits") {
        edits_workload(smoke, &engine, &opts);
    }
}
