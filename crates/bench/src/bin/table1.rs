//! Regenerates Table 1 of the paper: the functional-unit library.

fn main() {
    let lib = pchls_fulib::paper_library();
    println!("Table 1. Functional unit library.");
    println!(
        "{:<10} {:<10} {:>5} {:>9} {:>5}",
        "Module", "Oprs", "Area", "Clk-cyc.", "P"
    );
    println!("{}", "-".repeat(44));
    for m in lib.modules() {
        let ops: Vec<&str> = m.ops().iter().map(|k| k.symbol()).collect();
        println!(
            "{:<10} {:<10} {:>5} {:>9} {:>5}",
            m.name(),
            format!("{{{}}}", ops.join(",")),
            m.area(),
            m.latency(),
            m.power()
        );
    }
}
