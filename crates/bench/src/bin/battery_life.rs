//! Extension experiment: battery lifetime of power-constrained designs
//! versus power-oblivious ones, on the three battery models — the
//! end-to-end demonstration of the paper's motivation.

use pchls_battery::{
    compare_profiles, BatteryModel, IdealBattery, PeukertBattery, RateCapacityBattery,
};
use pchls_core::{Engine, SynthesisConstraints, SynthesisOptions};
use pchls_fulib::{paper_library, SelectionPolicy};

fn main() {
    let engine = Engine::new(paper_library());
    // (benchmark, T for both designs, P< for the constrained design)
    let cases = [
        (pchls_cdfg::benchmarks::hal(), 17u32, 12.0),
        (pchls_cdfg::benchmarks::cosine(), 19, 25.0),
        (pchls_cdfg::benchmarks::elliptic(), 22, 20.0),
    ];
    println!("Battery lifetime: power-oblivious vs power-constrained designs");
    println!(
        "(lifetime in total clock cycles until battery cutoff; gain = constrained/oblivious)\n"
    );
    for (g, t, p) in cases {
        let compiled = engine.compile(&g);
        let session = engine.session(&compiled);
        let oblivious = session
            .unconstrained(t, SelectionPolicy::Fastest)
            .expect("latency is feasible");
        let constrained = session
            .synthesize(
                SynthesisConstraints::new(t, p),
                &SynthesisOptions::default(),
            )
            .expect("constraints are feasible");
        let base = oblivious.power_profile();
        let flat = constrained.power_profile();
        println!(
            "{:<9} T={t:<3} P<={p:<5}  peak {:.1} -> {:.1}",
            g.name(),
            base.peak(),
            flat.peak()
        );
        let capacity = 1_000_000.0;
        // The constrained design may also use *less energy* (serial
        // multipliers are more energy-efficient); the ideal battery
        // isolates that effect, and dividing it out leaves the gain
        // attributable purely to the flattened profile shape.
        let ideal = IdealBattery::new(capacity);
        let ideal_gain = compare_profiles(&ideal, base.per_cycle(), flat.per_cycle()).extension;
        let models: Vec<Box<dyn BatteryModel>> = vec![
            Box::new(ideal),
            Box::new(PeukertBattery::low_quality(capacity)),
            Box::new(RateCapacityBattery::low_quality(capacity)),
        ];
        for m in &models {
            let cmp = compare_profiles(m.as_ref(), base.per_cycle(), flat.per_cycle());
            println!(
                "  {:<14} lifetime {:>12} -> {:>12} cycles   gain {:.2}x  (shape-only {:.2}x)",
                cmp.model,
                cmp.baseline.total_cycles(base.per_cycle().len()),
                cmp.flattened.total_cycles(flat.per_cycle().len()),
                cmp.extension,
                cmp.extension / ideal_gain
            );
        }
        println!();
    }
}
