//! Ablation table: area achieved by each heuristic variant on the
//! Figure 2 curve points (one representative power bound per curve).
//! Feeds the ablation section of EXPERIMENTS.md.

use pchls_bench::figure2_curves;
use pchls_core::{Engine, SynthesisConstraints, SynthesisOptions};
use pchls_fulib::{paper_library, SelectionPolicy};

fn main() {
    let engine = Engine::new(paper_library());
    let variants: [(&str, SynthesisOptions); 4] = [
        ("full", SynthesisOptions::default()),
        (
            "-modsel",
            SynthesisOptions::builder().module_selection(false).build(),
        ),
        (
            "-interc",
            SynthesisOptions::builder()
                .interconnect_scoring(false)
                .build(),
        ),
        (
            "-backtr",
            SynthesisOptions::builder().backtracking(false).build(),
        ),
    ];
    println!("Ablation: functional-unit area per heuristic variant (P<=40)\n");
    print!("{:<14}", "curve");
    for (name, _) in &variants {
        print!("{name:>9}");
    }
    print!("{:>9}", "+refine");
    print!("{:>9}", "2step");
    println!("{:>9}", "trim");
    for (g, t) in figure2_curves() {
        let compiled = engine.compile(&g);
        let session = engine.session(&compiled);
        let c = SynthesisConstraints::new(t, 40.0);
        print!("{:<14}", format!("{}-T{t}", g.name()));
        for (_, opts) in &variants {
            match session.synthesize(c.clone(), opts) {
                Ok(d) => print!("{:>9}", d.area),
                Err(_) => print!("{:>9}", "-"),
            }
        }
        match session.synthesize_refined(c.clone(), &SynthesisOptions::default()) {
            Ok(d) => print!("{:>9}", d.area),
            Err(_) => print!("{:>9}", "-"),
        }
        match session.two_step(c.clone(), SelectionPolicy::Fastest) {
            Ok(b) if b.met_power => print!("{:>9}", b.design.area),
            Ok(_) => print!("{:>9}", "miss"),
            Err(_) => print!("{:>9}", "-"),
        }
        match session.trimmed_allocation(c, SelectionPolicy::Fastest) {
            Ok(d) => println!("{:>9}", d.area),
            Err(_) => println!("{:>9}", "-"),
        }
    }
}
