//! Regenerates Figure 1 of the paper: an undesired (spiky) power
//! schedule versus the desired (power-constrained) schedule for the same
//! workload and latency.

use pchls_cdfg::benchmarks::hal;
use pchls_fulib::{paper_library, SelectionPolicy};
use pchls_sched::{asap, pasap, PowerProfile, TimingMap};

fn main() {
    let g = hal();
    let lib = paper_library();
    let timing = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);

    let spiky = asap(&g, &timing);
    let spiky_profile = PowerProfile::of(&spiky, &timing);
    let bound = spiky_profile.peak() / 2.5; // the paper's dashed P< line

    let flat = pasap(&g, &timing, bound, 100).expect("power-feasible with this bound");
    let flat_profile = PowerProfile::of(&flat, &timing);

    println!("Figure 1. Power schedules for `hal` (fastest modules).");
    println!(
        "\nUndesired schedule (ASAP): peak {:.1}, {} cycles, peak/avg {:.2}",
        spiky_profile.peak(),
        spiky_profile.cycles(),
        spiky_profile.peak_to_average()
    );
    print!("{}", spiky_profile.to_ascii(40));
    println!(
        "\nDesired schedule (pasap, P< = {bound:.1}): peak {:.1}, {} cycles, peak/avg {:.2}",
        flat_profile.peak(),
        flat_profile.cycles(),
        flat_profile.peak_to_average()
    );
    print!("{}", flat_profile.to_ascii(40));
    assert!(flat_profile.peak() <= bound + 1e-9);
}
