//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! Each artifact has a dedicated binary:
//!
//! | Artifact | Binary | Content |
//! |---|---|---|
//! | Table 1  | `table1`  | the functional-unit library |
//! | Figure 1 | `figure1` | undesired vs. desired power schedule |
//! | Figure 2 | `figure2` | area vs. power under different latency constraints |
//! | Battery (extension) | `battery_life` | lifetime gain of power-constrained designs |
//!
//! Binaries print the series to stdout and, where useful, dump JSON
//! under `results/` for `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::Path;

use pchls_cdfg::{random_dag, Cdfg, RandomDagConfig};
use pchls_core::{
    power_sweep_serial, CompiledGraph, Engine, SweepJob, SweepPoint, SweepResult, SweepSpec,
    SynthesisConstraints, SynthesisOptions,
};
use pchls_fulib::{paper_library, ModuleLibrary, SelectionPolicy};
use pchls_sched::TimingMap;

/// The `(benchmark, latency)` curves of Figure 2, in the paper's legend
/// order: hal (T=10), hal (T=17), cosine (T=12), cosine (T=15),
/// cosine (T=19), elliptic (T=22).
#[must_use]
pub fn figure2_curves() -> Vec<(Cdfg, u32)> {
    use pchls_cdfg::benchmarks::{cosine, elliptic, hal};
    vec![
        (hal(), 10),
        (hal(), 17),
        (cosine(), 12),
        (cosine(), 15),
        (cosine(), 19),
        (elliptic(), 22),
    ]
}

/// The power grid of Figure 2's x-axis: 0 to 150 power units in steps of
/// 2.5 (the paper's smallest module power).
#[must_use]
pub fn figure2_power_grid() -> Vec<f64> {
    (1..=60).map(|i| f64::from(i) * 2.5).collect()
}

/// Runs one Figure 2 curve (grid points in parallel) through a
/// throwaway [`Engine`] session.
#[must_use]
pub fn run_curve(graph: &Cdfg, library: &ModuleLibrary, latency: u32) -> Vec<SweepPoint> {
    let engine = Engine::new(library.clone());
    let compiled = engine.compile(graph);
    engine
        .session(&compiled)
        .sweep(
            &SweepSpec::power(latency, figure2_power_grid()),
            &SynthesisOptions::default(),
        )
        .into_points()
}

/// Runs one Figure 2 curve serially — the baseline [`run_curve`] must
/// match byte-for-byte and beat on wall clock.
#[must_use]
pub fn run_curve_serial(graph: &Cdfg, library: &ModuleLibrary, latency: u32) -> Vec<SweepPoint> {
    power_sweep_serial(
        graph,
        library,
        latency,
        &figure2_power_grid(),
        &SynthesisOptions::default(),
    )
}

/// Regenerates **all** Figure 2 curves at once, fanning every grid point
/// of every curve across the worker pool via
/// [`sweep_many`](pchls_core::sweep_many). Returns one point vector per
/// curve, in [`figure2_curves`] order.
#[must_use]
pub fn run_figure2(library: &ModuleLibrary) -> Vec<Vec<SweepPoint>> {
    let engine = Engine::new(library.clone());
    let curves = figure2_curves();
    let grid = figure2_power_grid();
    // Compile each distinct benchmark once — hal is swept at two
    // latencies but compiled a single time, which is the whole point of
    // the session API.
    let mut compiled: Vec<(String, CompiledGraph)> = Vec::new();
    for (graph, _) in &curves {
        if !compiled.iter().any(|(name, _)| name == graph.name()) {
            compiled.push((graph.name().to_owned(), engine.compile(graph)));
        }
    }
    let jobs: Vec<SweepJob<'_>> = curves
        .iter()
        .map(|(graph, latency)| SweepJob {
            compiled: &compiled
                .iter()
                .find(|(name, _)| name == graph.name())
                .expect("compiled above")
                .1,
            spec: SweepSpec::power(*latency, grid.clone()),
        })
        .collect();
    engine
        .sweep_batch(&jobs, &SynthesisOptions::default())
        .into_iter()
        .map(SweepResult::into_points)
        .collect()
}

/// Latency bound the `scale` workloads use for a graph: twice the
/// fastest-module critical path — generous enough that pasap can
/// stretch under the power cap, tight enough that module selection and
/// pair merging stay non-trivial.
#[must_use]
pub fn scale_latency_for(graph: &Cdfg) -> u32 {
    let lib = paper_library();
    let timing = TimingMap::from_policy(graph, &lib, SelectionPolicy::Fastest);
    pchls_sched::asap(graph, &timing).latency(&timing) * 2
}

/// The canonical random-graph case of the `scale` bench bin:
/// `(name, graph, constraints)` for `ops` operations under `seed`.
/// Shared between the bench binaries and the golden-trace test so the
/// committed decision trace is pinned to exactly the graph the
/// `BENCH_2` rand cases time.
#[must_use]
pub fn scale_random_case(
    ops: usize,
    seed: u64,
    power: f64,
) -> (String, Cdfg, SynthesisConstraints) {
    let graph = random_dag(&RandomDagConfig {
        ops,
        inputs: 6,
        outputs: 3,
        mul_permille: 300,
        depth_bias: 2,
        seed,
    });
    let constraints = SynthesisConstraints::new(scale_latency_for(&graph), power);
    (format!("rand{ops}/{seed}"), graph, constraints)
}

/// The rand200 case (`ops = 200, seed = 13, P< = 60`) — the `scale`
/// workload's largest kernel case and the graph whose decision trace is
/// byte-diffed against `crates/bench/tests/golden/rand200.json` in CI.
#[must_use]
pub fn rand200_case() -> (String, Cdfg, SynthesisConstraints) {
    scale_random_case(200, 13, 60.0)
}

/// Serializes sweep points as JSON into `results/<name>.json`.
///
/// # Panics
///
/// Panics on I/O errors — the harness binaries have no recovery path and
/// a loud failure is the desired behaviour.
pub fn dump_json(name: &str, points: &[SweepPoint]) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(points).expect("serializable");
    fs::write(&path, json).expect("write results file");
    eprintln!("wrote {}", path.display());
}

/// Renders sweep points as an aligned text table.
#[must_use]
pub fn format_points(points: &[SweepPoint]) -> String {
    let mut s = String::from("power    area  latency  peak   units\n");
    for p in points {
        match (p.area, p.latency, p.peak_power, p.units) {
            (Some(a), Some(l), Some(pk), Some(u)) => {
                s.push_str(&format!(
                    "{:>5.1} {:>7} {:>8} {:>6.1} {:>6}\n",
                    p.power_bound, a, l, pk, u
                ));
            }
            _ => s.push_str(&format!("{:>5.1}   (infeasible)\n", p.power_bound)),
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_fulib::paper_library;

    #[test]
    fn curves_match_the_paper_legend() {
        let curves = figure2_curves();
        let legend: Vec<(String, u32)> = curves
            .iter()
            .map(|(g, t)| (g.name().to_owned(), *t))
            .collect();
        assert_eq!(
            legend,
            vec![
                ("hal".to_owned(), 10),
                ("hal".to_owned(), 17),
                ("cosine".to_owned(), 12),
                ("cosine".to_owned(), 15),
                ("cosine".to_owned(), 19),
                ("elliptic".to_owned(), 22),
            ]
        );
    }

    #[test]
    fn power_grid_spans_the_figure_axis() {
        let grid = figure2_power_grid();
        assert!((grid[0] - 2.5).abs() < 1e-12);
        assert!((grid.last().unwrap() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn hal_t17_curve_is_mostly_feasible_and_monotone() {
        let lib = paper_library();
        let g = pchls_cdfg::benchmarks::hal();
        let pts = run_curve(&g, &lib, 17);
        let areas: Vec<u64> = pts.iter().filter_map(|p| p.area).collect();
        assert!(areas.len() > 40);
        for w in areas.windows(2) {
            assert!(w[1] <= w[0], "{areas:?}");
        }
    }

    #[test]
    fn format_is_row_per_point() {
        let lib = paper_library();
        let g = pchls_cdfg::benchmarks::hal();
        let pts = power_sweep_serial(&g, &lib, 17, &[5.0, 50.0], &SynthesisOptions::default());
        let text = format_points(&pts);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("infeasible"));
    }
}
