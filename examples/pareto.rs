//! Pareto exploration across both constraints: sweep (T, P<) over a
//! grid, compute the pareto-optimal design points, and show where the
//! portfolio synthesizer beats the plain paper algorithm.
//!
//! Run with `cargo run --release --example pareto`.

use pchls::cdfg::benchmarks::cosine;
use pchls::core::{
    pareto_front, Engine, SweepPoint, SweepSpec, SynthesisConstraints, SynthesisOptions,
};
use pchls::fulib::paper_library;

fn main() {
    let graph = cosine();
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(&graph);
    let session = engine.session(&compiled);
    let opts = SynthesisOptions::default();

    let grid: Vec<f64> = (1..=6).map(|i| f64::from(i) * 10.0).collect();
    let mut all: Vec<SweepPoint> = Vec::new();
    for t in [12u32, 15, 19, 25] {
        all.extend(
            session
                .sweep(&SweepSpec::power(t, grid.clone()), &opts)
                .into_points(),
        );
    }
    let front = pareto_front(&all);

    println!("pareto front over (T, P<, area) for `{}`:", graph.name());
    println!("{:>4} {:>7} {:>7}", "T", "P<", "area");
    let mut sorted = front.clone();
    sorted.sort_by(|a, b| {
        a.latency_bound
            .cmp(&b.latency_bound)
            .then(a.power_bound.partial_cmp(&b.power_bound).unwrap())
    });
    for p in &sorted {
        println!(
            "{:>4} {:>7.1} {:>7}",
            p.latency_bound,
            p.power_bound,
            p.area.expect("front points are feasible")
        );
    }

    println!("\nportfolio vs. paper algorithm on the front's corners:");
    for p in sorted.iter().take(3) {
        let c = SynthesisConstraints::new(p.latency_bound, p.power_bound);
        if let Ok(d) = session.synthesize_portfolio(c, &opts) {
            println!(
                "  T={:<3} P<={:<5.1} paper {:>5} -> portfolio {:>5}",
                p.latency_bound,
                p.power_bound,
                p.area.expect("feasible"),
                d.area
            );
        }
    }
}
