//! Quickstart: synthesize the HAL differential-equation benchmark under
//! a latency and a per-cycle power constraint, then inspect the result.
//!
//! Run with `cargo run --example quickstart`.

use pchls::cdfg::benchmarks::hal;
use pchls::core::{Engine, SynthesisConstraints, SynthesisOptions};
use pchls::fulib::paper_library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = hal();

    // The engine owns the module library and its indexes; compiling the
    // graph computes every per-graph analysis once. Reuse both for as
    // many constraint points as needed.
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(&graph);
    let library = engine.library();

    // The paper's constraints: finish within 17 cycles, never draw more
    // than 25 power units in any single cycle.
    let constraints = SynthesisConstraints::new(17, 25.0);
    let design = engine
        .session(&compiled)
        .synthesize(constraints.clone(), &SynthesisOptions::default())?;

    println!("synthesized `{}`: {}", graph.name(), design.summary());
    println!("\nfunctional units:");
    for (i, inst) in design.binding.instances().iter().enumerate() {
        let m = library.module(inst.module());
        println!(
            "  fu{i}: {:<9} area {:>4}  ops {:?}",
            m.name(),
            m.area(),
            inst.ops()
        );
    }

    println!(
        "\nper-cycle power profile (bound {}):",
        constraints.max_power()
    );
    print!(
        "{}",
        design
            .power_profile()
            .to_ascii_budget(40, &constraints.budget)
    );

    // Every invariant can be re-checked at any time.
    design.validate(&graph, library)?;
    println!("\nall invariants hold: schedule, power, binding");
    Ok(())
}
