//! Design-space exploration: sweep the power constraint for a DSP kernel
//! at several latency budgets and print the area trade-off curves — the
//! experiment behind Figure 2 of the paper, here on a 16-tap FIR filter
//! that is *not* part of the paper's benchmark set.
//!
//! Run with `cargo run --release --example design_space`.

use pchls::cdfg::benchmarks::fir;
use pchls::core::{Engine, SweepJob, SweepSpec, SynthesisOptions};
use pchls::fulib::paper_library;

fn main() {
    let graph = fir(16);
    // One engine, one compile — all four latency curves share the same
    // compiled artifacts and fan out over one worker pool.
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(&graph);
    let grid = engine.session(&compiled).auto_power_grid(12);

    println!("power/area trade-off for `{}`", graph.name());
    println!("(columns: one latency constraint each; cells: area or `-` if infeasible)\n");

    let latencies = [10u32, 14, 20, 32];
    let jobs: Vec<SweepJob<'_>> = latencies
        .iter()
        .map(|&t| SweepJob {
            compiled: &compiled,
            spec: SweepSpec::power(t, grid.clone()),
        })
        .collect();
    let curves: Vec<_> = engine
        .sweep_batch(&jobs, &SynthesisOptions::default())
        .into_iter()
        .map(pchls::core::SweepResult::into_points)
        .collect();

    print!("{:>8} ", "P<");
    for t in latencies {
        print!("{:>8} ", format!("T={t}"));
    }
    println!();
    for (i, p) in grid.iter().enumerate() {
        print!("{p:>8.1} ");
        for curve in &curves {
            match curve[i].area {
                Some(a) => print!("{a:>8} "),
                None => print!("{:>8} ", "-"),
            }
        }
        println!();
    }

    println!("\nreading the table:");
    println!(" * down a column: a larger power budget never costs area;");
    println!(" * across a row: relaxing the deadline shrinks the datapath;");
    println!(" * the `-` corner is the infeasible region of the constraint space.");
}
