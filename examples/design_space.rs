//! Design-space exploration: sweep the power constraint for a DSP kernel
//! at several latency budgets and print the area trade-off curves — the
//! experiment behind Figure 2 of the paper, here on a 16-tap FIR filter
//! that is *not* part of the paper's benchmark set.
//!
//! Run with `cargo run --release --example design_space`.

use pchls::cdfg::benchmarks::fir;
use pchls::core::{auto_power_grid, power_sweep, SynthesisOptions};
use pchls::fulib::paper_library;

fn main() {
    let graph = fir(16);
    let library = paper_library();
    let grid = auto_power_grid(&graph, &library, 12);

    println!("power/area trade-off for `{}`", graph.name());
    println!("(columns: one latency constraint each; cells: area or `-` if infeasible)\n");

    let latencies = [10u32, 14, 20, 32];
    let curves: Vec<_> = latencies
        .iter()
        .map(|&t| power_sweep(&graph, &library, t, &grid, &SynthesisOptions::default()))
        .collect();

    print!("{:>8} ", "P<");
    for t in latencies {
        print!("{:>8} ", format!("T={t}"));
    }
    println!();
    for (i, p) in grid.iter().enumerate() {
        print!("{p:>8.1} ");
        for curve in &curves {
            match curve[i].area {
                Some(a) => print!("{a:>8} "),
                None => print!("{:>8} ", "-"),
            }
        }
        println!();
    }

    println!("\nreading the table:");
    println!(" * down a column: a larger power budget never costs area;");
    println!(" * across a row: relaxing the deadline shrinks the datapath;");
    println!(" * the `-` corner is the infeasible region of the constraint space.");
}
