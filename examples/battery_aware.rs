//! Battery-aware synthesis: quantify how much battery lifetime a
//! power-constrained design buys over a power-oblivious one — the
//! end-to-end version of the paper's motivation (its Figure 1).
//!
//! Run with `cargo run --release --example battery_aware`.

use pchls::battery::{compare_profiles, BatteryModel, PeukertBattery, RateCapacityBattery};
use pchls::cdfg::benchmarks::elliptic;
use pchls::core::{Engine, SynthesisConstraints, SynthesisOptions};
use pchls::fulib::{paper_library, SelectionPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = elliptic();
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(&graph);
    let session = engine.session(&compiled);
    let latency = 24;

    // Power-oblivious design: fastest modules, ASAP schedule.
    let oblivious = session.unconstrained(latency, SelectionPolicy::Fastest)?;
    let spiky = oblivious.power_profile();

    // Power-constrained design at the same latency.
    let constrained = session.synthesize(
        SynthesisConstraints::new(latency, 16.0),
        &SynthesisOptions::default(),
    )?;
    let flat = constrained.power_profile();

    println!("`{}` at T={latency} cycles:", graph.name());
    println!(
        "  power-oblivious: area {:>5}, peak {:>5.1}, peak/avg {:.2}",
        oblivious.area,
        spiky.peak(),
        spiky.peak_to_average()
    );
    println!(
        "  power-aware:     area {:>5}, peak {:>5.1}, peak/avg {:.2}",
        constrained.area,
        flat.peak(),
        flat.peak_to_average()
    );

    let capacity = 2_000_000.0;
    let cells: [Box<dyn BatteryModel>; 3] = [
        Box::new(PeukertBattery::high_quality(capacity)),
        Box::new(PeukertBattery::low_quality(capacity)),
        Box::new(RateCapacityBattery::low_quality(capacity)),
    ];
    println!("\nbattery lifetime (total clock cycles until cutoff):");
    for cell in &cells {
        let cmp = compare_profiles(cell.as_ref(), spiky.per_cycle(), flat.per_cycle());
        println!(
            "  {:<14} {:>12} -> {:>12}   extension {:.1}%",
            cmp.model,
            cmp.baseline.total_cycles(spiky.per_cycle().len()),
            cmp.flattened.total_cycles(flat.per_cycle().len()),
            (cmp.extension - 1.0) * 100.0
        );
    }
    println!("\nlow-quality cells benefit most from flattening, matching the");
    println!("20-30% lifetime extensions the paper cites for battery-aware design.");
    Ok(())
}
