//! Bring your own dataflow graph: build a CDFG with the builder API,
//! synthesize it, verify the generated datapath against the reference
//! interpreter, and emit a structural HDL netlist.
//!
//! Run with `cargo run --example custom_dataflow`.

use pchls::cdfg::{CdfgBuilder, Interpreter, Stimulus};
use pchls::core::{Engine, SynthesisConstraints, SynthesisOptions};
use pchls::fulib::paper_library;
use pchls::rtl::{simulate, to_structural_hdl, Datapath};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A complex multiply-accumulate: acc' = acc + a*b  (complex values).
    let mut b = CdfgBuilder::new("cmac");
    let ar = b.input("a_re");
    let ai = b.input("a_im");
    let br = b.input("b_re");
    let bi = b.input("b_im");
    let accr = b.input("acc_re");
    let acci = b.input("acc_im");

    let p0 = b.mul(ar, br);
    let p1 = b.mul(ai, bi);
    let p2 = b.mul(ar, bi);
    let p3 = b.mul(ai, br);
    let re = b.sub(p0, p1);
    let im = b.add(p2, p3);
    let out_re = b.add(accr, re);
    let out_im = b.add(acci, im);
    b.output("acc_re_next", out_re);
    b.output("acc_im_next", out_im);
    let graph = b.finish()?;

    let engine = Engine::new(paper_library());
    let compiled = engine.compile(&graph);
    let library = engine.library();
    let design = engine.session(&compiled).synthesize(
        SynthesisConstraints::new(16, 12.0),
        &SynthesisOptions::default(),
    )?;
    println!("synthesized `{}`: {}", graph.name(), design.summary());

    // Cross-check the datapath against the reference interpreter.
    let datapath = Datapath::build(&graph, &design, library);
    let mut stim = Stimulus::new();
    for (k, v) in [
        ("a_re", 3),
        ("a_im", -2),
        ("b_re", 5),
        ("b_im", 7),
        ("acc_re", 100),
        ("acc_im", 200),
    ] {
        stim.insert(k.into(), v);
    }
    let run = simulate(&graph, &datapath, &stim)?;
    let reference = Interpreter::new(&graph).run(&stim)?;
    assert_eq!(run.outputs, reference);
    println!(
        "datapath simulation matches the interpreter: acc' = ({}, {})",
        run.outputs["acc_re_next"], run.outputs["acc_im_next"]
    );

    // Hand the design off as structural HDL.
    let hdl = to_structural_hdl(&graph, &design, library);
    println!("\n--- structural netlist (first 25 lines) ---");
    for line in hdl.lines().take(25) {
        println!("{line}");
    }
    Ok(())
}
