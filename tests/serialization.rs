//! Serialization round trips for the result-pipeline types: experiment
//! data written by the harness must be reloadable bit-for-bit.

use pchls::cdfg::{benchmarks, parse_cdfg, write_cdfg, Cdfg};
use pchls::core::{
    Engine, SweepPoint, SweepSpec, SynthesisConstraints, SynthesisOptions, SynthesizedDesign,
};
use pchls::fulib::{paper_library, parse_library, write_library};

/// One sweep through the session API.
fn sweep(graph: &Cdfg, latency: u32, powers: Vec<f64>) -> Vec<SweepPoint> {
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(graph);
    engine
        .session(&compiled)
        .sweep(
            &SweepSpec::power(latency, powers),
            &SynthesisOptions::default(),
        )
        .into_points()
}

#[test]
fn sweep_points_round_trip_through_json() {
    let g = benchmarks::hal();
    let points = sweep(&g, 17, vec![5.0, 12.0, 40.0]);
    let json = serde_json::to_string_pretty(&points).unwrap();
    let back: Vec<SweepPoint> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, points);
    // Infeasible points serialize as explicit nulls, not omissions.
    assert!(json.contains("null"));
}

#[test]
fn designs_round_trip_through_json() {
    let g = benchmarks::hal();
    let lib = paper_library();
    let engine = Engine::new(lib.clone());
    let compiled = engine.compile(&g);
    let d = engine
        .session(&compiled)
        .synthesize(
            SynthesisConstraints::new(17, 25.0),
            &SynthesisOptions::default(),
        )
        .unwrap();
    let json = serde_json::to_string(&d).unwrap();
    let back: SynthesizedDesign = serde_json::from_str(&json).unwrap();
    assert_eq!(back, d);
    // The deserialized design still validates.
    back.validate(&g, &lib).unwrap();
}

#[test]
fn graphs_round_trip_through_both_formats() {
    for g in benchmarks::all() {
        // Textual format.
        let text = write_cdfg(&g);
        assert_eq!(parse_cdfg(&text).unwrap(), g);
        // JSON.
        let json = serde_json::to_string(&g).unwrap();
        let back: Cdfg = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}

#[test]
fn libraries_round_trip_through_both_formats() {
    let lib = paper_library();
    assert_eq!(parse_library(&write_library(&lib)).unwrap(), lib);
    let json = serde_json::to_string(&lib).unwrap();
    let back: pchls::fulib::ModuleLibrary = serde_json::from_str(&json).unwrap();
    assert_eq!(back, lib);
}

#[test]
fn figure2_json_artifact_is_loadable() {
    // The exact pipeline the harness uses for results/figure2.json.
    let g = benchmarks::elliptic();
    let points = sweep(&g, 22, vec![10.0, 20.0, 40.0]);
    let json = serde_json::to_vec(&points).unwrap();
    let back: Vec<SweepPoint> = serde_json::from_slice(&json).unwrap();
    assert_eq!(back.len(), 3);
    assert!(back.iter().any(|p| p.is_feasible()));
}
