//! Property-based end-to-end tests: random DAGs through the full
//! synthesis + datapath-verification pipeline.

use proptest::prelude::*;

use pchls::cdfg::{random_dag, Cdfg, Interpreter, RandomDagConfig, Stimulus};
use pchls::core::{
    Engine, SynthesisConstraints, SynthesisError, SynthesisOptions, SynthesizedDesign,
};
use pchls::fulib::{paper_library, SelectionPolicy};
use pchls::rtl::{simulate, Datapath};
use pchls::sched::{asap, PowerProfile, TimingMap};

/// One-shot combined synthesis through the session API.
fn synth(graph: &Cdfg, c: SynthesisConstraints) -> Result<SynthesizedDesign, SynthesisError> {
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(graph);
    engine
        .session(&compiled)
        .synthesize(c, &SynthesisOptions::default())
}

prop_compose! {
    fn config()(
        ops in 4usize..40,
        inputs in 1usize..5,
        outputs in 1usize..3,
        mul_permille in 0u32..600,
        depth_bias in 0u32..4,
        seed in any::<u64>(),
    ) -> RandomDagConfig {
        RandomDagConfig { ops, inputs, outputs, mul_permille, depth_bias, seed }
    }
}

/// Generous constraints that are always feasible: twice the serial-module
/// critical path, power at the unconstrained fastest peak.
fn generous(graph: &Cdfg) -> SynthesisConstraints {
    let lib = paper_library();
    let slow = TimingMap::from_policy(graph, &lib, SelectionPolicy::MinArea);
    let latency = asap(graph, &slow).latency(&slow) * 2;
    let fast = TimingMap::from_policy(graph, &lib, SelectionPolicy::Fastest);
    let peak = PowerProfile::of(&asap(graph, &fast), &fast).peak();
    SynthesisConstraints::new(latency, peak.max(8.2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random DAG synthesizes under generous constraints and the
    /// result passes full validation.
    #[test]
    fn random_dags_synthesize_and_validate(cfg in config()) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let c = generous(&g);
        let d = synth(&g, c.clone()).expect("generous constraints are feasible");
        d.validate(&g, &lib).expect("invariants hold");
        prop_assert!(d.binding.is_complete());
        prop_assert!(d.latency <= c.latency);
    }

    /// The synthesized datapath computes exactly what the CDFG means.
    #[test]
    fn random_datapaths_match_the_interpreter(
        cfg in config(),
        vals in proptest::collection::vec(any::<i64>(), 8),
    ) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let d = synth(&g, generous(&g)).expect("feasible");
        let dp = Datapath::build(&g, &d, &lib);
        let stim: Stimulus = g
            .inputs()
            .enumerate()
            .map(|(i, n)| (n.label().to_owned(), vals[i % vals.len()]))
            .collect();
        let run = simulate(&g, &dp, &stim).expect("simulation is total");
        let reference = Interpreter::new(&g).run(&stim).expect("interpretable");
        prop_assert_eq!(run.outputs, reference);
    }

    /// Tightening power around the achieved peak stays feasible and never
    /// reports a violating design.
    #[test]
    fn retightening_power_is_self_consistent(cfg in config()) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let c = generous(&g);
        // One compile, both constraint points — the session API's
        // intended shape for re-tightening loops.
        let engine = Engine::new(lib.clone());
        let compiled = engine.compile(&g);
        let session = engine.session(&compiled);
        let d = session.synthesize(c.clone(), &SynthesisOptions::default()).expect("feasible");
        // The achieved peak is itself a feasible bound.
        let c2 = SynthesisConstraints::new(c.latency, d.peak_power);
        let d2 = session
            .synthesize(c2, &SynthesisOptions::default())
            .expect("achieved peak is feasible");
        prop_assert!(d2.peak_power <= d.peak_power + 1e-9);
        d2.validate(&g, &lib).expect("invariants hold");
    }
}
