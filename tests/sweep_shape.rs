//! Shape assertions for the Figure 2 reproduction: monotone curves,
//! latency-curve dominance, and feasibility-threshold ordering.

use pchls::cdfg::benchmarks;
use pchls::core::{Engine, SweepPoint, SweepSpec, SynthesisOptions};
use pchls::fulib::paper_library;

fn grid() -> Vec<f64> {
    (1..=30).map(|i| f64::from(i) * 5.0).collect()
}

fn curve(graph: &pchls::cdfg::Cdfg, latency: u32) -> Vec<SweepPoint> {
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(graph);
    engine
        .session(&compiled)
        .sweep(
            &SweepSpec::power(latency, grid()),
            &SynthesisOptions::default(),
        )
        .into_points()
}

/// Index of the first feasible point, i.e. the curve's power threshold.
fn threshold(points: &[SweepPoint]) -> usize {
    points
        .iter()
        .position(SweepPoint::is_feasible)
        .expect("some point is feasible")
}

#[test]
fn every_curve_is_monotone_nonincreasing() {
    for (g, t) in [
        (benchmarks::hal(), 10),
        (benchmarks::hal(), 17),
        (benchmarks::cosine(), 12),
        (benchmarks::cosine(), 19),
        (benchmarks::elliptic(), 22),
    ] {
        let pts = curve(&g, t);
        let areas: Vec<u64> = pts.iter().filter_map(|p| p.area).collect();
        assert!(!areas.is_empty(), "{} T={t} never feasible", g.name());
        for w in areas.windows(2) {
            assert!(w[1] <= w[0], "{} T={t}: {areas:?}", g.name(), t = t);
        }
    }
}

#[test]
fn tighter_latency_needs_more_power_to_become_feasible() {
    let tight = curve(&benchmarks::hal(), 10);
    let loose = curve(&benchmarks::hal(), 17);
    assert!(
        threshold(&tight) >= threshold(&loose),
        "T=10 threshold {} < T=17 threshold {}",
        threshold(&tight),
        threshold(&loose)
    );
}

#[test]
fn tighter_latency_curves_dominate_looser_ones() {
    let tight = curve(&benchmarks::hal(), 10);
    let loose = curve(&benchmarks::hal(), 17);
    for (a, b) in tight.iter().zip(&loose) {
        if let (Some(at), Some(bt)) = (a.area, b.area) {
            assert!(
                at >= bt,
                "P={}: T=10 area {at} < T=17 area {bt}",
                a.power_bound
            );
        }
    }
    // Same ordering across the cosine family.
    let c12 = curve(&benchmarks::cosine(), 12);
    let c19 = curve(&benchmarks::cosine(), 19);
    for (a, b) in c12.iter().zip(&c19) {
        if let (Some(at), Some(bt)) = (a.area, b.area) {
            assert!(
                at >= bt,
                "P={}: T=12 area {at} < T=19 area {bt}",
                a.power_bound
            );
        }
    }
}

#[test]
fn curves_flatten_once_power_stops_binding() {
    // Beyond the unconstrained peak, the constraint is inactive: the
    // last two grid points must coincide.
    for (g, t) in [(benchmarks::hal(), 17), (benchmarks::elliptic(), 22)] {
        let pts = curve(&g, t);
        let last = &pts[pts.len() - 1];
        let prev = &pts[pts.len() - 2];
        assert_eq!(last.area, prev.area, "{} T={t}", g.name());
    }
}

#[test]
fn feasible_region_is_upward_closed_in_power() {
    // Once feasible, a curve never becomes infeasible at higher power.
    for (g, t) in [(benchmarks::hal(), 10), (benchmarks::cosine(), 12)] {
        let pts = curve(&g, t);
        let first = threshold(&pts);
        assert!(
            pts[first..].iter().all(SweepPoint::is_feasible),
            "{} T={t} has a feasibility hole",
            g.name()
        );
    }
}
