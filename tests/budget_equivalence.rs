//! Guarantees of the `PowerBudget` generalization:
//!
//! * **Constant budgets are the scalar path** — whatever shape spells
//!   the constant (scalar `f64`, one-step envelope, flat per-cycle
//!   vector), synthesis output is byte-identical: designs, decision
//!   traces (`stats`), and serialized sweep-point bytes.
//! * **Envelopes genuinely change outcomes** — a stepwise budget
//!   unlocks constraint points between its floor and its peak: feasible
//!   where the floor constant is not, differently scheduled (and
//!   smaller) than the peak constant, and validated per cycle against
//!   the envelope.

use pchls::battery::budget_from_model;
use pchls::cdfg::benchmarks;
use pchls::core::{
    Engine, PowerBudget, Session, SweepSpec, SynthesisConstraints, SynthesisError,
    SynthesisOptions, SynthesisRequest, SynthesizedDesign,
};
use pchls::fulib::paper_library;

fn session_for(g: &pchls::cdfg::Cdfg) -> (Engine, pchls::core::CompiledGraph) {
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(g);
    (engine, compiled)
}

/// Everything except the `constraints` field (which rightly records the
/// request's own budget spelling) must match bit for bit.
fn assert_same_design(a: &SynthesizedDesign, b: &SynthesizedDesign, what: &str) {
    assert_eq!(a.schedule, b.schedule, "{what}: schedule diverged");
    assert_eq!(a.timing, b.timing, "{what}: timing diverged");
    assert_eq!(a.binding, b.binding, "{what}: binding diverged");
    assert_eq!(a.area, b.area, "{what}: area diverged");
    assert_eq!(a.latency, b.latency, "{what}: latency diverged");
    assert_eq!(
        a.peak_power.to_bits(),
        b.peak_power.to_bits(),
        "{what}: peak power diverged"
    );
    assert_eq!(a.stats, b.stats, "{what}: decision trace diverged");
}

#[test]
fn constant_budget_reproduces_the_scalar_path_byte_for_byte() {
    let opts = SynthesisOptions::default();
    for g in benchmarks::paper_set() {
        let (engine, compiled) = session_for(&g);
        let session = engine.session(&compiled);
        for (t, p) in [(10u32, 40.0), (17, 25.0), (22, 12.0), (30, 60.0)] {
            let scalar = session.synthesize(SynthesisConstraints::new(t, p), &opts);
            let spellings: [(&str, PowerBudget); 3] = [
                ("Constant", PowerBudget::constant(p)),
                ("one-step Steps", PowerBudget::steps(vec![(0, p)])),
                ("flat PerCycle", PowerBudget::per_cycle(vec![p; t as usize])),
            ];
            for (label, budget) in spellings {
                let via_budget = session.synthesize(SynthesisConstraints::new(t, budget), &opts);
                match (&scalar, &via_budget) {
                    (Ok(a), Ok(b)) => {
                        assert_same_design(a, b, &format!("{} T={t} P={p} {label}", g.name()));
                    }
                    (Err(_), Err(_)) => {}
                    (s, b) => panic!(
                        "{} T={t} P={p} {label}: feasibility diverged (scalar ok: {}, budget ok: {})",
                        g.name(),
                        s.is_ok(),
                        b.is_ok()
                    ),
                }
            }
        }
    }
}

#[test]
fn constant_budget_sweep_points_serialize_to_identical_bytes() {
    // The figure2.json pipeline, both ways: a scalar power sweep vs the
    // same grid expressed as constant-envelope batch requests.
    let g = benchmarks::hal();
    let (engine, compiled) = session_for(&g);
    let session = engine.session(&compiled);
    let opts = SynthesisOptions::default();
    let grid = [5.0, 12.0, 25.0, 60.0];

    let scalar_points = session
        .sweep(&SweepSpec::power(17, grid.to_vec()), &opts)
        .into_points();
    let budget_results = session.batch(grid.iter().map(|&p| {
        SynthesisRequest::new(SynthesisConstraints::new(
            17,
            PowerBudget::per_cycle(vec![p; 17]),
        ))
    }));
    // The sweep applies a monotone-envelope pass; on hal's grid the raw
    // batch outcomes already coincide point by point, so byte-compare
    // each pair.
    for (sp, br) in scalar_points.iter().zip(&budget_results) {
        let bp = br.to_point("hal");
        assert_eq!(
            serde_json::to_string(sp).unwrap(),
            serde_json::to_string(&bp).unwrap()
        );
    }
}

/// The end-to-end witness that envelopes widen the scenario space: at
/// `T = 10` hal is feasible under a constant 40 (area 1146) and
/// infeasible under a constant 15, while the stepwise envelope
/// `40 → 15@5` is feasible with a *different schedule* — the kernel
/// packs the power-hungry work into the loose opening phase.
#[test]
fn stepwise_envelope_demonstrably_changes_the_schedule() {
    let g = benchmarks::hal();
    let (engine, compiled) = session_for(&g);
    let session = engine.session(&compiled);
    let opts = SynthesisOptions::default();

    let peak_const = session
        .synthesize(SynthesisConstraints::new(10, 40.0), &opts)
        .expect("loose constant is feasible");
    let floor_const = session.synthesize(SynthesisConstraints::new(10, 15.0), &opts);
    assert!(
        matches!(floor_const, Err(SynthesisError::Infeasible { .. })),
        "the envelope's floor alone must be infeasible for this witness"
    );

    let budget = PowerBudget::steps(vec![(0, 40.0), (5, 15.0)]);
    let enveloped = session
        .synthesize(SynthesisConstraints::new(10, budget.clone()), &opts)
        .expect("the envelope unlocks the point");
    assert_ne!(
        enveloped.schedule, peak_const.schedule,
        "the tight tail must reshape the schedule"
    );
    // Per-cycle compliance against the envelope, not just the peak.
    let profile = enveloped.power_profile();
    for (c, &p) in profile.per_cycle().iter().enumerate() {
        assert!(
            p <= budget.bound_at(c as u32) + 1e-9,
            "cycle {c} draws {p} over bound {}",
            budget.bound_at(c as u32)
        );
    }
    enveloped
        .validate(&g, engine.library())
        .expect("envelope design validates");
    // And the envelope found a smaller design than the peak constant
    // (the loose phase is narrower than a uniformly loose budget, which
    // pressures the greedy into more sharing).
    assert!(
        enveloped.area < peak_const.area,
        "envelope area {} vs constant-40 area {}",
        enveloped.area,
        peak_const.area
    );
}

#[test]
fn budget_scale_sweeps_cover_the_floor_to_peak_transition() {
    let g = benchmarks::hal();
    let (engine, compiled) = session_for(&g);
    let session = engine.session(&compiled);
    let opts = SynthesisOptions::default();
    let budget = PowerBudget::steps(vec![(0, 40.0), (5, 15.0)]);
    let scales = vec![0.1, 0.5, 1.0, 1.5];
    let spec = SweepSpec::budget_scale(10, budget, scales.clone());
    assert_eq!(spec.len(), scales.len());
    let result = session.sweep(&spec, &opts);
    assert_eq!(result.points.len(), scales.len());
    // A starved envelope is infeasible, the full one is feasible, and
    // feasibility is monotone along the scale axis (enforced by the
    // envelope carry).
    assert!(!result.points[0].is_feasible());
    assert!(result.points[2].is_feasible());
    let mut seen_feasible = false;
    for p in &result.points {
        if p.is_feasible() {
            seen_feasible = true;
        } else {
            assert!(!seen_feasible, "feasibility must be monotone in scale");
        }
    }
    // Areas never grow as the envelope relaxes.
    let areas: Vec<u64> = result.points.iter().filter_map(|p| p.area).collect();
    for w in areas.windows(2) {
        assert!(w[1] <= w[0], "{areas:?}");
    }
}

#[test]
fn battery_derived_budgets_flow_end_to_end_into_synthesis() {
    // The full coupling the paper motivates: battery model → sagging
    // envelope → synthesis constraint → validated design.
    let g = benchmarks::hal();
    let (engine, compiled) = session_for(&g);
    let session = engine.session(&compiled);
    let cell = pchls::battery::RateCapacityBattery::low_quality(2_000.0);
    let budget = budget_from_model(&cell, 20, 25.0, 9.0);
    assert!(budget.as_constant().is_none(), "the weak cell must sag");
    let design = session
        .synthesize(
            SynthesisConstraints::new(20, budget.clone()),
            &SynthesisOptions::default(),
        )
        .expect("the sagging envelope stays feasible on hal at T=20");
    design.validate(&g, engine.library()).unwrap();
    let profile = design.power_profile();
    for (c, &p) in profile.per_cycle().iter().enumerate() {
        assert!(p <= budget.bound_at(c as u32) + 1e-9, "cycle {c}");
    }
}

#[test]
fn refined_and_portfolio_respect_envelope_constraints() {
    // The ratchet must tighten an envelope by clamping, never by
    // replacing it with a scalar that relaxes a phase.
    let g = benchmarks::hal();
    let (engine, compiled) = session_for(&g);
    let session = engine.session(&compiled);
    let opts = SynthesisOptions::default();
    let budget = PowerBudget::steps(vec![(0, 40.0), (9, 12.0)]);
    let c = SynthesisConstraints::new(17, budget.clone());
    let refined = session
        .synthesize_refined(c.clone(), &opts)
        .expect("feasible");
    refined.validate(&g, engine.library()).unwrap();
    assert_eq!(refined.constraints, c, "original constraints reported");
    let plain = session.synthesize(c.clone(), &opts).unwrap();
    assert!(refined.area <= plain.area);
    let portfolio = session.synthesize_portfolio(c, &opts).expect("feasible");
    portfolio.validate(&g, engine.library()).unwrap();
}

#[test]
fn two_step_baseline_flattens_against_the_envelope() {
    use pchls::fulib::SelectionPolicy;
    let g = benchmarks::hal();
    let (engine, compiled) = session_for(&g);
    let session = engine.session(&compiled);
    let budget = PowerBudget::steps(vec![(0, 40.0), (9, 20.0)]);
    let c = SynthesisConstraints::new(20, budget.clone());
    let baseline = session
        .two_step(c, SelectionPolicy::Fastest)
        .expect("latency feasible");
    if baseline.met_power {
        let profile = baseline.design.power_profile();
        for (cyc, &p) in profile.per_cycle().iter().enumerate() {
            assert!(p <= budget.bound_at(cyc as u32) + 1e-9, "cycle {cyc}");
        }
    }
}

#[test]
fn budget_entries_past_the_horizon_cannot_change_the_outcome() {
    // A bound that lies entirely past the latency deadline can never
    // admit or constrain anything: the effective peak every
    // quick-reject compares against is horizon-bounded, so appending
    // an unreachable loose phase must leave the design bit-identical
    // (it once let the bootstrap pick modules the scheduler then
    // hard-rejected, flipping feasible points to Infeasible).
    let g = benchmarks::hal();
    let (engine, compiled) = session_for(&g);
    let session = engine.session(&compiled);
    let opts = SynthesisOptions::default();
    for (t, p) in [(17u32, 25.0), (10, 40.0)] {
        let exact = session
            .synthesize(
                SynthesisConstraints::new(t, PowerBudget::per_cycle(vec![p; t as usize])),
                &opts,
            )
            .expect("feasible");
        let mut overhang = vec![p; t as usize];
        overhang.push(1_000.0);
        let with_overhang = session
            .synthesize(
                SynthesisConstraints::new(t, PowerBudget::per_cycle(overhang)),
                &opts,
            )
            .expect("the unreachable bound must not break feasibility");
        assert_same_design(&exact, &with_overhang, &format!("hal T={t} P={p} overhang"));
        // A step at the horizon is equally inert.
        let stepped = session
            .synthesize(
                SynthesisConstraints::new(t, PowerBudget::steps(vec![(0, p), (t, 1_000.0)])),
                &opts,
            )
            .expect("feasible");
        assert_same_design(&exact, &stepped, &format!("hal T={t} P={p} late step"));
    }
    // And the reported constraint peak is the effective one.
    let c = SynthesisConstraints::new(10, PowerBudget::steps(vec![(0, 20.0), (10, 999.0)]));
    assert_eq!(c.max_power(), 20.0);
}

#[test]
fn session_type_is_still_copy_for_cheap_sharing() {
    // The constraints grew a Vec; the session handle must stay a
    // two-pointer Copy so fan-out code keeps passing it by value.
    fn assert_copy<T: Copy>() {}
    assert_copy::<Session<'_>>();
}
