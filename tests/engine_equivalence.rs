//! API-equivalence guarantees of the session redesign: the deprecated
//! free functions and the `Engine`/`Session` path must produce
//! **identical** designs — and identical `figure2.json` bytes — on all
//! paper benchmarks, and `Session::batch` must match one-at-a-time
//! synthesis on arbitrary request lists.

#![allow(deprecated)]

use proptest::prelude::*;

use pchls::cdfg::benchmarks;
use pchls::core::{
    power_sweep, sweep_many, synthesize, synthesize_portfolio, synthesize_refined, Engine,
    SweepRequest, SweepSpec, SynthesisConstraints, SynthesisOptions, SynthesisRequest,
};
use pchls::fulib::paper_library;

/// The Figure 2 curves, `(graph, T)`, in legend order.
fn figure2_curves() -> Vec<(pchls::cdfg::Cdfg, u32)> {
    vec![
        (benchmarks::hal(), 10),
        (benchmarks::hal(), 17),
        (benchmarks::cosine(), 12),
        (benchmarks::cosine(), 15),
        (benchmarks::cosine(), 19),
        (benchmarks::elliptic(), 22),
    ]
}

/// Every 5th point of the Figure 2 power grid — spans the axis at
/// debug-build cost.
fn thinned_grid() -> Vec<f64> {
    (1..=60).map(|i| f64::from(i) * 2.5).step_by(5).collect()
}

#[test]
fn shim_and_session_designs_are_identical_on_paper_benchmarks() {
    let lib = paper_library();
    let engine = Engine::new(lib.clone());
    let opts = SynthesisOptions::default();
    for g in benchmarks::paper_set() {
        let compiled = engine.compile(&g);
        let session = engine.session(&compiled);
        for (t, p) in [(10u32, 40.0), (17, 25.0), (22, 12.0), (30, 60.0)] {
            let c = SynthesisConstraints::new(t, p);
            let old = synthesize(&g, &lib, c.clone(), &opts);
            let new = session.synthesize(c, &opts);
            match (old, new) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "{} T={t} P={p}", g.name());
                    assert_eq!(a.stats, b.stats, "{} T={t} P={p} trace", g.name());
                }
                (Err(_), Err(_)) => {}
                (o, n) => panic!(
                    "{} T={t} P={p}: feasibility diverged (old ok: {}, new ok: {})",
                    g.name(),
                    o.is_ok(),
                    n.is_ok()
                ),
            }
        }
    }
}

#[test]
fn shim_and_session_refined_and_portfolio_are_identical() {
    let lib = paper_library();
    let engine = Engine::new(lib.clone());
    let opts = SynthesisOptions::default();
    for g in benchmarks::paper_set() {
        let compiled = engine.compile(&g);
        let session = engine.session(&compiled);
        let c = SynthesisConstraints::new(25, 40.0);
        assert_eq!(
            synthesize_refined(&g, &lib, c.clone(), &opts).ok(),
            session.synthesize_refined(c.clone(), &opts).ok(),
            "{} refined",
            g.name()
        );
        assert_eq!(
            synthesize_portfolio(&g, &lib, c.clone(), &opts).ok(),
            session.synthesize_portfolio(c, &opts).ok(),
            "{} portfolio",
            g.name()
        );
    }
}

#[test]
fn figure2_json_bytes_are_identical_between_shim_and_session_paths() {
    // The exact serialization pipeline behind results/figure2.json, both
    // ways, on every paper curve (thinned grid — the byte-equality
    // guarantee is per point, so grid density changes nothing).
    let lib = paper_library();
    let engine = Engine::new(lib.clone());
    let opts = SynthesisOptions::default();
    let grid = thinned_grid();

    let mut old_points = Vec::new();
    let mut new_points = Vec::new();
    for (g, t) in figure2_curves() {
        old_points.extend(power_sweep(&g, &lib, t, &grid, &opts));
        let compiled = engine.compile(&g);
        new_points.extend(
            engine
                .session(&compiled)
                .sweep(&SweepSpec::power(t, grid.clone()), &opts)
                .into_points(),
        );
    }
    let old_json = serde_json::to_vec(&old_points).unwrap();
    let new_json = serde_json::to_vec(&new_points).unwrap();
    assert_eq!(old_json, new_json, "figure2.json bytes diverged");

    // The whole-figure fan-outs agree too.
    let curves = figure2_curves();
    let requests: Vec<SweepRequest<'_>> = curves
        .iter()
        .map(|(g, t)| SweepRequest {
            graph: g,
            latency: *t,
            powers: &grid,
        })
        .collect();
    let many: Vec<_> = sweep_many(&requests, &lib, &opts)
        .into_iter()
        .flatten()
        .collect();
    let many_json = serde_json::to_vec(&many).unwrap();
    assert_eq!(many_json, new_json, "sweep_many bytes diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random `(T, P<)` request batches through `Session::batch` match
    /// one-at-a-time `synthesize` — same designs, same feasibility, in
    /// request order.
    #[test]
    fn random_request_batches_match_one_at_a_time_synthesis(
        points in proptest::collection::vec((5u32..40, 4.0f64..120.0), 1..12),
        pick_cosine in any::<bool>(),
    ) {
        let g = if pick_cosine { benchmarks::cosine() } else { benchmarks::hal() };
        let lib = paper_library();
        let engine = Engine::new(lib.clone());
        let compiled = engine.compile(&g);
        let session = engine.session(&compiled);
        let opts = SynthesisOptions::default();

        let requests: Vec<SynthesisRequest> = points
            .iter()
            .map(|&(t, p)| SynthesisRequest::new(SynthesisConstraints::new(t, p)))
            .collect();
        let results = session.batch(requests.clone());
        prop_assert_eq!(results.len(), requests.len());
        for (r, &(t, p)) in results.iter().zip(&points) {
            let c = SynthesisConstraints::new(t, p);
            prop_assert_eq!(r.request.constraints.clone(), c.clone());
            let single = session.synthesize(c.clone(), &opts);
            let old = synthesize(&g, &lib, c.clone(), &opts);
            match (&r.outcome, single, old) {
                (Ok(b), Ok(s), Ok(o)) => {
                    prop_assert_eq!(b, &s, "batch vs single at T={} P={}", t, p);
                    prop_assert_eq!(b, &o, "batch vs shim at T={} P={}", t, p);
                }
                (Err(_), Err(_), Err(_)) => {}
                (b, s, o) => prop_assert!(
                    false,
                    "feasibility diverged at T={} P={}: batch {}, single {}, shim {}",
                    t, p, b.is_ok(), s.is_ok(), o.is_ok()
                ),
            }
        }
    }
}
