//! Cross-thread cancellation of a synthesis run: the progress hook's
//! `ControlFlow::Break` path must surface as
//! `SynthesisError::Cancelled`, and — because sessions share only
//! immutable compiled artifacts — an aborted run must leave **no
//! partial state** behind: re-running the same point on the same
//! session afterwards stays byte-identical to a fresh engine.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

use pchls::cdfg::{random_dag, RandomDagConfig};
use pchls::core::{Engine, SynthesisConstraints, SynthesisError, SynthesisOptions};
use pchls::fulib::paper_library;

/// A graph big enough that synthesis runs for many greedy iterations,
/// leaving a wide window to cancel mid-run.
fn chunky() -> pchls::cdfg::Cdfg {
    random_dag(&RandomDagConfig {
        ops: 150,
        inputs: 6,
        outputs: 3,
        mul_permille: 300,
        depth_bias: 2,
        seed: 7,
    })
}

#[test]
fn cancelling_mid_run_from_another_thread_leaves_no_partial_state() {
    let graph = chunky();
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(&graph);
    let session = engine.session(&compiled);
    let opts = SynthesisOptions::default();
    let constraints = SynthesisConstraints::new(compiled.min_latency() * 2, 60.0);

    // The reference outcome, computed before anything was cancelled.
    let reference = session
        .synthesize(constraints.clone(), &opts)
        .expect("feasible");

    // Cancel from another thread, deterministically mid-run: the hook
    // signals the canceller at iteration 5 and waits for the flag, so
    // the abort always lands while operations are still being bound.
    let cancel = AtomicBool::new(false);
    let iterations = AtomicUsize::new(0);
    let (ping, pong) = mpsc::channel::<()>();
    let err = std::thread::scope(|scope| {
        let cancel = &cancel;
        scope.spawn(move || {
            pong.recv().expect("hook pings mid-run");
            cancel.store(true, Ordering::SeqCst);
        });
        session
            .synthesize_with_progress(constraints.clone(), &opts, &mut |progress| {
                if cancel.load(Ordering::SeqCst) {
                    return ControlFlow::Break(());
                }
                let n = iterations.fetch_add(1, Ordering::SeqCst) + 1;
                assert!(progress.bound_ops <= progress.total_ops);
                if n == 5 {
                    ping.send(()).expect("canceller is listening");
                    // Hold this iteration open until the other thread
                    // has actually cancelled.
                    while !cancel.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                }
                ControlFlow::Continue(())
            })
            .expect_err("cancelled run must not produce a design")
    });
    assert!(matches!(err, SynthesisError::Cancelled), "{err:?}");
    let seen = iterations.load(Ordering::SeqCst);
    assert!(
        seen >= 5,
        "cancellation landed before the mid-run window ({seen} iterations)"
    );
    assert!(
        seen < graph.len(),
        "cancellation landed only after the run finished ({seen} iterations)"
    );

    // The same session, the same point, after the abort: byte-identical
    // design *and* identical decision-trace statistics, twice over.
    for attempt in 0..2 {
        let again = session
            .synthesize(constraints.clone(), &opts)
            .expect("feasible");
        assert_eq!(again, reference, "attempt {attempt}: design drifted");
        assert_eq!(
            again.stats, reference.stats,
            "attempt {attempt}: decision trace drifted"
        );
    }

    // And a completely fresh engine agrees, proving the abort corrupted
    // nothing shared.
    let fresh_engine = Engine::new(paper_library());
    let fresh_compiled = fresh_engine.compile(&graph);
    let fresh = fresh_engine
        .session(&fresh_compiled)
        .synthesize(constraints, &opts)
        .expect("feasible");
    assert_eq!(fresh, reference);
    assert_eq!(fresh.stats, reference.stats);
}

#[test]
fn cancellation_applies_to_every_constraint_point_independently() {
    // Cancel one point of a session, then run a different point on the
    // same session: the second point must equal a never-cancelled run.
    let graph = chunky();
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(&graph);
    let session = engine.session(&compiled);
    let opts = SynthesisOptions::default();
    let tight = SynthesisConstraints::new(compiled.min_latency(), 60.0);
    let loose = SynthesisConstraints::new(compiled.min_latency() * 3, 60.0);

    let err = session
        .synthesize_with_progress(tight, &opts, &mut |_| ControlFlow::Break(()))
        .expect_err("immediate break cancels");
    assert!(matches!(err, SynthesisError::Cancelled));

    let after = session.synthesize(loose.clone(), &opts).expect("feasible");
    let reference = engine.session(&compiled).synthesize(loose, &opts).unwrap();
    assert_eq!(after, reference);
}
