//! End-to-end pipeline tests: CDFG → synthesis → validation → datapath
//! simulation → battery accounting, across the paper's benchmarks and a
//! grid of constraints.

use pchls::battery::{compare_profiles, BatteryModel, RateCapacityBattery};
use pchls::cdfg::{benchmarks, Cdfg, Interpreter, Stimulus};
use pchls::core::{
    Engine, SynthesisConstraints, SynthesisError, SynthesisOptions, SynthesizedDesign,
};
use pchls::fulib::paper_library;
use pchls::rtl::{simulate, to_structural_hdl, Datapath};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One-shot combined synthesis through the session API.
fn synth(graph: &Cdfg, c: SynthesisConstraints) -> Result<SynthesizedDesign, SynthesisError> {
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(graph);
    engine
        .session(&compiled)
        .synthesize(c, &SynthesisOptions::default())
}

fn random_stimulus(graph: &Cdfg, rng: &mut StdRng) -> Stimulus {
    graph
        .inputs()
        .map(|n| (n.label().to_owned(), rng.gen_range(-10_000..10_000)))
        .collect()
}

/// Synthesize, validate all invariants, and verify functional
/// equivalence of the generated datapath on random stimuli.
fn full_pipeline(graph: &Cdfg, latency: u32, power: f64) {
    let lib = paper_library();
    let design = synth(graph, SynthesisConstraints::new(latency, power))
        .unwrap_or_else(|e| panic!("{} T={latency} P={power}: {e}", graph.name()));
    design.validate(graph, &lib).expect("all invariants hold");
    assert!(design.latency <= latency);
    assert!(design.peak_power <= power + 1e-9);

    let dp = Datapath::build(graph, &design, &lib);
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..10 {
        let stim = random_stimulus(graph, &mut rng);
        let run = simulate(graph, &dp, &stim).expect("simulation is total");
        let reference = Interpreter::new(graph).run(&stim).expect("interpretable");
        assert_eq!(run.outputs, reference, "{} diverged", graph.name());
    }

    // The HDL emitter accepts every synthesized design.
    let hdl = to_structural_hdl(graph, &design, &lib);
    assert!(hdl.contains("endmodule"));
}

#[test]
fn hal_across_the_constraint_grid() {
    let g = benchmarks::hal();
    for (t, p) in [(10, 20.0), (10, 100.0), (17, 9.0), (17, 30.0), (25, 8.5)] {
        full_pipeline(&g, t, p);
    }
}

#[test]
fn cosine_across_the_constraint_grid() {
    let g = benchmarks::cosine();
    for (t, p) in [(12, 40.0), (15, 30.0), (19, 20.0)] {
        full_pipeline(&g, t, p);
    }
}

#[test]
fn elliptic_across_the_constraint_grid() {
    let g = benchmarks::elliptic();
    for (t, p) in [(22, 20.0), (22, 60.0), (30, 12.0)] {
        full_pipeline(&g, t, p);
    }
}

#[test]
fn extra_benchmarks_synthesize_too() {
    full_pipeline(&benchmarks::ar_filter(), 20, 25.0);
    full_pipeline(&benchmarks::fir(8), 16, 20.0);
    full_pipeline(&benchmarks::fft_butterfly(), 14, 18.0);
}

#[test]
fn flattened_designs_extend_battery_life() {
    // The full chain of the paper's argument: a power-constrained design
    // must beat the unconstrained one on a low-quality battery.
    let lib = paper_library();
    let g = benchmarks::hal();
    let latency = 20;
    let oblivious =
        pchls::core::unconstrained_bind(&g, &lib, latency, pchls::fulib::SelectionPolicy::Fastest)
            .expect("latency is generous");
    let constrained = synth(&g, SynthesisConstraints::new(latency, 12.0)).expect("feasible");
    let battery = RateCapacityBattery::low_quality(1_000_000.0);
    let cmp = compare_profiles(
        &battery,
        oblivious.power_profile().per_cycle(),
        constrained.power_profile().per_cycle(),
    );
    assert!(
        cmp.extension > 1.05,
        "flattening extended lifetime only {:.3}x",
        cmp.extension
    );
    // And the ideal battery confirms the gain comes from the shape, not
    // from doing less work.
    let ideal = pchls::battery::IdealBattery::new(1_000_000.0);
    let _ = ideal.lifetime(constrained.power_profile().per_cycle());
}

#[test]
fn infeasible_corner_is_rejected_not_mangled() {
    for g in benchmarks::paper_set() {
        // A power budget below every multiplier's draw can never work
        // for graphs containing multiplications.
        let err = synth(&g, SynthesisConstraints::new(1000, 2.0)).unwrap_err();
        assert!(matches!(
            err,
            pchls::core::SynthesisError::Infeasible { .. }
        ));
    }
}

#[test]
fn cse_before_synthesis_never_costs_area() {
    // Optimizing the graph first (hal carries a duplicate u*dx) must not
    // increase area, and the optimized design still simulates correctly
    // against the *optimized* graph's interpreter.
    let lib = paper_library();
    let g = benchmarks::hal();
    // `compile_optimized` runs CSE/DCE and keeps the report.
    let engine = Engine::new(lib.clone());
    let compiled = engine.compile_optimized(&g).unwrap();
    let stats = compiled.optimize_stats().unwrap();
    assert!(stats.merged >= 1);
    let o = compiled.graph().clone();
    let c = SynthesisConstraints::new(17, 25.0);
    let plain = synth(&g, c.clone()).unwrap();
    let optimized = engine
        .session(&compiled)
        .synthesize(c, &SynthesisOptions::default())
        .unwrap();
    assert!(
        optimized.area <= plain.area,
        "optimized {} > plain {}",
        optimized.area,
        plain.area
    );
    // Full pipeline on the optimized graph.
    let dp = Datapath::build(&o, &optimized, &lib);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..5 {
        let stim = random_stimulus(&o, &mut rng);
        let run = simulate(&o, &dp, &stim).unwrap();
        let reference = Interpreter::new(&o).run(&stim).unwrap();
        assert_eq!(run.outputs, reference);
    }
}
