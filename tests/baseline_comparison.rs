//! The paper's qualitative claims against the two-step baseline
//! (refs [1, 2]): two-phase methods can fail the power constraint where
//! the simultaneous algorithm succeeds, and the simultaneous algorithm
//! exploits module selection that two-phase flows cannot.

use pchls::cdfg::benchmarks;
use pchls::core::{
    two_step_bind, Engine, SynthesisConstraints, SynthesisError, SynthesisOptions,
    SynthesizedDesign,
};
use pchls::fulib::{paper_library, SelectionPolicy};

/// One-shot combined synthesis through the session API.
fn synth(
    g: &pchls::cdfg::Cdfg,
    c: SynthesisConstraints,
) -> Result<SynthesizedDesign, SynthesisError> {
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(g);
    engine
        .session(&compiled)
        .synthesize(c, &SynthesisOptions::default())
}

#[test]
fn two_step_fails_where_combined_succeeds() {
    // hal at T=12, P<=15: the ASAP schedule with fastest modules peaks
    // at 36.6 and the mobility-based reorder cannot get under 15 in 12
    // cycles (measured), while the combined algorithm trades multiplier
    // types and meets the bound.
    let lib = paper_library();
    let g = benchmarks::hal();
    let c = SynthesisConstraints::new(12, 15.0);

    let two =
        two_step_bind(&g, &lib, c.clone(), SelectionPolicy::Fastest).expect("latency feasible");
    assert!(
        !two.met_power,
        "expected the two-step baseline to miss the power bound"
    );

    let combined = synth(&g, c).expect("the combined algorithm meets the same constraints");
    combined.validate(&g, &lib).unwrap();
    assert!(combined.peak_power <= 15.0 + 1e-9);
}

#[test]
fn combined_design_is_smaller_when_power_binds() {
    // hal at T=17, P<=12: both succeed, but the two-step flow is stuck
    // with the fastest-module selection it started from, while the
    // combined algorithm swaps in serial multipliers.
    let lib = paper_library();
    let g = benchmarks::hal();
    let c = SynthesisConstraints::new(17, 12.0);

    let two =
        two_step_bind(&g, &lib, c.clone(), SelectionPolicy::Fastest).expect("latency feasible");
    let combined = synth(&g, c).expect("feasible");
    assert!(two.met_power, "baseline meets power at this point");
    assert!(
        combined.area < two.design.area,
        "combined {} !< two-step {}",
        combined.area,
        two.design.area
    );
}

#[test]
fn combined_never_reports_a_violating_design() {
    // Unlike the two-step baseline (which returns best-effort designs
    // with `met_power = false`), the combined algorithm either meets
    // both constraints or returns an error — across a whole grid.
    let lib = paper_library();
    let engine = Engine::new(lib.clone());
    for g in benchmarks::paper_set() {
        // One compile per benchmark, shared by the whole constraint grid.
        let compiled = engine.compile(&g);
        let session = engine.session(&compiled);
        for t in [10u32, 15, 22, 30] {
            for p in [9.0, 15.0, 30.0, 80.0] {
                if let Ok(d) = session.synthesize(
                    SynthesisConstraints::new(t, p),
                    &SynthesisOptions::default(),
                ) {
                    assert!(d.latency <= t, "{} T={t} P={p}", g.name());
                    assert!(d.peak_power <= p + 1e-9, "{} T={t} P={p}", g.name());
                    d.validate(&g, &lib).unwrap();
                }
            }
        }
    }
}

#[test]
fn unconstrained_baseline_shows_the_spikes() {
    // Figure 1's premise: the power-oblivious design has a worse
    // peak-to-average ratio than any power-constrained one.
    let lib = paper_library();
    let g = benchmarks::hal();
    let oblivious =
        pchls::core::unconstrained_bind(&g, &lib, 20, SelectionPolicy::Fastest).unwrap();
    let constrained = synth(&g, SynthesisConstraints::new(20, 12.0)).unwrap();
    assert!(
        oblivious.power_profile().peak_to_average() > constrained.power_profile().peak_to_average()
    );
}
