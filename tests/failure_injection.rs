//! Failure injection: corrupt valid designs in targeted ways and verify
//! that every validator catches the corruption. A validator that accepts
//! garbage would silently void the whole correctness story.

use pchls::cdfg::{benchmarks, OpKind};
use pchls::core::{Engine, SynthesisConstraints, SynthesisOptions, SynthesizedDesign};
use pchls::fulib::paper_library;
use pchls::sched::{OpTiming, Schedule};

fn valid_design() -> (pchls::cdfg::Cdfg, SynthesizedDesign) {
    let g = benchmarks::hal();
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(&g);
    let d = engine
        .session(&compiled)
        .synthesize(
            SynthesisConstraints::new(17, 25.0),
            &SynthesisOptions::default(),
        )
        .expect("feasible");
    (g, d)
}

#[test]
fn baseline_design_is_valid() {
    let (g, d) = valid_design();
    d.validate(&g, &paper_library()).unwrap();
}

#[test]
fn pulling_an_op_before_its_operand_is_caught() {
    let (g, d) = valid_design();
    // Find an op whose start is positive and has operands.
    let victim = g
        .node_ids()
        .find(|&id| !g.operands(id).is_empty() && d.schedule.start(id) > 0)
        .expect("hal has interior ops");
    let mut starts = d.schedule.starts().to_vec();
    starts[victim.index()] = 0;
    let corrupted = SynthesizedDesign {
        schedule: Schedule::new(starts),
        ..d
    };
    assert!(corrupted.validate(&g, &paper_library()).is_err());
}

#[test]
fn pushing_an_op_past_the_deadline_is_caught() {
    let (g, d) = valid_design();
    let victim = g.outputs().next().unwrap().id();
    let mut starts = d.schedule.starts().to_vec();
    starts[victim.index()] = d.constraints.latency + 5;
    let corrupted = SynthesizedDesign {
        schedule: Schedule::new(starts),
        ..d
    };
    assert!(corrupted.validate(&g, &paper_library()).is_err());
}

#[test]
fn inflating_op_power_past_the_bound_is_caught() {
    let (g, d) = valid_design();
    let victim = g
        .nodes()
        .iter()
        .find(|n| n.kind() == OpKind::Mul)
        .unwrap()
        .id();
    let mut timing = d.timing.clone();
    timing.set(
        victim,
        OpTiming {
            delay: timing.delay(victim),
            power: d.constraints.max_power() + 10.0,
        },
    );
    let corrupted = SynthesizedDesign { timing, ..d };
    assert!(corrupted.validate(&g, &paper_library()).is_err());
}

#[test]
fn timing_module_mismatch_is_caught() {
    let (g, d) = valid_design();
    // Give one multiplication a delay matching no module consistent with
    // its instance.
    let victim = g
        .nodes()
        .iter()
        .find(|n| n.kind() == OpKind::Mul)
        .unwrap()
        .id();
    let mut timing = d.timing.clone();
    timing.set(
        victim,
        OpTiming {
            delay: 1, // no 1-cycle multiplier exists
            power: timing.power(victim),
        },
    );
    let corrupted = SynthesizedDesign { timing, ..d };
    assert!(corrupted.validate(&g, &paper_library()).is_err());
}

#[test]
fn overlapping_shared_instance_is_caught() {
    let (g, d) = valid_design();
    // Find an instance with two ops and move the second onto the first's
    // start cycle.
    let inst = d
        .binding
        .instances()
        .iter()
        .find(|i| i.ops().len() >= 2)
        .expect("synthesis shares units at these constraints");
    let (a, b) = (inst.ops()[0], inst.ops()[1]);
    let mut starts = d.schedule.starts().to_vec();
    starts[b.index()] = starts[a.index()];
    let corrupted = SynthesizedDesign {
        schedule: Schedule::new(starts),
        ..d
    };
    assert!(corrupted.validate(&g, &paper_library()).is_err());
}

#[test]
fn lying_about_the_power_bound_is_caught() {
    let (g, d) = valid_design();
    let corrupted = SynthesizedDesign {
        constraints: SynthesisConstraints::new(d.constraints.latency, d.peak_power / 2.0),
        ..d
    };
    assert!(corrupted.validate(&g, &paper_library()).is_err());
}

#[test]
fn lying_about_the_latency_bound_is_caught() {
    let (g, d) = valid_design();
    let corrupted = SynthesizedDesign {
        constraints: SynthesisConstraints::new(
            d.latency.saturating_sub(2).max(1),
            d.constraints.max_power(),
        ),
        ..d
    };
    assert!(corrupted.validate(&g, &paper_library()).is_err());
}
