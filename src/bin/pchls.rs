//! `pchls` — command-line front end for the power-constrained high-level
//! synthesis library.
//!
//! ```text
//! pchls benchmarks
//! pchls dump <graph> [--dot]
//! pchls synth <graph> -T <cycles> (-P <power> | --budget <file>) [--library <file>] [--hdl] [--profile]
//! pchls sweep <graph> -T <cycles> [--steps <n>] [--budget <file>] [--store <dir>]
//! pchls batch <graph> --points <file> [--budget <file>] [--store <dir>]
//! pchls battery <graph> -T <cycles> (-P <power> | --budget <file>) [--capacity <charge>]
//! pchls serve (--stdio | --addr <host:port>) [--workers <n>] [--shards <n>] [--cache-cap <n>] [--queue-cap <n>]
//!             [--shed-depth <n>] [--rate <req/s>] [--burst <n>] [--max-line-bytes <n>] [--store <dir>]
//!             [--stats-interval <secs>] [--metrics]
//! pchls simulate <graph> -T <cycles> -P <power> --set name=value ...
//! pchls vcd <graph> -T <cycles> -P <power> --set name=value ... [--out <file>]
//! pchls store (stat|verify|compact) <dir>
//! ```
//!
//! `<graph>` is either a built-in benchmark name (`hal`, `cosine`,
//! `elliptic`, `ar`, `fir16`, `fft_bfly`) or a path to a `.dfg` file in
//! the textual CDFG format.
//!
//! `--budget <file>` replaces the scalar `-P` bound with a
//! **time-varying power envelope**: a JSON object of one of the shapes
//! `{"constant": 25.0}`, `{"steps": [[0, 30.0], [8, 12.0]]}` (each
//! `[cycle, bound]` step holds until the next), or
//! `{"per_cycle": [30.0, 30.0, 12.0, …]}` (exactly one bound per cycle
//! of `-T`). Validation rejects NaN, negative and wrong-horizon budgets
//! with the offending line number. Under `sweep`, the envelope is swept
//! over *scale factors* instead of a scalar power grid; under `batch`,
//! the points file's `P` column becomes the per-point scale factor.
//!
//! Every synthesis-shaped command compiles the graph once through the
//! session API ([`Engine::compile`]) and reuses the compiled artifacts
//! for all constraint points it evaluates — `batch` amortizes one
//! compile across a whole file of `(T, P<)` points.
//!
//! `--store <dir>` points `batch`/`sweep`/`serve` at a **persistent
//! result store** (`pchls-store`): constraint points already
//! materialized under the same graph fingerprint and budget digest are
//! read back instead of re-synthesized, and everything fresh is
//! appended, so an interrupted run resumes where it stopped and a
//! restarted service answers warm. `pchls store stat|verify|compact`
//! inspects and maintains a store directory.
//!
//! `--trace-out <file>` on `synth`/`batch` enables the `pchls-obs`
//! tracer for the run and writes every recorded span (compile, scoring,
//! ledger fits, FDS refits, TopK, commit) as Chrome trace-event JSON —
//! load the file in Perfetto or `chrome://tracing`. On `serve`,
//! `--stats-interval <secs>` prints the one-line stats summary to
//! stderr periodically from the reactor's timer wheel, and `--metrics`
//! dumps the Prometheus-style exposition at exit; live scrapes go
//! through the protocol's `metrics` op.

use std::collections::BTreeMap;
use std::process::ExitCode;

use pchls::battery::battery_report;
use pchls::cdfg::{benchmarks, parse_cdfg, write_cdfg, Cdfg, GraphStats, Interpreter};
use pchls::core::{
    CompiledGraph, Engine, PowerBudget, Session, SweepPoint, SweepResult, SweepSpec,
    SynthesisConstraints, SynthesisOptions, SynthesisRequest,
};
use pchls::fulib::{paper_library, parse_library, ModuleLibrary};
use pchls::rtl::{simulate, to_structural_hdl, Datapath};
use pchls::serve::{render_serve_stats, serve_stdio, serve_tcp, Service, ServiceConfig};
use pchls::store::{trace_bytes, Store, StoreKey, StoreRecord, StoreStat, STORE_FILE_NAME};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  pchls benchmarks
  pchls dump <graph> [--dot|--stats]
  pchls synth <graph> -T <cycles> (-P <power> | --budget <file>) [--library <file>] [--hdl] [--profile] [--gantt] [--refine] [--optimize] [--trace-out <file>]
  pchls sweep <graph> -T <cycles> [--steps <n>] [--budget <file>] [--store <dir>]   # with --budget, sweeps envelope scale factors
  pchls batch <graph> --points <file> [--budget <file>] [--store <dir>] [--trace-out <file>]   # one `T P` pair per line; with --budget, P scales the envelope
  pchls battery <graph> -T <cycles> (-P <power> | --budget <file>) [--capacity <charge>]
  pchls serve (--stdio | --addr <host:port>) [--workers <n>] [--shards <n>] [--cache-cap <n>] [--queue-cap <n>]
              [--shed-depth <n>] [--rate <req/s>] [--burst <n>] [--max-line-bytes <n>] [--store <dir>]
              [--stats-interval <secs>] [--metrics]
  pchls simulate <graph> -T <cycles> -P <power> --set name=value ...
  pchls vcd <graph> -T <cycles> -P <power> --set name=value ... [--out <file>]
  pchls store (stat|verify|compact) <dir>

budget files are JSON: {\"constant\": 25.0} | {\"steps\": [[0,30.0],[8,12.0]]} | {\"per_cycle\": [30.0,...]}
--store <dir> resumes batch/sweep from (and appends to) a persistent result store; serve uses it as a second cache tier
--trace-out <file> records kernel phase spans and writes Chrome trace-event JSON (open in Perfetto / chrome://tracing)
--stats-interval <secs> makes serve print its one-line stats summary to stderr every <secs> seconds; --metrics dumps the
Prometheus-style text exposition to stderr at exit (live scrape: send {\"op\":\"metrics\"} over the wire)";

/// Executes a parsed command line, returning the text to print.
fn run(args: &[String]) -> Result<String, String> {
    let (cmd, rest) = args.split_first().ok_or("missing command")?;
    match cmd.as_str() {
        "benchmarks" => Ok(list_benchmarks()),
        "dump" => dump(rest),
        "synth" => synth(rest),
        "sweep" => sweep(rest),
        "batch" => batch(rest),
        "battery" => battery(rest),
        "serve" => serve(rest),
        "store" => store_admin(rest),
        "simulate" => run_simulation(rest),
        "vcd" => run_vcd(rest),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn list_benchmarks() -> String {
    let mut s = String::from("built-in benchmark graphs:\n");
    for g in benchmarks::all() {
        let hist: Vec<String> = g
            .op_histogram()
            .into_iter()
            .map(|(k, c)| format!("{c}x{}", k.symbol()))
            .collect();
        s.push_str(&format!(
            "  {:<10} {:>3} nodes  ({})\n",
            g.name(),
            g.len(),
            hist.join(" ")
        ));
    }
    s
}

/// Loads a graph by benchmark name or from a `.dfg` file.
fn load_graph(spec: &str) -> Result<Cdfg, String> {
    if let Some(g) = benchmarks::all().into_iter().find(|g| g.name() == spec) {
        return Ok(g);
    }
    if std::path::Path::new(spec).exists() {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("reading {spec}: {e}"))?;
        return parse_cdfg(&text).map_err(|e| format!("parsing {spec}: {e}"));
    }
    Err(format!(
        "`{spec}` is neither a built-in benchmark nor an existing file"
    ))
}

fn load_library(flags: &Flags) -> Result<ModuleLibrary, String> {
    match flags.options.get("library") {
        None => Ok(paper_library()),
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            parse_library(&text).map_err(|e| format!("parsing {path}: {e}"))
        }
    }
}

/// Minimal flag parser: positionals, `--flag`, `--key value` / `-K value`
/// and repeatable `--set name=value`.
#[derive(Debug, Default)]
struct Flags {
    positionals: Vec<String>,
    switches: Vec<String>,
    options: BTreeMap<String, String>,
    sets: Vec<(String, i64)>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-T" | "--latency" => {
                let v = it.next().ok_or("-T needs a value")?;
                f.options.insert("latency".into(), v.clone());
            }
            "-P" | "--power" => {
                let v = it.next().ok_or("-P needs a value")?;
                f.options.insert("power".into(), v.clone());
            }
            "--library" | "--steps" | "--out" | "--points" | "--addr" | "--workers"
            | "--cache-cap" | "--queue-cap" | "--budget" | "--capacity" | "--store"
            | "--shards" | "--shed-depth" | "--rate" | "--burst" | "--max-line-bytes"
            | "--trace-out" | "--stats-interval" => {
                let key = a.trim_start_matches('-').to_owned();
                let v = it.next().ok_or_else(|| format!("{a} needs a value"))?;
                f.options.insert(key, v.clone());
            }
            "--set" => {
                let v = it.next().ok_or("--set needs name=value")?;
                let (name, value) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--set expects name=value, got `{v}`"))?;
                let value: i64 = value
                    .parse()
                    .map_err(|_| format!("`{value}` is not an integer"))?;
                f.sets.push((name.to_owned(), value));
            }
            s if s.starts_with("--") => f.switches.push(s.trim_start_matches('-').to_owned()),
            _ => f.positionals.push(a.clone()),
        }
    }
    Ok(f)
}

/// Arms the process tracer when `--trace-out <file>` is present and
/// returns the target path; the caller writes the snapshot out with
/// [`write_trace`] once the traced work is done.
fn trace_out(flags: &Flags) -> Option<String> {
    let path = flags.options.get("trace-out").cloned();
    if path.is_some() {
        pchls::obs::set_enabled(true);
    }
    path
}

/// Writes everything the tracer recorded to `path` as Chrome
/// trace-event JSON (Perfetto / `chrome://tracing` open it directly).
fn write_trace(path: &str) -> Result<(), String> {
    let snapshot = pchls::obs::snapshot();
    std::fs::write(path, pchls::obs::chrome_trace_json(&snapshot))
        .map_err(|e| format!("writing trace {path}: {e}"))?;
    eprintln!(
        "trace: {} span(s)/event(s) ({} dropped) written to {path}",
        snapshot.events.len(),
        snapshot.dropped
    );
    Ok(())
}

/// Opens (creating as needed) the `--store <dir>` result store, when
/// the flag is present.
fn open_store(flags: &Flags) -> Result<Option<Store>, String> {
    match flags.options.get("store") {
        None => Ok(None),
        Some(dir) => Store::open(std::path::Path::new(dir))
            .map(Some)
            .map_err(|e| format!("opening store {dir}: {e}")),
    }
}

fn required_u32(flags: &Flags, key: &str, flag: &str) -> Result<u32, String> {
    flags
        .options
        .get(key)
        .ok_or_else(|| format!("missing {flag}"))?
        .parse()
        .map_err(|_| format!("{flag} must be a positive integer"))
}

fn required_f64(flags: &Flags, key: &str, flag: &str) -> Result<f64, String> {
    flags
        .options
        .get(key)
        .ok_or_else(|| format!("missing {flag}"))?
        .parse()
        .map_err(|_| format!("{flag} must be a number"))
}

/// The `(T, P<)` pair of a command line, validated so the constraints
/// constructor can never panic on user input.
fn required_constraints(flags: &Flags) -> Result<SynthesisConstraints, String> {
    let latency = required_u32(flags, "latency", "-T <cycles>")?;
    if latency == 0 {
        return Err("-T must be at least 1 cycle".into());
    }
    let power = required_f64(flags, "power", "-P <power>")?;
    if power.is_nan() || power < 0.0 {
        return Err("-P must be a non-negative power bound".into());
    }
    Ok(SynthesisConstraints::new(latency, power))
}

/// The constraint point of a `synth`-shaped command: `-T` plus either a
/// `--budget` envelope file or the scalar `-P` bound.
fn budget_or_scalar_constraints(flags: &Flags) -> Result<SynthesisConstraints, String> {
    let latency = required_u32(flags, "latency", "-T <cycles>")?;
    if latency == 0 {
        return Err("-T must be at least 1 cycle".into());
    }
    match load_budget(flags, Some(latency))? {
        Some(budget) => Ok(SynthesisConstraints::new(latency, budget)),
        None => required_constraints(flags),
    }
}

/// Loads and validates the `--budget <file>` envelope, when the flag is
/// present. With a horizon, wrong-horizon shapes are rejected too
/// (`batch` passes `None` and re-checks per point, since each point has
/// its own `T`).
fn load_budget(flags: &Flags, latency: Option<u32>) -> Result<Option<PowerBudget>, String> {
    let Some(path) = flags.options.get("budget") else {
        return Ok(None);
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_budget_json(&text, latency)
        .map(Some)
        .map_err(|e| format!("{path}: {e}"))
}

/// 1-based line numbers of every JSON number token in `text`, in
/// document order. The parsed value tree preserves object order, so a
/// depth-first walk visits numbers in exactly this order — which lets
/// the validators below point at the offending *line* of the budget
/// file, matching the `batch` points-file error style.
fn number_token_lines(text: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut in_string = false;
    let mut in_number = false;
    for ch in text.chars() {
        if ch == '\n' {
            line += 1;
            in_number = false;
            continue;
        }
        if in_string {
            if ch == '"' {
                in_string = false;
            }
            continue;
        }
        match ch {
            '"' => {
                in_string = true;
                in_number = false;
            }
            '-' | '0'..='9' => {
                if !in_number {
                    out.push(line);
                    in_number = true;
                }
            }
            // Number continuations ('e'/'E' only start numbers inside
            // one; bare words never register because tokens are opened
            // only by '-' or a digit).
            '.' | 'e' | 'E' | '+' => {}
            _ => in_number = false,
        }
    }
    out
}

/// Numeric view of a parsed JSON scalar.
fn as_number(v: &serde::Value) -> Option<f64> {
    match v {
        serde::Value::Int(i) => Some(*i as f64),
        serde::Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Parses and validates a `--budget` JSON envelope: NaN, negative, and
/// (when a horizon is given) wrong-horizon budgets are rejected with
/// the offending line number.
fn parse_budget_json(text: &str, latency: Option<u32>) -> Result<PowerBudget, String> {
    // NaN/Infinity are not JSON; catch them up front so the error names
    // the line instead of surfacing a generic parse failure.
    for (i, l) in text.lines().enumerate() {
        let lower = l.to_lowercase();
        for tok in ["nan", "inf"] {
            if lower.contains(tok) {
                return Err(format!(
                    "line {}: `{}` is not a valid power bound (bounds must be finite, \
                     non-negative numbers)",
                    i + 1,
                    l.trim()
                ));
            }
        }
    }
    let value: serde::Value =
        serde_json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let shape_err = || {
        "budget must be a JSON object with exactly one of `constant`, `steps`, `per_cycle`"
            .to_string()
    };
    let fields = value.as_object().ok_or_else(shape_err)?;
    let [(key, inner)] = fields else {
        return Err(shape_err());
    };
    let num_lines = number_token_lines(text);
    let line_of = |num_idx: usize| num_lines.get(num_idx).copied().unwrap_or(1);
    let check_bound = |b: f64, num_idx: usize| -> Result<f64, String> {
        if b.is_nan() || b < 0.0 {
            Err(format!(
                "line {}: power bound {b} must be non-negative",
                line_of(num_idx)
            ))
        } else {
            Ok(b)
        }
    };
    // The walk below exists to attach *line numbers* to the common
    // mistakes; the construction at the end funnels the accepted
    // document through the `PowerBudget` deserializer — the
    // authoritative validator shared with the `pchls-serve` wire layer
    // — so the CLI can never accept a budget the service would reject.
    match key.as_str() {
        "constant" => {
            let b = as_number(inner).ok_or("`constant` must be a number")?;
            check_bound(b, 0)?;
        }
        "steps" => {
            let arr = inner.as_array().ok_or("`steps` must be an array")?;
            if arr.is_empty() {
                return Err("`steps` must contain at least one [cycle, bound] pair".into());
            }
            let mut steps: Vec<(u32, f64)> = Vec::with_capacity(arr.len());
            for (i, item) in arr.iter().enumerate() {
                let err_line = line_of(2 * i);
                let pair = item
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("line {err_line}: each step must be [cycle, bound]"))?;
                // Integer-*typed*, matching the wire deserializer's
                // `u32` exactly — `0.0` is rejected in both places.
                let serde::Value::Int(raw_cycle) = pair[0] else {
                    return Err(format!(
                        "line {err_line}: step cycle must be a non-negative integer"
                    ));
                };
                let cycle = u32::try_from(raw_cycle).map_err(|_| {
                    format!("line {err_line}: step cycle must be a non-negative integer")
                })?;
                if let Some(t) = latency {
                    if cycle >= t {
                        return Err(format!(
                            "line {err_line}: step at cycle {cycle} is at or past the latency \
                             bound {t}"
                        ));
                    }
                }
                if let Some(&(prev, _)) = steps.last() {
                    if cycle <= prev {
                        return Err(format!(
                            "line {err_line}: step cycles must be strictly increasing \
                             ({prev} then {cycle})"
                        ));
                    }
                }
                let bound = as_number(&pair[1])
                    .ok_or_else(|| format!("line {err_line}: step bound must be a number"))?;
                steps.push((cycle, check_bound(bound, 2 * i + 1)?));
            }
        }
        "per_cycle" => {
            let arr = inner.as_array().ok_or("`per_cycle` must be an array")?;
            if arr.is_empty() {
                return Err("`per_cycle` must contain at least one bound".into());
            }
            let mut bounds = Vec::with_capacity(arr.len());
            for (i, item) in arr.iter().enumerate() {
                let b = as_number(item).ok_or_else(|| {
                    format!("line {}: per-cycle bound must be a number", line_of(i))
                })?;
                bounds.push(check_bound(b, i)?);
            }
            if let Some(t) = latency {
                if bounds.len() != t as usize {
                    let key_line = text
                        .lines()
                        .position(|l| l.contains("per_cycle"))
                        .map_or(1, |i| i + 1);
                    return Err(format!(
                        "line {key_line}: per-cycle budget covers {} cycle(s) but -T is {t}",
                        bounds.len()
                    ));
                }
            }
        }
        other => {
            return Err(format!(
                "unknown budget kind `{other}` (expected `constant`, `steps` or `per_cycle`)"
            ))
        }
    }
    serde::Deserialize::from_value(&value).map_err(|e| format!("invalid budget: {e}"))
}

fn dump(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let spec = flags.positionals.first().ok_or("missing graph")?;
    let g = load_graph(spec)?;
    if flags.switches.iter().any(|s| s == "dot") {
        Ok(g.to_dot())
    } else if flags.switches.iter().any(|s| s == "stats") {
        Ok(GraphStats::of(&g).to_report())
    } else {
        Ok(write_cdfg(&g))
    }
}

fn synth(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let spec = flags.positionals.first().ok_or("missing graph")?;
    let g = load_graph(spec)?;
    let lib = load_library(&flags)?;
    let trace_path = trace_out(&flags);
    let engine = Engine::new(lib);
    let compiled = if flags.switches.iter().any(|s| s == "optimize") {
        let c = engine.compile_optimized(&g).map_err(|e| e.to_string())?;
        let stats = c.optimize_stats().expect("optimized compile keeps stats");
        eprintln!(
            "optimize: merged {} duplicate op(s), eliminated {} dead op(s)",
            stats.merged, stats.eliminated
        );
        c
    } else {
        engine.try_compile(&g).map_err(|e| e.to_string())?
    };
    let session = engine.session(&compiled);
    let (g, lib) = (compiled.graph(), engine.library());
    let constraints = budget_or_scalar_constraints(&flags)?;
    let design = if flags.switches.iter().any(|s| s == "refine") {
        session.synthesize_refined(constraints, &SynthesisOptions::default())
    } else {
        session.synthesize(constraints, &SynthesisOptions::default())
    }
    .map_err(|e| e.to_string())?;

    let mut out = format!("{}: {}\n", g.name(), design.summary());
    for (i, inst) in design.binding.instances().iter().enumerate() {
        let m = lib.module(inst.module());
        out.push_str(&format!(
            "  fu{i}: {:<10} area {:>4}  {} op(s)\n",
            m.name(),
            m.area(),
            inst.ops().len()
        ));
    }
    let regs = design.registers(g);
    let ic = design.interconnect(g);
    out.push_str(&format!(
        "  registers: {}   extra mux inputs: {}\n",
        regs.count(),
        ic.total()
    ));
    if flags.switches.iter().any(|s| s == "profile") {
        out.push_str("\nper-cycle power profile (| marks each cycle's budget bound):\n");
        out.push_str(
            &design
                .power_profile()
                .to_ascii_budget(40, &design.constraints.budget),
        );
    }
    if flags.switches.iter().any(|s| s == "gantt") {
        out.push_str("\nschedule:\n");
        out.push_str(&pchls::bind::gantt(
            g,
            lib,
            &design.binding,
            &design.schedule,
            &design.timing,
        ));
    }
    if flags.switches.iter().any(|s| s == "hdl") {
        out.push('\n');
        out.push_str(&to_structural_hdl(g, &design, lib));
    }
    if let Some(path) = trace_path {
        write_trace(&path)?;
    }
    Ok(out)
}

/// Runs `spec` through the session, resuming from the `--store` result
/// store when one is given: grid points already materialized for this
/// graph fingerprint and budget digest are read back instead of
/// re-synthesized, and the fresh raw points are appended for the next
/// run (outcome columns only — sweeps keep no schedule trace). The
/// enveloped result is identical to a storeless sweep either way,
/// because the envelope pass reruns over the merged raw grid.
fn sweep_with_store(
    flags: &Flags,
    session: &Session<'_>,
    compiled: &CompiledGraph,
    spec: &SweepSpec,
) -> Result<SweepResult, String> {
    let options = SynthesisOptions::default();
    let Some(mut store) = open_store(flags)? else {
        return Ok(session.sweep(spec, &options));
    };
    let mut keys = Vec::with_capacity(spec.len());
    let mut cached: Vec<Option<SweepPoint>> = Vec::with_capacity(spec.len());
    for i in 0..spec.len() {
        let key = StoreKey::for_graph(compiled.graph(), &spec.constraints(i));
        cached.push(
            store
                .get(&key)
                .map_err(|e| format!("reading store: {e}"))?
                .map(|r| r.to_point(compiled.name())),
        );
        keys.push(key);
    }
    let (result, fresh) = session.sweep_resumable(spec, &options, &cached);
    let records: Vec<StoreRecord> = fresh
        .iter()
        .map(|(i, p)| StoreRecord::from_point(keys[*i], p, Vec::new()))
        .collect();
    store
        .append(&records)
        .and_then(|()| store.flush())
        .map_err(|e| format!("writing store: {e}"))?;
    eprintln!(
        "store: {} of {} point(s) resumed from {}",
        spec.len() - fresh.len(),
        spec.len(),
        store.path().display()
    );
    Ok(result)
}

fn sweep(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let spec = flags.positionals.first().ok_or("missing graph")?;
    let g = load_graph(spec)?;
    let lib = load_library(&flags)?;
    let latency = required_u32(&flags, "latency", "-T <cycles>")?;
    if latency == 0 {
        return Err("-T must be at least 1 cycle".into());
    }
    let steps: usize = flags
        .options
        .get("steps")
        .map_or(Ok(12), |s| s.parse())
        .map_err(|_| "--steps must be a positive integer")?;
    let engine = Engine::new(lib);
    let compiled = engine.try_compile(&g).map_err(|e| e.to_string())?;
    let session = engine.session(&compiled);
    if let Some(budget) = load_budget(&flags, Some(latency))? {
        // Envelope mode: sweep scale factors — "how much of the
        // envelope can the supply actually deliver" — instead of a
        // scalar power grid.
        let steps = steps.max(2);
        let scales: Vec<f64> = (0..steps)
            .map(|i| 0.25 + (1.5 - 0.25) * i as f64 / (steps - 1) as f64)
            .collect();
        let result = sweep_with_store(
            &flags,
            &session,
            &compiled,
            &SweepSpec::budget_scale(latency, budget, scales.clone()),
        )?;
        let mut out = format!(
            "{} at T={latency} (envelope scale sweep):\n scale    peak    area\n",
            result.benchmark
        );
        for (p, s) in result.points.iter().zip(&scales) {
            match p.area {
                Some(a) => out.push_str(&format!("{s:>6.2} {:>7.1} {:>7}\n", p.power_bound, a)),
                None => out.push_str(&format!("{s:>6.2} {:>7.1}   (infeasible)\n", p.power_bound)),
            }
        }
        return Ok(out);
    }
    let grid = session.auto_power_grid(steps);
    let result = sweep_with_store(
        &flags,
        &session,
        &compiled,
        &SweepSpec::power(latency, grid),
    )?;
    let mut out = format!("{} at T={latency}:\npower    area\n", result.benchmark);
    for p in result.points {
        match p.area {
            Some(a) => out.push_str(&format!("{:>6.1} {:>7}\n", p.power_bound, a)),
            None => out.push_str(&format!("{:>6.1}   (infeasible)\n", p.power_bound)),
        }
    }
    Ok(out)
}

/// Parses one `T P` constraint point per line (blank lines and `#`
/// comments skipped).
fn parse_points(text: &str) -> Result<Vec<SynthesisConstraints>, String> {
    let mut points = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (Some(t), Some(p), None) = (fields.next(), fields.next(), fields.next()) else {
            return Err(format!("line {}: expected `T P`, got `{line}`", lineno + 1));
        };
        let t: u32 = t
            .parse()
            .map_err(|_| format!("line {}: `{t}` is not a latency", lineno + 1))?;
        // Validate the parsed values here, with the line number: the
        // constraints constructor asserts on nonsense and a malformed
        // points file must be a clean error, not a panic.
        if t == 0 {
            return Err(format!(
                "line {}: latency must be at least 1 cycle",
                lineno + 1
            ));
        }
        let p: f64 = p
            .parse()
            .map_err(|_| format!("line {}: `{p}` is not a power bound", lineno + 1))?;
        if p.is_nan() || p < 0.0 {
            return Err(format!(
                "line {}: power bound `{p}` must be non-negative",
                lineno + 1
            ));
        }
        points.push(SynthesisConstraints::new(t, p));
    }
    if points.is_empty() {
        return Err("points file contains no `T P` pairs".into());
    }
    Ok(points)
}

/// `pchls batch <graph> --points <file>`: one compile, many constraint
/// points through [`pchls::core::Session::batch`], one JSON line per
/// point (in file order). With `--budget <file>`, each point's `P`
/// column is reinterpreted as a **scale factor** on the envelope
/// (`T 1.0` = the envelope as written, `T 0.5` = half of it).
fn batch(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let spec = flags.positionals.first().ok_or("missing graph")?;
    let g = load_graph(spec)?;
    let lib = load_library(&flags)?;
    let path = flags
        .options
        .get("points")
        .ok_or("missing --points <file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let points = parse_points(&text)?;
    let points = match load_budget(&flags, None)? {
        None => points,
        Some(budget) => points
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                budget
                    .check_horizon(c.latency)
                    .map_err(|e| format!("point {} (T={}): {e}", i + 1, c.latency))?;
                // The scalar column scales the envelope for this point.
                Ok(SynthesisConstraints::new(
                    c.latency,
                    budget.scaled(c.max_power()),
                ))
            })
            .collect::<Result<Vec<_>, String>>()?,
    };

    let trace_path = trace_out(&flags);
    let engine = Engine::new(lib);
    let compiled = engine.try_compile(&g).map_err(|e| e.to_string())?;
    let session = engine.session(&compiled);
    let out_points: Vec<SweepPoint> = match open_store(&flags)? {
        None => session
            .batch(points.into_iter().map(SynthesisRequest::new))
            .iter()
            .map(|r| r.to_point(compiled.name()))
            .collect(),
        Some(mut store) => {
            // Resume: answer materialized points from the store, run
            // only the rest, and append those for the next run.
            let keys: Vec<StoreKey> = points
                .iter()
                .map(|c| StoreKey::for_graph(compiled.graph(), c))
                .collect();
            let mut slots: Vec<Option<SweepPoint>> = Vec::with_capacity(points.len());
            for key in &keys {
                slots.push(
                    store
                        .get(key)
                        .map_err(|e| format!("reading store: {e}"))?
                        .map(|r| r.to_point(compiled.name())),
                );
            }
            let missing: Vec<usize> = (0..points.len()).filter(|&i| slots[i].is_none()).collect();
            let fresh = session.batch(
                missing
                    .iter()
                    .map(|&i| SynthesisRequest::new(points[i].clone())),
            );
            let mut records = Vec::with_capacity(fresh.len());
            for (&i, r) in missing.iter().zip(&fresh) {
                let point = r.to_point(compiled.name());
                let trace = r
                    .outcome
                    .as_ref()
                    .map(|d| trace_bytes(&d.schedule))
                    .unwrap_or_default();
                records.push(StoreRecord::from_point(keys[i], &point, trace));
                slots[i] = Some(point);
            }
            store
                .append(&records)
                .and_then(|()| store.flush())
                .map_err(|e| format!("writing store: {e}"))?;
            eprintln!(
                "store: {} of {} point(s) resumed from {}",
                keys.len() - missing.len(),
                keys.len(),
                store.path().display()
            );
            slots
                .into_iter()
                .map(|s| s.expect("every point is cached or freshly run"))
                .collect()
        }
    };

    if let Some(path) = trace_path {
        write_trace(&path)?;
    }
    let mut out = String::new();
    for p in &out_points {
        let line = serde_json::to_string(p).map_err(|e| format!("serializing point: {e}"))?;
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

/// `pchls battery <graph> -T <cycles> (-P <power> | --budget <file>)`:
/// synthesizes the power-constrained design at the point, the
/// power-oblivious design at the same latency, and prints a
/// [`BatteryReport`](pchls::battery::BatteryReport) — how many complete
/// schedule executions each battery model (ideal, Peukert,
/// rate-capacity) survives on each profile, and the lifetime extension
/// the constrained design buys. This is the paper's end-to-end claim,
/// runnable from the command line.
fn battery(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let spec = flags.positionals.first().ok_or("missing graph")?;
    let g = load_graph(spec)?;
    let lib = load_library(&flags)?;
    let constraints = budget_or_scalar_constraints(&flags)?;
    let capacity: f64 = match flags.options.get("capacity") {
        None => 20_000.0,
        Some(v) => v
            .parse::<f64>()
            .ok()
            .filter(|c| c.is_finite() && *c > 0.0)
            .ok_or("--capacity must be a positive charge")?,
    };

    let engine = Engine::new(lib);
    let compiled = engine.try_compile(&g).map_err(|e| e.to_string())?;
    let session = engine.session(&compiled);
    let opts = SynthesisOptions::default();
    let constrained = session
        .synthesize(constraints.clone(), &opts)
        .map_err(|e| e.to_string())?;
    // The power-oblivious reference is the ASAP/fastest-modules design —
    // the spiky Figure 1 (top) profile the paper's motivation starts
    // from — not another area-min synthesis run.
    let oblivious = session
        .unconstrained(constraints.latency, pchls::fulib::SelectionPolicy::Fastest)
        .map_err(|e| e.to_string())?;

    let flat = constrained.power_profile();
    let spiky = oblivious.power_profile();
    let report = battery_report(capacity, spiky.per_cycle(), flat.per_cycle());

    let mut out = format!(
        "{} at T={} under {}:\n  power-oblivious: {}\n  power-constrained: {}\n\n",
        compiled.name(),
        constraints.latency,
        constraints.budget.describe(),
        oblivious.summary(),
        constrained.summary(),
    );
    out.push_str(&report.to_text(flat.per_cycle().len(), spiky.per_cycle().len()));
    Ok(out)
}

/// `pchls serve`: the long-running synthesis service (JSON-lines
/// protocol over stdio or TCP; see `pchls-serve`). Returns at stdin EOF
/// in `--stdio` mode; serves forever in `--addr` mode.
fn serve(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let stdio = flags.switches.iter().any(|s| s == "stdio");
    let addr = flags.options.get("addr");
    if stdio == addr.is_some() {
        return Err("serve needs exactly one of --stdio or --addr <host:port>".into());
    }
    let usize_option = |key: &str, default: usize| -> Result<usize, String> {
        flags.options.get(key).map_or(Ok(default), |v| {
            v.parse()
                .map_err(|_| format!("--{key} must be a non-negative integer"))
        })
    };
    let f64_option = |key: &str, default: f64| -> Result<f64, String> {
        flags.options.get(key).map_or(Ok(default), |v| {
            v.parse::<f64>()
                .ok()
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or_else(|| format!("--{key} must be a non-negative number"))
        })
    };
    let defaults = ServiceConfig::default();
    let config = ServiceConfig {
        workers: usize_option("workers", defaults.workers)?,
        shards: usize_option("shards", defaults.shards)?,
        cache_cap: usize_option("cache-cap", defaults.cache_cap)?,
        queue_cap: usize_option("queue-cap", defaults.queue_cap)?,
        shed_depth: usize_option("shed-depth", defaults.shed_depth)?,
        rate_per_sec: f64_option("rate", defaults.rate_per_sec)?,
        burst: f64_option("burst", defaults.burst)?,
        max_line_bytes: usize_option("max-line-bytes", defaults.max_line_bytes)?,
        store_dir: flags.options.get("store").map(std::path::PathBuf::from),
        stats_interval: usize_option("stats-interval", defaults.stats_interval as usize)? as u64,
        ..defaults
    };
    if config.max_line_bytes == 0 {
        return Err("--max-line-bytes must be at least 1".into());
    }
    let lib = load_library(&flags)?;
    let service = Service::try_start(Engine::new(lib), config)
        .map_err(|e| format!("opening result store: {e}"))?;
    match addr {
        None => serve_stdio(&service).map_err(|e| format!("serving stdio: {e}"))?,
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            eprintln!("pchls serve: listening on {local}");
            serve_tcp(&service, &listener).map_err(|e| format!("serving {local}: {e}"))?;
        }
    }
    // Final stats to stderr — stdout is (or was) the protocol channel.
    eprintln!("{}", render_serve_stats(&service.stats()));
    if flags.switches.iter().any(|s| s == "metrics") {
        eprint!("{}", service.metrics_text());
    }
    Ok(String::new())
}

/// `pchls store (stat|verify|compact) <dir>`: inspects and maintains a
/// persistent result store directory (the `--store` target of
/// `batch`/`sweep`/`serve`).
fn store_admin(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let [action, dir] = flags.positionals.as_slice() else {
        return Err(
            "store needs an action and a directory: store (stat|verify|compact) <dir>".into(),
        );
    };
    let path = std::path::Path::new(dir);
    // Opening creates an empty store; an admin command pointed at the
    // wrong directory must report that, not silently materialize one.
    if !path.join(STORE_FILE_NAME).exists() {
        return Err(format!(
            "`{dir}` contains no result store ({STORE_FILE_NAME} missing)"
        ));
    }
    let mut store = Store::open(path).map_err(|e| format!("opening store {dir}: {e}"))?;
    match action.as_str() {
        "stat" => {
            let stat = store.stat().map_err(|e| format!("reading store: {e}"))?;
            Ok(render_store_stat(&stat, store.path()))
        }
        "verify" => {
            let stat = store
                .verify()
                .map_err(|e| format!("store is corrupt: {e}"))?;
            Ok(format!(
                "ok: {} record(s) in {} block(s) verified ({} live)\n",
                stat.records, stat.blocks, stat.live_records
            ))
        }
        "compact" => {
            let before = store.stat().map_err(|e| format!("reading store: {e}"))?;
            let dropped = store.compact().map_err(|e| format!("compacting: {e}"))?;
            let after = store.stat().map_err(|e| format!("reading store: {e}"))?;
            Ok(format!(
                "dropped {dropped} superseded record(s): {} -> {} bytes\n",
                before.file_bytes, after.file_bytes
            ))
        }
        other => Err(format!(
            "unknown store action `{other}` (expected stat, verify or compact)"
        )),
    }
}

/// The `pchls store stat` report: totals, compression ratio and
/// per-column byte accounting.
fn render_store_stat(stat: &StoreStat, path: &std::path::Path) -> String {
    let mut out = format!(
        "{}:\n  records: {} ({} live)\n  blocks: {}\n  file: {} bytes\n  \
         columns: {} -> {} bytes ({:.2}x compression)\n",
        path.display(),
        stat.records,
        stat.live_records,
        stat.blocks,
        stat.file_bytes,
        stat.raw_bytes,
        stat.compressed_bytes,
        stat.compression_ratio()
    );
    if stat.recovered {
        out.push_str("  recovered: yes (torn tail was scanned around)\n");
    }
    out.push_str("  per-column bytes (raw -> compressed):\n");
    for c in &stat.columns {
        out.push_str(&format!(
            "    {:<14} {:>8} -> {:>8}\n",
            c.name, c.raw_bytes, c.compressed_bytes
        ));
    }
    out
}

fn run_simulation(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let spec = flags.positionals.first().ok_or("missing graph")?;
    let g = load_graph(spec)?;
    let lib = load_library(&flags)?;
    let constraints = required_constraints(&flags)?;
    let stim: pchls::cdfg::Stimulus = flags.sets.iter().cloned().collect();

    let engine = Engine::new(lib);
    let compiled = engine.try_compile(&g).map_err(|e| e.to_string())?;
    let design = engine
        .session(&compiled)
        .synthesize(constraints, &SynthesisOptions::default())
        .map_err(|e| e.to_string())?;
    let dp = Datapath::build(&g, &design, engine.library());
    let run = simulate(&g, &dp, &stim).map_err(|e| e.to_string())?;
    let reference = Interpreter::new(&g).run(&stim).map_err(|e| e.to_string())?;
    let mut out = format!(
        "simulated {} on the synthesized datapath ({} cycles):\n",
        g.name(),
        dp.latency()
    );
    for (name, value) in &run.outputs {
        let check = if reference[name] == *value {
            "ok"
        } else {
            "MISMATCH"
        };
        out.push_str(&format!("  {name} = {value}   [{check} vs reference]\n"));
    }
    if run.outputs == reference {
        out.push_str("datapath matches the reference interpreter\n");
    } else {
        return Err("datapath diverged from the reference interpreter".into());
    }
    Ok(out)
}

fn run_vcd(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let spec = flags.positionals.first().ok_or("missing graph")?;
    let g = load_graph(spec)?;
    let lib = load_library(&flags)?;
    let constraints = required_constraints(&flags)?;
    let stim: pchls::cdfg::Stimulus = flags.sets.iter().cloned().collect();

    let engine = Engine::new(lib);
    let compiled = engine.try_compile(&g).map_err(|e| e.to_string())?;
    let design = engine
        .session(&compiled)
        .synthesize(constraints, &SynthesisOptions::default())
        .map_err(|e| e.to_string())?;
    let dp = Datapath::build(&g, &design, engine.library());
    let wave = pchls::rtl::trace(&g, &dp, &stim).map_err(|e| e.to_string())?;
    let vcd = pchls::rtl::to_vcd(&wave, g.name());
    match flags.options.get("out") {
        Some(path) => {
            std::fs::write(path, &vcd).map_err(|e| format!("writing {path}: {e}"))?;
            Ok(format!("wrote {} ({} bytes)\n", path, vcd.len()))
        }
        None => Ok(vcd),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn benchmarks_lists_all_graphs() {
        let out = run(&argv("benchmarks")).unwrap();
        for name in ["hal", "cosine", "elliptic", "ar", "fir16", "fft_bfly"] {
            assert!(out.contains(name), "{name} missing from\n{out}");
        }
    }

    #[test]
    fn dump_round_trips_through_the_parser() {
        let out = run(&argv("dump hal")).unwrap();
        let g = parse_cdfg(&out).unwrap();
        assert_eq!(g.name(), "hal");
    }

    #[test]
    fn dump_dot_emits_graphviz() {
        let out = run(&argv("dump hal --dot")).unwrap();
        assert!(out.starts_with("digraph hal"));
    }

    #[test]
    fn synth_reports_design() {
        let out = run(&argv("synth hal -T 17 -P 25")).unwrap();
        assert!(out.contains("area="));
        assert!(out.contains("registers:"));
    }

    #[test]
    fn synth_with_profile_and_hdl() {
        let out = run(&argv("synth hal -T 17 -P 25 --profile --hdl")).unwrap();
        assert!(out.contains("power profile"));
        assert!(out.contains("endmodule"));
    }

    #[test]
    fn synth_rejects_infeasible_constraints() {
        let err = run(&argv("synth hal -T 17 -P 1")).unwrap_err();
        assert!(err.contains("infeasible"));
    }

    #[test]
    fn sweep_prints_a_curve() {
        let out = run(&argv("sweep hal -T 17 --steps 5")).unwrap();
        assert!(out.lines().count() >= 6);
    }

    #[test]
    fn simulate_cross_checks() {
        let cmd = "simulate hal -T 17 -P 25 --set x=2 --set y=5 --set u=7 \
                   --set dx=3 --set a=100 --set three=3";
        let out = run(&argv(cmd)).unwrap();
        assert!(out.contains("matches the reference interpreter"));
        assert!(out.contains("x1 = 5"));
    }

    #[test]
    fn synth_with_gantt_shows_units() {
        let out = run(&argv("synth hal -T 17 -P 25 --gantt")).unwrap();
        assert!(out.contains("unit"));
        assert!(out.contains("fu0"));
    }

    #[test]
    fn synth_with_optimize_runs_cse() {
        let out = run(&argv("synth hal -T 17 -P 25 --optimize")).unwrap();
        assert!(out.contains("area="));
    }

    #[test]
    fn vcd_emits_a_document() {
        let cmd = "vcd hal -T 17 -P 25 --set x=2 --set y=5 --set u=7 \
                   --set dx=3 --set a=100 --set three=3";
        let out = run(&argv(cmd)).unwrap();
        assert!(out.contains("$enddefinitions $end"));
        assert!(out.contains("$var real 64"));
    }

    #[test]
    fn batch_emits_one_json_line_per_point() {
        let dir = std::env::temp_dir().join("pchls-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("points.txt");
        std::fs::write(
            &path,
            "# paper corners, one infeasible\n17 25\n10 40\n17 1.0\n",
        )
        .unwrap();
        let out = run(&argv(&format!("batch hal --points {}", path.display()))).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "one JSON line per point:\n{out}");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"benchmark\":\"hal\""), "{line}");
        }
        assert!(lines[0].contains("\"area\":"), "{}", lines[0]);
        assert!(
            lines[2].contains("\"area\":null"),
            "infeasible point: {}",
            lines[2]
        );
    }

    #[test]
    fn batch_rejects_malformed_points() {
        let dir = std::env::temp_dir().join("pchls-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_points.txt");
        std::fs::write(&path, "17 25 extra\n").unwrap();
        let err = run(&argv(&format!("batch hal --points {}", path.display()))).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(run(&argv("batch hal")).unwrap_err().contains("--points"));
    }

    #[test]
    fn batch_reports_invalid_values_with_line_numbers_instead_of_panicking() {
        let dir = std::env::temp_dir().join("pchls-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Values that parse as numbers but violate the constraint
        // domain used to reach the asserting constructor and abort the
        // process; they must be line-numbered errors.
        for (name, content, needle) in [
            ("zero_latency.txt", "17 25\n0 25\n", "line 2"),
            ("negative_power.txt", "17 25\n10 40\n17 -5\n", "line 3"),
            ("nan_power.txt", "17 NaN\n", "line 1"),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, content).unwrap();
            let err =
                run(&argv(&format!("batch hal --points {}", path.display()))).expect_err(name);
            assert!(err.contains(needle), "{name}: `{err}` missing `{needle}`");
        }
    }

    #[test]
    fn synth_rejects_out_of_domain_constraints_cleanly() {
        assert!(run(&argv("synth hal -T 0 -P 25"))
            .unwrap_err()
            .contains("-T"));
        assert!(run(&argv("synth hal -T 17 -P -3"))
            .unwrap_err()
            .contains("-P"));
        assert!(run(&argv("sweep hal -T 0")).unwrap_err().contains("-T"));
    }

    fn budget_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pchls-budget-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn synth_accepts_a_stepwise_budget_file() {
        let path = budget_dir().join("steps.json");
        std::fs::write(&path, "{\"steps\": [[0, 40.0], [9, 12.0]]}\n").unwrap();
        let out = run(&argv(&format!(
            "synth hal -T 17 --budget {} --profile",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("area="), "{out}");
        // The profile overlay names the per-cycle bound of both phases.
        assert!(
            out.contains("(P<40.0)") && out.contains("(P<12.0)"),
            "{out}"
        );
    }

    #[test]
    fn constant_budget_file_matches_the_scalar_flag() {
        let path = budget_dir().join("constant.json");
        std::fs::write(&path, "{\"constant\": 25.0}\n").unwrap();
        let via_budget = run(&argv(&format!(
            "synth hal -T 17 --budget {}",
            path.display()
        )));
        let via_scalar = run(&argv("synth hal -T 17 -P 25"));
        assert_eq!(via_budget.unwrap(), via_scalar.unwrap());
    }

    #[test]
    fn budget_validation_errors_carry_line_numbers() {
        for (name, content, needle) in [
            (
                "negative.json",
                "{\"per_cycle\": [30.0,\n  -5.0,\n  20.0]}\n",
                "line 2",
            ),
            ("nan.json", "{\"constant\":\n  NaN}\n", "line 2"),
            (
                "late_step.json",
                "{\"steps\": [[0, 30.0],\n  [40, 10.0]]}\n",
                "line 2",
            ),
            (
                "unordered.json",
                "{\"steps\": [[5, 30.0],\n  [2, 10.0]]}\n",
                "line 2",
            ),
            ("wrong_kind.json", "{\"bogus\": 1.0}\n", "bogus"),
            ("empty_steps.json", "{\"steps\": []}\n", "at least one"),
        ] {
            let path = budget_dir().join(name);
            std::fs::write(&path, content).unwrap();
            let err = run(&argv(&format!(
                "synth hal -T 17 --budget {}",
                path.display()
            )))
            .expect_err(name);
            assert!(err.contains(needle), "{name}: `{err}` missing `{needle}`");
        }
        // Wrong horizon: a 3-cycle envelope against -T 17.
        let path = budget_dir().join("short.json");
        std::fs::write(&path, "{\"per_cycle\": [30.0, 20.0, 10.0]}\n").unwrap();
        let err = run(&argv(&format!(
            "synth hal -T 17 --budget {}",
            path.display()
        )))
        .unwrap_err();
        assert!(err.contains("3 cycle(s)") && err.contains("17"), "{err}");
    }

    #[test]
    fn batch_budget_edge_cases_error_instead_of_panicking() {
        let dir = budget_dir();
        let points = dir.join("one_point.txt");
        std::fs::write(&points, "17 1.0\n").unwrap();
        // Empty per_cycle envelopes must be clean errors even on the
        // batch path, which validates without a fixed horizon.
        let empty = dir.join("empty_pc.json");
        std::fs::write(&empty, "{\"per_cycle\": []}\n").unwrap();
        let err = run(&argv(&format!(
            "batch hal --points {} --budget {}",
            points.display(),
            empty.display()
        )))
        .unwrap_err();
        assert!(err.contains("at least one"), "{err}");
        // An `inf` scale factor over a zero-bound budget must stay a
        // valid (all-zero ⇒ infeasible) constraint, not a NaN panic.
        let zero = dir.join("zero.json");
        std::fs::write(&zero, "{\"constant\": 0.0}\n").unwrap();
        let inf_points = dir.join("inf_point.txt");
        std::fs::write(&inf_points, "17 inf\n").unwrap();
        let out = run(&argv(&format!(
            "batch hal --points {} --budget {}",
            inf_points.display(),
            zero.display()
        )))
        .unwrap();
        assert!(out.contains("\"area\":null"), "{out}");
    }

    #[test]
    fn budget_files_accepted_by_the_cli_parse_on_the_wire_too() {
        // parse_budget_json exists only to attach line numbers; the
        // PowerBudget deserializer stays the authoritative validator,
        // so acceptance must agree in both directions on this corpus.
        for (doc, ok) in [
            ("{\"constant\": 25.0}", true),
            ("{\"steps\": [[0, 30.0], [8, 12.0]]}", true),
            ("{\"per_cycle\": [1.0, 2.0]}", true),
            // Float-spelled step cycles are integer-typed on the wire;
            // the CLI must not be more lenient.
            ("{\"steps\": [[0.0, 30.0]]}", false),
            ("{\"per_cycle\": []}", false),
            ("{\"steps\": []}", false),
            ("{\"constant\": -1.0}", false),
        ] {
            let cli = parse_budget_json(doc, None);
            let wire: Result<PowerBudget, _> = serde_json::from_str(doc);
            assert_eq!(cli.is_ok(), ok, "{doc}: cli {cli:?}");
            assert_eq!(
                cli.is_ok(),
                wire.is_ok(),
                "{doc}: cli {cli:?} wire {wire:?}"
            );
        }
    }

    #[test]
    fn sweep_with_budget_scans_scale_factors() {
        let path = budget_dir().join("sweep.json");
        std::fs::write(&path, "{\"steps\": [[0, 40.0], [9, 12.0]]}\n").unwrap();
        let out = run(&argv(&format!(
            "sweep hal -T 17 --steps 4 --budget {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("envelope scale sweep"), "{out}");
        assert!(out.lines().count() >= 6, "{out}");
    }

    #[test]
    fn batch_with_budget_scales_the_envelope_per_point() {
        let dir = budget_dir();
        let budget = dir.join("batch.json");
        std::fs::write(&budget, "{\"steps\": [[0, 40.0], [9, 12.0]]}\n").unwrap();
        let points = dir.join("scales.txt");
        std::fs::write(&points, "17 1.0\n17 0.1\n").unwrap();
        let out = run(&argv(&format!(
            "batch hal --points {} --budget {}",
            points.display(),
            budget.display()
        )))
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        // Full scale is feasible; a 10% envelope is not.
        assert!(
            lines[0].contains("\"area\":") && !lines[0].contains("null"),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains("\"area\":null"), "{}", lines[1]);
        // A step past some point's horizon is a per-point error.
        let short = dir.join("short_points.txt");
        std::fs::write(&short, "5 1.0\n").unwrap();
        let err = run(&argv(&format!(
            "batch hal --points {} --budget {}",
            short.display(),
            budget.display()
        )))
        .unwrap_err();
        assert!(err.contains("point 1") && err.contains("cycle 9"), "{err}");
    }

    /// A scratch directory wiped at the start of the test, so reruns
    /// never resume from a previous process's store.
    fn store_scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn batch_with_store_resumes_and_is_byte_identical() {
        let dir = store_scratch("pchls-cli-store-batch");
        let points = dir.join("points.txt");
        std::fs::write(&points, "17 25\n10 40\n17 1.0\n").unwrap();
        let store_dir = dir.join("store");
        let cmd = format!(
            "batch hal --points {} --store {}",
            points.display(),
            store_dir.display()
        );
        let plain = run(&argv(&format!("batch hal --points {}", points.display()))).unwrap();
        let cold = run(&argv(&cmd)).unwrap();
        assert_eq!(cold, plain, "--store changed batch output");
        // The second run answers every point from the store, and still
        // prints the same bytes.
        let warm = run(&argv(&cmd)).unwrap();
        assert_eq!(warm, plain);
        let mut store = Store::open(&store_dir).unwrap();
        assert_eq!(store.len(), 3, "one record per point");
        assert!(!store.recovered(), "batch must flush the footer");
        // The two feasible points persisted their schedule trace.
        let with_trace = store
            .scan_records()
            .unwrap()
            .iter()
            .filter(|r| !r.trace.is_empty())
            .count();
        assert_eq!(with_trace, 2);
    }

    #[test]
    fn sweep_with_store_resumes_and_matches_plain_sweep() {
        let dir = store_scratch("pchls-cli-store-sweep");
        let store_dir = dir.join("store");
        let cmd = format!("sweep hal -T 17 --steps 5 --store {}", store_dir.display());
        let plain = run(&argv("sweep hal -T 17 --steps 5")).unwrap();
        assert_eq!(
            run(&argv(&cmd)).unwrap(),
            plain,
            "--store changed the curve"
        );
        assert_eq!(run(&argv(&cmd)).unwrap(), plain, "resumed sweep diverged");
        let store = Store::open(&store_dir).unwrap();
        assert!(store.len() >= 5, "raw grid points were persisted");
    }

    #[test]
    fn store_admin_reports_stat_verify_and_compact() {
        let dir = store_scratch("pchls-cli-store-admin");
        let points = dir.join("points.txt");
        std::fs::write(&points, "17 25\n10 40\n").unwrap();
        let store_dir = dir.join("store");
        run(&argv(&format!(
            "batch hal --points {} --store {}",
            points.display(),
            store_dir.display()
        )))
        .unwrap();

        let stat = run(&argv(&format!("store stat {}", store_dir.display()))).unwrap();
        assert!(stat.contains("records: 2 (2 live)"), "{stat}");
        assert!(stat.contains("per-column bytes"), "{stat}");
        let verify = run(&argv(&format!("store verify {}", store_dir.display()))).unwrap();
        assert!(verify.starts_with("ok: 2 record(s)"), "{verify}");

        // Re-appending an existing record supersedes it; compact drops
        // the stale copy.
        {
            let mut store = Store::open(&store_dir).unwrap();
            let first = store.scan_records().unwrap().remove(0);
            store.append(std::slice::from_ref(&first)).unwrap();
            store.flush().unwrap();
        }
        let compacted = run(&argv(&format!("store compact {}", store_dir.display()))).unwrap();
        assert!(
            compacted.starts_with("dropped 1 superseded record(s)"),
            "{compacted}"
        );
        let stat = run(&argv(&format!("store stat {}", store_dir.display()))).unwrap();
        assert!(stat.contains("records: 2 (2 live)"), "{stat}");
    }

    #[test]
    fn store_admin_validates_its_arguments() {
        let err = run(&argv("store stat")).unwrap_err();
        assert!(err.contains("stat|verify|compact"), "{err}");
        let missing = std::env::temp_dir().join("pchls-cli-store-missing");
        let _ = std::fs::remove_dir_all(&missing);
        let err = run(&argv(&format!("store stat {}", missing.display()))).unwrap_err();
        assert!(err.contains("no result store"), "{err}");
        let dir = store_scratch("pchls-cli-store-badaction");
        let store_dir = dir.join("store");
        drop(Store::open(&store_dir).unwrap());
        let err = run(&argv(&format!("store frobnicate {}", store_dir.display()))).unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
    }

    #[test]
    fn battery_reports_the_model_trio() {
        let out = run(&argv("battery hal -T 20 -P 10")).unwrap();
        for needle in [
            "power-oblivious",
            "power-constrained",
            "ideal",
            "peukert",
            "rate-capacity",
        ] {
            assert!(out.contains(needle), "`{needle}` missing from\n{out}");
        }
        // The flattened profile must extend lifetime on the weak cell.
        let rc_line = out.lines().find(|l| l.contains("rate-capacity")).unwrap();
        let ext: f64 = rc_line
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(ext > 1.0, "{rc_line}");
        // Flag validation.
        assert!(run(&argv("battery hal -T 20 -P 10 --capacity zero"))
            .unwrap_err()
            .contains("--capacity"));
        assert!(run(&argv("battery hal -T 20")).unwrap_err().contains("-P"));
    }

    #[test]
    fn serve_validates_its_flags() {
        // Exactly one transport must be chosen.
        let err = run(&argv("serve")).unwrap_err();
        assert!(err.contains("--stdio") && err.contains("--addr"), "{err}");
        let err = run(&argv("serve --stdio --addr 127.0.0.1:0")).unwrap_err();
        assert!(err.contains("exactly one"), "{err}");
        let err = run(&argv("serve --addr 127.0.0.1:0 --workers two")).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
        let err = run(&argv("serve --addr not-an-address")).unwrap_err();
        assert!(err.contains("binding"), "{err}");
        // Admission knobs validate before any socket is touched.
        let err = run(&argv("serve --stdio --shards x")).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err = run(&argv("serve --stdio --shed-depth -3")).unwrap_err();
        assert!(err.contains("--shed-depth"), "{err}");
        let err = run(&argv("serve --stdio --rate fast")).unwrap_err();
        assert!(err.contains("--rate"), "{err}");
        let err = run(&argv("serve --stdio --burst -1")).unwrap_err();
        assert!(err.contains("--burst"), "{err}");
        let err = run(&argv("serve --stdio --max-line-bytes 0")).unwrap_err();
        assert!(err.contains("--max-line-bytes"), "{err}");
    }

    #[test]
    fn missing_arguments_are_reported() {
        assert!(run(&argv("synth hal -T 17")).unwrap_err().contains("-P"));
        assert!(run(&argv("synth hal -P 25")).unwrap_err().contains("-T"));
        assert!(run(&argv("synth")).unwrap_err().contains("graph"));
        assert!(run(&[]).unwrap_err().contains("command"));
        assert!(run(&argv("frobnicate")).unwrap_err().contains("frobnicate"));
    }

    #[test]
    fn unknown_graph_is_reported() {
        let err = run(&argv("dump nonexistent")).unwrap_err();
        assert!(err.contains("nonexistent"));
    }

    #[test]
    fn set_parsing_rejects_garbage() {
        let err = run(&argv("simulate hal -T 17 -P 25 --set x")).unwrap_err();
        assert!(err.contains("name=value"));
    }
}
