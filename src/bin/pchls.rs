//! `pchls` — command-line front end for the power-constrained high-level
//! synthesis library.
//!
//! ```text
//! pchls benchmarks
//! pchls dump <graph> [--dot]
//! pchls synth <graph> -T <cycles> -P <power> [--library <file>] [--hdl] [--profile]
//! pchls sweep <graph> -T <cycles> [--steps <n>]
//! pchls batch <graph> --points <file>
//! pchls serve (--stdio | --addr <host:port>) [--workers <n>] [--cache-cap <n>] [--queue-cap <n>]
//! pchls simulate <graph> -T <cycles> -P <power> --set name=value ...
//! pchls vcd <graph> -T <cycles> -P <power> --set name=value ... [--out <file>]
//! ```
//!
//! `<graph>` is either a built-in benchmark name (`hal`, `cosine`,
//! `elliptic`, `ar`, `fir16`, `fft_bfly`) or a path to a `.dfg` file in
//! the textual CDFG format.
//!
//! Every synthesis-shaped command compiles the graph once through the
//! session API ([`Engine::compile`]) and reuses the compiled artifacts
//! for all constraint points it evaluates — `batch` amortizes one
//! compile across a whole file of `(T, P<)` points.

use std::collections::BTreeMap;
use std::process::ExitCode;

use pchls::cdfg::{benchmarks, parse_cdfg, write_cdfg, Cdfg, GraphStats, Interpreter};
use pchls::core::{Engine, SweepSpec, SynthesisConstraints, SynthesisOptions, SynthesisRequest};
use pchls::fulib::{paper_library, parse_library, ModuleLibrary};
use pchls::rtl::{simulate, to_structural_hdl, Datapath};
use pchls::serve::{serve_stdio, serve_tcp, Service, ServiceConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  pchls benchmarks
  pchls dump <graph> [--dot|--stats]
  pchls synth <graph> -T <cycles> -P <power> [--library <file>] [--hdl] [--profile] [--gantt] [--refine] [--optimize]
  pchls sweep <graph> -T <cycles> [--steps <n>]
  pchls batch <graph> --points <file>   # one `T P` pair per line; emits one JSON line per point
  pchls serve (--stdio | --addr <host:port>) [--workers <n>] [--cache-cap <n>] [--queue-cap <n>]
  pchls simulate <graph> -T <cycles> -P <power> --set name=value ...
  pchls vcd <graph> -T <cycles> -P <power> --set name=value ... [--out <file>]";

/// Executes a parsed command line, returning the text to print.
fn run(args: &[String]) -> Result<String, String> {
    let (cmd, rest) = args.split_first().ok_or("missing command")?;
    match cmd.as_str() {
        "benchmarks" => Ok(list_benchmarks()),
        "dump" => dump(rest),
        "synth" => synth(rest),
        "sweep" => sweep(rest),
        "batch" => batch(rest),
        "serve" => serve(rest),
        "simulate" => run_simulation(rest),
        "vcd" => run_vcd(rest),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn list_benchmarks() -> String {
    let mut s = String::from("built-in benchmark graphs:\n");
    for g in benchmarks::all() {
        let hist: Vec<String> = g
            .op_histogram()
            .into_iter()
            .map(|(k, c)| format!("{c}x{}", k.symbol()))
            .collect();
        s.push_str(&format!(
            "  {:<10} {:>3} nodes  ({})\n",
            g.name(),
            g.len(),
            hist.join(" ")
        ));
    }
    s
}

/// Loads a graph by benchmark name or from a `.dfg` file.
fn load_graph(spec: &str) -> Result<Cdfg, String> {
    if let Some(g) = benchmarks::all().into_iter().find(|g| g.name() == spec) {
        return Ok(g);
    }
    if std::path::Path::new(spec).exists() {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("reading {spec}: {e}"))?;
        return parse_cdfg(&text).map_err(|e| format!("parsing {spec}: {e}"));
    }
    Err(format!(
        "`{spec}` is neither a built-in benchmark nor an existing file"
    ))
}

fn load_library(flags: &Flags) -> Result<ModuleLibrary, String> {
    match flags.options.get("library") {
        None => Ok(paper_library()),
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            parse_library(&text).map_err(|e| format!("parsing {path}: {e}"))
        }
    }
}

/// Minimal flag parser: positionals, `--flag`, `--key value` / `-K value`
/// and repeatable `--set name=value`.
#[derive(Debug, Default)]
struct Flags {
    positionals: Vec<String>,
    switches: Vec<String>,
    options: BTreeMap<String, String>,
    sets: Vec<(String, i64)>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-T" | "--latency" => {
                let v = it.next().ok_or("-T needs a value")?;
                f.options.insert("latency".into(), v.clone());
            }
            "-P" | "--power" => {
                let v = it.next().ok_or("-P needs a value")?;
                f.options.insert("power".into(), v.clone());
            }
            "--library" | "--steps" | "--out" | "--points" | "--addr" | "--workers"
            | "--cache-cap" | "--queue-cap" => {
                let key = a.trim_start_matches('-').to_owned();
                let v = it.next().ok_or_else(|| format!("{a} needs a value"))?;
                f.options.insert(key, v.clone());
            }
            "--set" => {
                let v = it.next().ok_or("--set needs name=value")?;
                let (name, value) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--set expects name=value, got `{v}`"))?;
                let value: i64 = value
                    .parse()
                    .map_err(|_| format!("`{value}` is not an integer"))?;
                f.sets.push((name.to_owned(), value));
            }
            s if s.starts_with("--") => f.switches.push(s.trim_start_matches('-').to_owned()),
            _ => f.positionals.push(a.clone()),
        }
    }
    Ok(f)
}

fn required_u32(flags: &Flags, key: &str, flag: &str) -> Result<u32, String> {
    flags
        .options
        .get(key)
        .ok_or_else(|| format!("missing {flag}"))?
        .parse()
        .map_err(|_| format!("{flag} must be a positive integer"))
}

fn required_f64(flags: &Flags, key: &str, flag: &str) -> Result<f64, String> {
    flags
        .options
        .get(key)
        .ok_or_else(|| format!("missing {flag}"))?
        .parse()
        .map_err(|_| format!("{flag} must be a number"))
}

/// The `(T, P<)` pair of a command line, validated so the constraints
/// constructor can never panic on user input.
fn required_constraints(flags: &Flags) -> Result<SynthesisConstraints, String> {
    let latency = required_u32(flags, "latency", "-T <cycles>")?;
    if latency == 0 {
        return Err("-T must be at least 1 cycle".into());
    }
    let power = required_f64(flags, "power", "-P <power>")?;
    if power.is_nan() || power < 0.0 {
        return Err("-P must be a non-negative power bound".into());
    }
    Ok(SynthesisConstraints::new(latency, power))
}

fn dump(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let spec = flags.positionals.first().ok_or("missing graph")?;
    let g = load_graph(spec)?;
    if flags.switches.iter().any(|s| s == "dot") {
        Ok(g.to_dot())
    } else if flags.switches.iter().any(|s| s == "stats") {
        Ok(GraphStats::of(&g).to_report())
    } else {
        Ok(write_cdfg(&g))
    }
}

fn synth(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let spec = flags.positionals.first().ok_or("missing graph")?;
    let g = load_graph(spec)?;
    let lib = load_library(&flags)?;
    let engine = Engine::new(lib);
    let compiled = if flags.switches.iter().any(|s| s == "optimize") {
        let c = engine.compile_optimized(&g).map_err(|e| e.to_string())?;
        let stats = c.optimize_stats().expect("optimized compile keeps stats");
        eprintln!(
            "optimize: merged {} duplicate op(s), eliminated {} dead op(s)",
            stats.merged, stats.eliminated
        );
        c
    } else {
        engine.try_compile(&g).map_err(|e| e.to_string())?
    };
    let session = engine.session(&compiled);
    let (g, lib) = (compiled.graph(), engine.library());
    let constraints = required_constraints(&flags)?;
    let design = if flags.switches.iter().any(|s| s == "refine") {
        session.synthesize_refined(constraints, &SynthesisOptions::default())
    } else {
        session.synthesize(constraints, &SynthesisOptions::default())
    }
    .map_err(|e| e.to_string())?;

    let mut out = format!("{}: {}\n", g.name(), design.summary());
    for (i, inst) in design.binding.instances().iter().enumerate() {
        let m = lib.module(inst.module());
        out.push_str(&format!(
            "  fu{i}: {:<10} area {:>4}  {} op(s)\n",
            m.name(),
            m.area(),
            inst.ops().len()
        ));
    }
    let regs = design.registers(g);
    let ic = design.interconnect(g);
    out.push_str(&format!(
        "  registers: {}   extra mux inputs: {}\n",
        regs.count(),
        ic.total()
    ));
    if flags.switches.iter().any(|s| s == "profile") {
        out.push_str("\nper-cycle power profile:\n");
        out.push_str(&design.power_profile().to_ascii(40));
    }
    if flags.switches.iter().any(|s| s == "gantt") {
        out.push_str("\nschedule:\n");
        out.push_str(&pchls::bind::gantt(
            g,
            lib,
            &design.binding,
            &design.schedule,
            &design.timing,
        ));
    }
    if flags.switches.iter().any(|s| s == "hdl") {
        out.push('\n');
        out.push_str(&to_structural_hdl(g, &design, lib));
    }
    Ok(out)
}

fn sweep(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let spec = flags.positionals.first().ok_or("missing graph")?;
    let g = load_graph(spec)?;
    let lib = load_library(&flags)?;
    let latency = required_u32(&flags, "latency", "-T <cycles>")?;
    if latency == 0 {
        return Err("-T must be at least 1 cycle".into());
    }
    let steps: usize = flags
        .options
        .get("steps")
        .map_or(Ok(12), |s| s.parse())
        .map_err(|_| "--steps must be a positive integer")?;
    let engine = Engine::new(lib);
    let compiled = engine.try_compile(&g).map_err(|e| e.to_string())?;
    let session = engine.session(&compiled);
    let grid = session.auto_power_grid(steps);
    let result = session.sweep(
        &SweepSpec::power(latency, grid),
        &SynthesisOptions::default(),
    );
    let mut out = format!("{} at T={latency}:\npower    area\n", result.benchmark);
    for p in result.points {
        match p.area {
            Some(a) => out.push_str(&format!("{:>6.1} {:>7}\n", p.power_bound, a)),
            None => out.push_str(&format!("{:>6.1}   (infeasible)\n", p.power_bound)),
        }
    }
    Ok(out)
}

/// Parses one `T P` constraint point per line (blank lines and `#`
/// comments skipped).
fn parse_points(text: &str) -> Result<Vec<SynthesisConstraints>, String> {
    let mut points = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (Some(t), Some(p), None) = (fields.next(), fields.next(), fields.next()) else {
            return Err(format!("line {}: expected `T P`, got `{line}`", lineno + 1));
        };
        let t: u32 = t
            .parse()
            .map_err(|_| format!("line {}: `{t}` is not a latency", lineno + 1))?;
        // Validate the parsed values here, with the line number: the
        // constraints constructor asserts on nonsense and a malformed
        // points file must be a clean error, not a panic.
        if t == 0 {
            return Err(format!(
                "line {}: latency must be at least 1 cycle",
                lineno + 1
            ));
        }
        let p: f64 = p
            .parse()
            .map_err(|_| format!("line {}: `{p}` is not a power bound", lineno + 1))?;
        if p.is_nan() || p < 0.0 {
            return Err(format!(
                "line {}: power bound `{p}` must be non-negative",
                lineno + 1
            ));
        }
        points.push(SynthesisConstraints::new(t, p));
    }
    if points.is_empty() {
        return Err("points file contains no `T P` pairs".into());
    }
    Ok(points)
}

/// `pchls batch <graph> --points <file>`: one compile, many constraint
/// points through [`pchls::core::Session::batch`], one JSON line per
/// point (in file order).
fn batch(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let spec = flags.positionals.first().ok_or("missing graph")?;
    let g = load_graph(spec)?;
    let lib = load_library(&flags)?;
    let path = flags
        .options
        .get("points")
        .ok_or("missing --points <file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let points = parse_points(&text)?;

    let engine = Engine::new(lib);
    let compiled = engine.try_compile(&g).map_err(|e| e.to_string())?;
    let session = engine.session(&compiled);
    let results = session.batch(points.into_iter().map(SynthesisRequest::new));

    let mut out = String::new();
    for r in &results {
        let line = serde_json::to_string(&r.to_point(compiled.name()))
            .map_err(|e| format!("serializing point: {e}"))?;
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

/// `pchls serve`: the long-running synthesis service (JSON-lines
/// protocol over stdio or TCP; see `pchls-serve`). Returns at stdin EOF
/// in `--stdio` mode; serves forever in `--addr` mode.
fn serve(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let stdio = flags.switches.iter().any(|s| s == "stdio");
    let addr = flags.options.get("addr");
    if stdio == addr.is_some() {
        return Err("serve needs exactly one of --stdio or --addr <host:port>".into());
    }
    let usize_option = |key: &str, default: usize| -> Result<usize, String> {
        flags.options.get(key).map_or(Ok(default), |v| {
            v.parse()
                .map_err(|_| format!("--{key} must be a non-negative integer"))
        })
    };
    let defaults = ServiceConfig::default();
    let config = ServiceConfig {
        workers: usize_option("workers", defaults.workers)?,
        cache_cap: usize_option("cache-cap", defaults.cache_cap)?,
        queue_cap: usize_option("queue-cap", defaults.queue_cap)?,
        ..defaults
    };
    let lib = load_library(&flags)?;
    let service = Service::start(Engine::new(lib), config);
    match addr {
        None => serve_stdio(&service).map_err(|e| format!("serving stdio: {e}"))?,
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            eprintln!("pchls serve: listening on {local}");
            serve_tcp(&service, &listener).map_err(|e| format!("serving {local}: {e}"))?;
        }
    }
    Ok(String::new())
}

fn run_simulation(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let spec = flags.positionals.first().ok_or("missing graph")?;
    let g = load_graph(spec)?;
    let lib = load_library(&flags)?;
    let constraints = required_constraints(&flags)?;
    let stim: pchls::cdfg::Stimulus = flags.sets.iter().cloned().collect();

    let engine = Engine::new(lib);
    let compiled = engine.try_compile(&g).map_err(|e| e.to_string())?;
    let design = engine
        .session(&compiled)
        .synthesize(constraints, &SynthesisOptions::default())
        .map_err(|e| e.to_string())?;
    let dp = Datapath::build(&g, &design, engine.library());
    let run = simulate(&g, &dp, &stim).map_err(|e| e.to_string())?;
    let reference = Interpreter::new(&g).run(&stim).map_err(|e| e.to_string())?;
    let mut out = format!(
        "simulated {} on the synthesized datapath ({} cycles):\n",
        g.name(),
        dp.latency()
    );
    for (name, value) in &run.outputs {
        let check = if reference[name] == *value {
            "ok"
        } else {
            "MISMATCH"
        };
        out.push_str(&format!("  {name} = {value}   [{check} vs reference]\n"));
    }
    if run.outputs == reference {
        out.push_str("datapath matches the reference interpreter\n");
    } else {
        return Err("datapath diverged from the reference interpreter".into());
    }
    Ok(out)
}

fn run_vcd(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let spec = flags.positionals.first().ok_or("missing graph")?;
    let g = load_graph(spec)?;
    let lib = load_library(&flags)?;
    let constraints = required_constraints(&flags)?;
    let stim: pchls::cdfg::Stimulus = flags.sets.iter().cloned().collect();

    let engine = Engine::new(lib);
    let compiled = engine.try_compile(&g).map_err(|e| e.to_string())?;
    let design = engine
        .session(&compiled)
        .synthesize(constraints, &SynthesisOptions::default())
        .map_err(|e| e.to_string())?;
    let dp = Datapath::build(&g, &design, engine.library());
    let wave = pchls::rtl::trace(&g, &dp, &stim).map_err(|e| e.to_string())?;
    let vcd = pchls::rtl::to_vcd(&wave, g.name());
    match flags.options.get("out") {
        Some(path) => {
            std::fs::write(path, &vcd).map_err(|e| format!("writing {path}: {e}"))?;
            Ok(format!("wrote {} ({} bytes)\n", path, vcd.len()))
        }
        None => Ok(vcd),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn benchmarks_lists_all_graphs() {
        let out = run(&argv("benchmarks")).unwrap();
        for name in ["hal", "cosine", "elliptic", "ar", "fir16", "fft_bfly"] {
            assert!(out.contains(name), "{name} missing from\n{out}");
        }
    }

    #[test]
    fn dump_round_trips_through_the_parser() {
        let out = run(&argv("dump hal")).unwrap();
        let g = parse_cdfg(&out).unwrap();
        assert_eq!(g.name(), "hal");
    }

    #[test]
    fn dump_dot_emits_graphviz() {
        let out = run(&argv("dump hal --dot")).unwrap();
        assert!(out.starts_with("digraph hal"));
    }

    #[test]
    fn synth_reports_design() {
        let out = run(&argv("synth hal -T 17 -P 25")).unwrap();
        assert!(out.contains("area="));
        assert!(out.contains("registers:"));
    }

    #[test]
    fn synth_with_profile_and_hdl() {
        let out = run(&argv("synth hal -T 17 -P 25 --profile --hdl")).unwrap();
        assert!(out.contains("power profile"));
        assert!(out.contains("endmodule"));
    }

    #[test]
    fn synth_rejects_infeasible_constraints() {
        let err = run(&argv("synth hal -T 17 -P 1")).unwrap_err();
        assert!(err.contains("infeasible"));
    }

    #[test]
    fn sweep_prints_a_curve() {
        let out = run(&argv("sweep hal -T 17 --steps 5")).unwrap();
        assert!(out.lines().count() >= 6);
    }

    #[test]
    fn simulate_cross_checks() {
        let cmd = "simulate hal -T 17 -P 25 --set x=2 --set y=5 --set u=7 \
                   --set dx=3 --set a=100 --set three=3";
        let out = run(&argv(cmd)).unwrap();
        assert!(out.contains("matches the reference interpreter"));
        assert!(out.contains("x1 = 5"));
    }

    #[test]
    fn synth_with_gantt_shows_units() {
        let out = run(&argv("synth hal -T 17 -P 25 --gantt")).unwrap();
        assert!(out.contains("unit"));
        assert!(out.contains("fu0"));
    }

    #[test]
    fn synth_with_optimize_runs_cse() {
        let out = run(&argv("synth hal -T 17 -P 25 --optimize")).unwrap();
        assert!(out.contains("area="));
    }

    #[test]
    fn vcd_emits_a_document() {
        let cmd = "vcd hal -T 17 -P 25 --set x=2 --set y=5 --set u=7 \
                   --set dx=3 --set a=100 --set three=3";
        let out = run(&argv(cmd)).unwrap();
        assert!(out.contains("$enddefinitions $end"));
        assert!(out.contains("$var real 64"));
    }

    #[test]
    fn batch_emits_one_json_line_per_point() {
        let dir = std::env::temp_dir().join("pchls-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("points.txt");
        std::fs::write(
            &path,
            "# paper corners, one infeasible\n17 25\n10 40\n17 1.0\n",
        )
        .unwrap();
        let out = run(&argv(&format!("batch hal --points {}", path.display()))).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "one JSON line per point:\n{out}");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"benchmark\":\"hal\""), "{line}");
        }
        assert!(lines[0].contains("\"area\":"), "{}", lines[0]);
        assert!(
            lines[2].contains("\"area\":null"),
            "infeasible point: {}",
            lines[2]
        );
    }

    #[test]
    fn batch_rejects_malformed_points() {
        let dir = std::env::temp_dir().join("pchls-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_points.txt");
        std::fs::write(&path, "17 25 extra\n").unwrap();
        let err = run(&argv(&format!("batch hal --points {}", path.display()))).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(run(&argv("batch hal")).unwrap_err().contains("--points"));
    }

    #[test]
    fn batch_reports_invalid_values_with_line_numbers_instead_of_panicking() {
        let dir = std::env::temp_dir().join("pchls-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Values that parse as numbers but violate the constraint
        // domain used to reach the asserting constructor and abort the
        // process; they must be line-numbered errors.
        for (name, content, needle) in [
            ("zero_latency.txt", "17 25\n0 25\n", "line 2"),
            ("negative_power.txt", "17 25\n10 40\n17 -5\n", "line 3"),
            ("nan_power.txt", "17 NaN\n", "line 1"),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, content).unwrap();
            let err =
                run(&argv(&format!("batch hal --points {}", path.display()))).expect_err(name);
            assert!(err.contains(needle), "{name}: `{err}` missing `{needle}`");
        }
    }

    #[test]
    fn synth_rejects_out_of_domain_constraints_cleanly() {
        assert!(run(&argv("synth hal -T 0 -P 25"))
            .unwrap_err()
            .contains("-T"));
        assert!(run(&argv("synth hal -T 17 -P -3"))
            .unwrap_err()
            .contains("-P"));
        assert!(run(&argv("sweep hal -T 0")).unwrap_err().contains("-T"));
    }

    #[test]
    fn serve_validates_its_flags() {
        // Exactly one transport must be chosen.
        let err = run(&argv("serve")).unwrap_err();
        assert!(err.contains("--stdio") && err.contains("--addr"), "{err}");
        let err = run(&argv("serve --stdio --addr 127.0.0.1:0")).unwrap_err();
        assert!(err.contains("exactly one"), "{err}");
        let err = run(&argv("serve --addr 127.0.0.1:0 --workers two")).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
        let err = run(&argv("serve --addr not-an-address")).unwrap_err();
        assert!(err.contains("binding"), "{err}");
    }

    #[test]
    fn missing_arguments_are_reported() {
        assert!(run(&argv("synth hal -T 17")).unwrap_err().contains("-P"));
        assert!(run(&argv("synth hal -P 25")).unwrap_err().contains("-T"));
        assert!(run(&argv("synth")).unwrap_err().contains("graph"));
        assert!(run(&[]).unwrap_err().contains("command"));
        assert!(run(&argv("frobnicate")).unwrap_err().contains("frobnicate"));
    }

    #[test]
    fn unknown_graph_is_reported() {
        let err = run(&argv("dump nonexistent")).unwrap_err();
        assert!(err.contains("nonexistent"));
    }

    #[test]
    fn set_parsing_rejects_garbage() {
        let err = run(&argv("simulate hal -T 17 -P 25 --set x")).unwrap_err();
        assert!(err.contains("name=value"));
    }
}
