//! # pchls — power-constrained high-level synthesis
//!
//! A reproduction of Nielsen & Madsen, *Power Constrained High-Level
//! Synthesis of Battery Powered Digital Systems* (DATE 2003): scheduling,
//! allocation and binding solved **simultaneously**, minimizing datapath
//! area under a latency bound `T` and a maximum power per clock cycle
//! `P<`. Flattened power profiles extend battery lifetime on the
//! low-quality cells low-cost portable systems ship with.
//!
//! This crate re-exports the whole workspace; see `README.md` for the
//! architecture, `DESIGN.md` for the system inventory and `EXPERIMENTS.md`
//! for paper-vs-measured results.
//!
//! ## The full pipeline in one example
//!
//! ```
//! use pchls::cdfg::{benchmarks::hal, Interpreter, Stimulus};
//! use pchls::core::{Engine, SweepSpec, SynthesisConstraints, SynthesisOptions};
//! use pchls::fulib::paper_library;
//! use pchls::rtl::{simulate, Datapath};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. An engine owns the module library (Table 1 of the paper) and
//! //    its derived indexes; compiling a graph runs the CSE/DCE
//! //    optimizer and computes every per-graph analysis once.
//! let engine = Engine::new(paper_library());
//! let compiled = engine.compile_optimized(&hal())?;
//! let session = engine.session(&compiled);
//!
//! // 2. Synthesize under the paper's constraints: T = 17 cycles,
//! //    at most 25 power units in any single cycle.
//! let options = SynthesisOptions::default();
//! let design = session.synthesize(SynthesisConstraints::new(17, 25.0), &options)?;
//! assert!(design.latency <= 17 && design.peak_power <= 25.0);
//!
//! // …the same session sweeps a whole constraint grid with no
//! // per-point recompute (this is Figure 2's workload):
//! let curve = session.sweep(&SweepSpec::power(17, session.auto_power_grid(6)), &options);
//! assert!(curve.points.iter().any(|p| p.is_feasible()));
//!
//! // 3. Materialize the RT-level datapath and prove it computes the
//! //    same values as the graph's reference interpreter.
//! let datapath = Datapath::build(compiled.graph(), &design, engine.library());
//! let mut stimulus = Stimulus::new();
//! for (name, value) in [("x", 1), ("y", 2), ("u", 3), ("dx", 4), ("a", 9), ("three", 3)] {
//!     stimulus.insert(name.into(), value);
//! }
//! let run = simulate(compiled.graph(), &datapath, &stimulus)?;
//! assert_eq!(run.outputs, Interpreter::new(compiled.graph()).run(&stimulus)?);
//! # Ok(())
//! # }
//! ```
//!
//! Migrating from the pre-session free functions:
//!
//! | old call | new call |
//! |---|---|
//! | `synthesize(&g, &lib, c, &opts)` | `engine.session(&compiled).synthesize(c, &opts)` |
//! | `synthesize_refined(&g, &lib, c, &opts)` | `session.synthesize_refined(c, &opts)` |
//! | `synthesize_portfolio(&g, &lib, c, &opts)` | `session.synthesize_portfolio(c, &opts)` |
//! | `power_sweep(&g, &lib, t, &ps, &opts)` | `session.sweep(&SweepSpec::power(t, ps.to_vec()), &opts)` |
//! | `latency_sweep(&g, &lib, p, &ts, &opts)` | `session.sweep(&SweepSpec::latency(p, ts.to_vec()), &opts)` |
//! | `sweep_many(&reqs, &lib, &opts)` | `engine.sweep_batch(&jobs, &opts)` |
//! | `auto_power_grid(&g, &lib, n)` | `session.auto_power_grid(n)` |
//! | *(n/a — new)* | `session.batch(requests)` |
//!
//! where `engine = Engine::new(library)` and
//! `compiled = engine.compile(&graph)` are built **once** and reused
//! across constraint points.

#![forbid(unsafe_code)]

/// Battery discharge and lifetime models (ideal, Peukert, rate-capacity).
pub use pchls_battery as battery;
/// Compatibility graph, clique partitioning, registers, interconnect.
pub use pchls_bind as bind;
/// CDFG intermediate representation, benchmarks, interpreter, optimizer.
pub use pchls_cdfg as cdfg;
/// The combined synthesis algorithm (`Engine`/`Session`), exploration
/// sweeps and baselines.
pub use pchls_core as core;
/// Functional-unit module library (the paper's Table 1).
pub use pchls_fulib as fulib;
/// Zero-dependency observability: metrics registry, tracing spans,
/// Prometheus-style exposition and Chrome-trace export.
pub use pchls_obs as obs;
/// Datapath netlists, cycle-accurate simulation, HDL and VCD emission.
pub use pchls_rtl as rtl;
/// Time- and power-constrained scheduling algorithms.
pub use pchls_sched as sched;
/// Concurrent synthesis service: compile cache, request scheduler,
/// JSON-lines wire protocol (`pchls serve`).
pub use pchls_serve as serve;
/// Persistent content-addressed columnar result store (`pchls store`,
/// `--store` on `batch`/`sweep`/`serve`).
pub use pchls_store as store;
