//! # pchls — power-constrained high-level synthesis
//!
//! A reproduction of Nielsen & Madsen, *Power Constrained High-Level
//! Synthesis of Battery Powered Digital Systems* (DATE 2003): scheduling,
//! allocation and binding solved **simultaneously**, minimizing datapath
//! area under a latency bound `T` and a maximum power per clock cycle
//! `P<`. Flattened power profiles extend battery lifetime on the
//! low-quality cells low-cost portable systems ship with.
//!
//! This crate re-exports the whole workspace; see `README.md` for the
//! architecture, `DESIGN.md` for the system inventory and `EXPERIMENTS.md`
//! for paper-vs-measured results.
//!
//! ## The full pipeline in one example
//!
//! ```
//! use pchls::cdfg::{benchmarks::hal, optimize, Interpreter, Stimulus};
//! use pchls::core::{synthesize, SynthesisConstraints, SynthesisOptions};
//! use pchls::fulib::paper_library;
//! use pchls::rtl::{simulate, Datapath};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A dataflow graph (here: the HAL differential-equation solver),
//! //    optionally cleaned up by CSE/DCE.
//! let (graph, _) = optimize(&hal());
//!
//! // 2. Synthesize under the paper's constraints: T = 17 cycles,
//! //    at most 25 power units in any single cycle.
//! let library = paper_library(); // Table 1 of the paper
//! let design = synthesize(
//!     &graph,
//!     &library,
//!     SynthesisConstraints::new(17, 25.0),
//!     &SynthesisOptions::default(),
//! )?;
//! assert!(design.latency <= 17 && design.peak_power <= 25.0);
//!
//! // 3. Materialize the RT-level datapath and prove it computes the
//! //    same values as the graph's reference interpreter.
//! let datapath = Datapath::build(&graph, &design, &library);
//! let mut stimulus = Stimulus::new();
//! for (name, value) in [("x", 1), ("y", 2), ("u", 3), ("dx", 4), ("a", 9), ("three", 3)] {
//!     stimulus.insert(name.into(), value);
//! }
//! let run = simulate(&graph, &datapath, &stimulus)?;
//! assert_eq!(run.outputs, Interpreter::new(&graph).run(&stimulus)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

/// Battery discharge and lifetime models (ideal, Peukert, rate-capacity).
pub use pchls_battery as battery;
/// Compatibility graph, clique partitioning, registers, interconnect.
pub use pchls_bind as bind;
/// CDFG intermediate representation, benchmarks, interpreter, optimizer.
pub use pchls_cdfg as cdfg;
/// The combined synthesis algorithm, exploration sweeps and baselines.
pub use pchls_core as core;
/// Functional-unit module library (the paper's Table 1).
pub use pchls_fulib as fulib;
/// Datapath netlists, cycle-accurate simulation, HDL and VCD emission.
pub use pchls_rtl as rtl;
/// Time- and power-constrained scheduling algorithms.
pub use pchls_sched as sched;
